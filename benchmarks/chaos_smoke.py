"""Chaos smoke: dispatch under injected faults must merge byte-identically
or quarantine explicitly — never produce wrong records, never livelock.

Four end-to-end scenarios over a file-queue dispatch of the julia grid
(CI runs this as the ``chaos-smoke`` job; locally::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

):

1. **Transient crashes** — every evaluation attempt fails twice before
   succeeding; the driver's retry loop must still converge to a merge
   byte-identical to the unsharded run.
2. **Corrupt result write** — a worker publishes deliberately torn bytes
   for one shard; the driver must detect it on read, re-offer and
   re-execute the shard, and still merge byte-identically.
3. **Hard worker death** — a real ``dispatch-worker`` subprocess dies with
   ``os._exit`` mid-shard (claim held, no cleanup); the driver must reclaim
   the expired lease and finish the dispatch byte-identically.
4. **Poison shard** — one shard fails every attempt; it must land in the
   queue's ``failed/`` dead-letter directory while the surviving shards
   merge byte-identically to the matching subset of the unsharded run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentSpec, Session  # noqa: E402
from repro.codex.config import DEFAULT_SEED  # noqa: E402
from repro.dispatch import FileQueue, ShardDriver, drain_queue, faults  # noqa: E402

SHARDS = 4


def scenario_transient_crashes(spec, expected, workdir: Path) -> None:
    faults.install([{"point": "worker.evaluate", "action": "crash", "times": 2}])
    try:
        report = ShardDriver(
            spec,
            shards=SHARDS,
            backend="file-queue",
            queue=workdir / "q-transient",
            poll_interval=0.01,
        ).run()
    finally:
        faults.reset()
    assert report.complete, report.summary()
    assert report.result().to_records() == expected, "transient crashes changed the records"
    print("chaos-smoke: transient crashes retried to a byte-identical merge")


def scenario_corrupt_result(spec, expected, workdir: Path) -> None:
    queue = FileQueue(workdir / "q-corrupt")
    plan = spec.partition(SHARDS)
    for shard in plan:
        queue.publish(shard)
    victim = queue.task_name(plan[1])
    faults.install(
        [{"point": "worker.complete", "action": "corrupt", "match": victim, "times": 1}]
    )
    try:
        drain_queue(queue)  # the worker "completes" all shards, one torn
    finally:
        faults.reset()
    raw = (queue.results_dir / f"{victim}.json").read_text()
    try:
        json.loads(raw)
    except ValueError:
        pass
    else:
        raise AssertionError("the corrupt fault did not tear the result bytes")
    report = ShardDriver(
        spec, shards=SHARDS, backend="file-queue", queue=queue, poll_interval=0.01
    ).run()
    assert report.complete, report.summary()
    assert report.result().to_records() == expected, "corrupt-result recovery changed the records"
    print("chaos-smoke: torn result dropped, shard re-executed, merge byte-identical")


def scenario_worker_death(spec, expected, workdir: Path) -> None:
    queue = FileQueue(workdir / "q-death", heartbeat_interval=0.2, lease_beats=2)
    for shard in spec.partition(SHARDS):
        queue.publish(shard)
    # A real worker process that dies hard (os._exit, claim held, zero
    # cleanup) on its first evaluation.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env[faults.FAULTS_ENV] = json.dumps(
        [{"point": "worker.evaluate", "action": "die"}]
    )
    worker = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.harness.cli",
            "dispatch-worker",
            "--queue",
            str(queue.root),
            "--max-tasks",
            "1",
        ],
        env=env,
        capture_output=True,
        timeout=120,
    )
    assert worker.returncode == 17, f"worker should have died hard, got {worker.returncode}"
    claims = list(queue.claims_dir.glob("*.json"))
    assert len(claims) == 1, "the dead worker should have died holding its claim"
    report = ShardDriver(
        spec, shards=SHARDS, backend="file-queue", queue=queue, poll_interval=0.01
    ).run()
    assert report.complete, report.summary()
    assert report.result().to_records() == expected, "lease reclaim changed the records"
    print("chaos-smoke: dead worker's lease expired, shard reclaimed, merge byte-identical")


def scenario_poison_shard(spec, expected, workdir: Path) -> None:
    queue = FileQueue(workdir / "q-poison", max_attempts=2)
    plan = spec.partition(SHARDS)
    poison = queue.task_name(plan[0])
    faults.install([{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}])
    try:
        report = ShardDriver(
            spec, shards=SHARDS, backend="file-queue", queue=queue, poll_interval=0.01
        ).run()
    finally:
        faults.reset()
    assert not report.complete and report.pending == 0, report.summary()
    assert len(report.quarantined) == 1, "exactly the poison shard should be quarantined"
    assert report.quarantined[0].entry.start == plan[0].start
    assert queue.failed() == [poison], f"dead letter missing: {queue.failed()}"
    letter = queue.quarantined(poison)
    assert letter["attempts"] == 2
    assert all(f["error"] == "InjectedCrash" for f in letter["failures"])
    survivors = report.results[DEFAULT_SEED].to_records()
    subset = [
        record
        for shard in plan[1:]
        for record in expected[shard.start : shard.stop]
    ]
    assert survivors == subset, "surviving shards' merge is not byte-identical to the subset"
    print("chaos-smoke: poison shard dead-lettered, survivors byte-identical to the subset")


def main() -> int:
    spec = ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))
    with Session(seed=DEFAULT_SEED) as session:
        expected = session.run(spec).to_records()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        workdir = Path(tmp)
        scenario_transient_crashes(spec, expected, workdir)
        scenario_corrupt_result(spec, expected, workdir)
        scenario_worker_death(spec, expected, workdir)
        scenario_poison_shard(spec, expected, workdir)
    print("chaos-smoke: all scenarios converged to byte-identical merge or explicit quarantine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
