"""E-T5: regenerate Table 5 (Julia proficiency scores, single prompt variant)."""

from __future__ import annotations

from _shared import assert_shape_agreement, evaluate_language
from repro.core.aggregate import model_averages
from repro.harness.tables import render_language_table


def test_table5_julia(benchmark):
    results = benchmark(evaluate_language, "julia")
    comparison = assert_shape_agreement(results, "julia")
    # Headline Julia findings: Threads and CUDA.jl (the mature models) lead,
    # AMDGPU.jl and KernelAbstractions.jl trail; CG is never generated well.
    models = model_averages(results, "julia")
    assert max(models["julia.threads"], models["julia.cuda"]) >= max(
        models["julia.amdgpu"], models["julia.kernelabstractions"]
    )
    cg_scores = [r.score for r in results.filter(kernel="cg")]
    assert max(cg_scores, default=0.0) <= 0.5
    print()
    print(render_language_table(results, "julia"))
    print(f"rho={comparison.cell_rank_correlation:.2f} "
          f"within-one-level={comparison.within_one_level:.0%}")
