"""PERF: throughput of the numerical kernel substrate itself.

These benchmarks time the vectorised reference implementations used as
oracles (they are not part of the paper's tables, but they document the cost
of the substrate and guard against accidental de-vectorisation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.axpy import axpy
from repro.kernels.cg import conjugate_gradient
from repro.kernels.gemm import gemm
from repro.kernels.gemv import gemv
from repro.kernels.jacobi import jacobi3d_step
from repro.kernels.sparse import poisson_2d, poisson_3d
from repro.kernels.spmv import spmv

_RNG = np.random.default_rng(20230414)


@pytest.mark.parametrize("n", [1_000, 100_000])
def test_axpy_reference(benchmark, n):
    x = _RNG.standard_normal(n)
    y = _RNG.standard_normal(n)
    result = benchmark(axpy, 1.5, x, y)
    assert result.shape == (n,)


@pytest.mark.parametrize("n", [128, 512])
def test_gemv_reference(benchmark, n):
    a = _RNG.standard_normal((n, n))
    x = _RNG.standard_normal(n)
    result = benchmark(gemv, 1.0, a, x)
    assert result.shape == (n,)


@pytest.mark.parametrize("n", [64, 192])
def test_gemm_reference(benchmark, n):
    a = _RNG.standard_normal((n, n))
    b = _RNG.standard_normal((n, n))
    result = benchmark(gemm, 1.0, a, b)
    assert result.shape == (n, n)


@pytest.mark.parametrize("grid", [16, 32])
def test_spmv_reference(benchmark, grid):
    matrix = poisson_2d(grid)
    x = _RNG.standard_normal(matrix.n_cols)
    result = benchmark(spmv, matrix, x)
    assert result.shape == (matrix.n_rows,)


@pytest.mark.parametrize("n", [16, 32])
def test_jacobi_reference(benchmark, n):
    u = _RNG.standard_normal((n, n, n))
    result = benchmark(jacobi3d_step, u)
    assert result.shape == u.shape


def test_cg_reference(benchmark):
    matrix = poisson_3d(6)  # 216 unknowns
    x_true = _RNG.standard_normal(matrix.n_rows)
    b = matrix.matvec(x_true)
    result = benchmark(lambda: conjugate_gradient(matrix, b, tol=1e-10))
    assert result.converged
