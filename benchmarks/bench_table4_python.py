"""E-T4: regenerate Table 4 (Python proficiency scores, with/without `def`).

Python is the one language whose suggestions are *executed* in the sandbox
(numpy directly; Numba/cuPy/pyCUDA through the fake runtimes and the CUDA-C
interpreter), so this benchmark also exercises that whole substrate.
"""

from __future__ import annotations

from _shared import assert_shape_agreement, evaluate_language
from repro.core.aggregate import model_averages, postfix_effect
from repro.harness.tables import render_language_table


def test_table4_python(benchmark):
    results = benchmark(evaluate_language, "python")
    comparison = assert_shape_agreement(results, "python")
    # Headline Python findings: `def` is essential; numpy leads, Numba trails.
    effect = postfix_effect(results, "python")
    assert effect["with_keyword"] > effect["without_keyword"]
    models = model_averages(results, "python")
    assert models["python.numpy"] == max(models.values())
    assert models["python.numba"] == min(models.values())
    print()
    print(render_language_table(results, "python"))
    print(f"keyword effect: {effect['without_keyword']:.2f} -> {effect['with_keyword']:.2f}; "
          f"rho={comparison.cell_rank_correlation:.2f}")
