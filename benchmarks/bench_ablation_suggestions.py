"""A-SUG: ablation of the suggestion budget (first 1/3/5/10/20 suggestions)."""

from __future__ import annotations

from repro.harness.experiments import run_suggestion_count_ablation


def test_ablation_suggestion_budget(benchmark):
    report = benchmark(lambda: run_suggestion_count_ablation(counts=(1, 3, 10)))
    means = report.data["means"]
    # With a single suggestion the rubric collapses to expert-or-nothing, so
    # scores can only move, never exceed the ten-suggestion protocol by more
    # than the expert bonus; all means stay in the rubric range.
    assert all(0.0 <= v <= 1.0 for v in means.values())
    assert set(means) == {1, 3, 10}
    print()
    print(report.text)
