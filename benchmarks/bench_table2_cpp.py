"""E-T2: regenerate Table 2 (C++ proficiency scores, 8 models x 6 kernels x 2 variants)."""

from __future__ import annotations

from _shared import assert_shape_agreement, evaluate_language
from repro.harness.tables import render_language_table


def test_table2_cpp(benchmark):
    results = benchmark(evaluate_language, "cpp")
    comparison = assert_shape_agreement(results, "cpp")
    # Headline C++ findings: OpenMP and CUDA are the strongest models, HIP and
    # Thrust the weakest; AXPY is the best kernel and CG the worst.
    from repro.core.aggregate import kernel_averages, model_averages

    models = model_averages(results, "cpp")
    assert models["cpp.openmp"] >= max(models["cpp.hip"], models["cpp.thrust"])
    kernels = kernel_averages(results, language="cpp")
    assert kernels["axpy"] == max(kernels.values())
    assert kernels["cg"] <= 0.3
    print()
    print(render_language_table(results, "cpp"))
    print(f"shape agreement: rho={comparison.cell_rank_correlation:.2f} "
          f"within-one-level={comparison.within_one_level:.0%}")
