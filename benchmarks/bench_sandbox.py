"""PERF: cost of the evaluation substrates (analysis + sandbox execution).

Times the three judging paths a suggestion can take: static analysis of a
C++ suggestion, sandboxed execution of a numpy suggestion, and interpreted
execution of a pyCUDA suggestion on the simulated device — plus the
batched-vs-serial sandbox comparison (:func:`collect_sandbox_record`), which
feeds the ``sandbox[serial]`` / ``sandbox[batched]`` datapoints of
``BENCH_perf.json``.  Runs standalone (``python benchmarks/bench_sandbox.py``
merges its datapoints into the existing perf record) or under pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.corpus.templates import get_template
from repro.sandbox import evaluate_python_suggestion, evaluate_python_suggestions
from repro.sandbox.cuda_c import CudaModule
import numpy as np

#: Where the perf record lands (the repo root's BENCH_* trajectory).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Timing repeats (best-of, to damp scheduler noise).
REPEATS = 3


def _pipeline_batches() -> list[list[tuple[str, str]]]:
    """The execution batches the pipeline actually forms: for every Python
    grid cell, the distinct suggestions of its completion at the default
    seed (the analyzer memo dedups exact duplicates before execution)."""
    from repro.codex.config import DEFAULT_SEED
    from repro.codex.engine import SimulatedCodex
    from repro.codex.prompt import Prompt
    from repro.models.grid import experiment_grid

    engine = SimulatedCodex(seed=DEFAULT_SEED)
    batches: list[list[tuple[str, str]]] = []
    for cell in experiment_grid(languages=("python",)):
        completion = engine.complete(Prompt.from_cell(cell))
        seen: set[str] = set()
        batch = []
        for code in completion.suggestions:
            if code not in seen:
                seen.add(code)
                batch.append((code, cell.kernel))
        if batch:
            batches.append(batch)
    return batches


def collect_sandbox_record(repeats: int = REPEATS) -> dict:
    """Best-of-``repeats`` wall-clock of the serial and batched sandbox paths
    over every Python cell's real suggestion batch, asserting identical
    outcomes.  Serial evaluates each suggestion in its own sandbox context
    (the pre-batching behaviour); batched runs one context per cell batch."""
    batches = _pipeline_batches()
    total = sum(len(batch) for batch in batches)
    # Untimed warm-up: first-touch costs (imports, task construction, numpy
    # caches) land outside the measured region for both paths.
    for batch in batches:
        evaluate_python_suggestions(batch)
    # Paired protocol: each repeat times serial and batched back-to-back for
    # every individual batch, keeping the per-batch minimum.  Scheduler drift
    # hits both paths of a pair equally, so the small structural advantage
    # of batching is not swamped by load noise on a busy box.
    serial_batch_best = [float("inf")] * len(batches)
    batched_batch_best = [float("inf")] * len(batches)
    serial_results = batched_results = None
    for _ in range(repeats):
        serial_results = []
        batched_results = []
        for index, batch in enumerate(batches):
            start = time.perf_counter()
            serial_results.extend(
                evaluate_python_suggestion(code, kernel) for code, kernel in batch
            )
            serial_batch_best[index] = min(
                serial_batch_best[index], time.perf_counter() - start
            )
            start = time.perf_counter()
            batched_results.extend(evaluate_python_suggestions(batch))
            batched_batch_best[index] = min(
                batched_batch_best[index], time.perf_counter() - start
            )
    assert [(r.passed, r.issues) for r in serial_results] == [
        (r.passed, r.issues) for r in batched_results
    ], "batched sandbox outcomes diverged from serial"
    serial_best = sum(serial_batch_best)
    batched_best = sum(batched_batch_best)
    # Batching amortizes per-suggestion context setup (fake-runtime install,
    # CUDA parse/launch reuse), so the win concentrates in the CPU-backed
    # cells (numpy/numba) whose executions are microseconds; the interpreted
    # GPU cells are dominated by per-suggestion kernel interpretation that no
    # batch can share.  Report the setup-bound stratum next to the overall
    # number so the trajectory tracks both.
    cpu_indices = [
        index
        for index, batch in enumerate(batches)
        if not any(("pycuda" in code) or ("cupy" in code) for code, _ in batch)
    ]
    cpu_total = sum(len(batches[index]) for index in cpu_indices)
    serial_cpu = sum(serial_batch_best[index] for index in cpu_indices)
    batched_cpu = sum(batched_batch_best[index] for index in cpu_indices)
    return {
        "experiments": {
            f"sandbox[serial x{total}]": round(serial_best, 4),
            f"sandbox[batched x{total}]": round(batched_best, 4),
            f"sandbox[serial cpu x{cpu_total}]": round(serial_cpu, 4),
            f"sandbox[batched cpu x{cpu_total}]": round(batched_cpu, 4),
        },
        "batched_speedup": round(serial_best / batched_best, 3) if batched_best else None,
        "batched_speedup_cpu": round(serial_cpu / batched_cpu, 3) if batched_cpu else None,
    }


def test_batched_execution_matches_serial_under_load():
    record = collect_sandbox_record(repeats=1)
    assert record["batched_speedup"] is not None
    assert record["batched_speedup_cpu"] is not None


def main() -> None:
    """Merge the batched-vs-serial datapoints into BENCH_perf.json."""
    record = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {"experiments": {}}
    sandbox = collect_sandbox_record()
    record.setdefault("experiments", {}).update(sandbox["experiments"])
    record["batched_speedup"] = sandbox["batched_speedup"]
    record["batched_speedup_cpu"] = sandbox["batched_speedup_cpu"]
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH}")
    for key, seconds in sorted(sandbox["experiments"].items()):
        print(f"  {key:28s} {seconds:8.4f}s")
    print(
        f"  batched speedup x{sandbox['batched_speedup']} "
        f"(cpu-bound stratum x{sandbox['batched_speedup_cpu']})"
    )


def test_static_analysis_cpp_cg(benchmark):
    analyzer = SuggestionAnalyzer()
    code = get_template("cpp", "cuda", "cg")

    def run():
        analyzer._cache.clear()
        return analyzer.analyze(code, language="cpp", kernel="cg", requested_model="cpp.cuda")

    verdict = benchmark(run)
    assert verdict.is_correct


def test_sandbox_numpy_cg(benchmark):
    code = get_template("python", "numpy", "cg")
    result = benchmark(evaluate_python_suggestion, code, "cg")
    assert result.passed


def test_sandbox_pycuda_gemv(benchmark):
    code = get_template("python", "pycuda", "gemv")
    result = benchmark(evaluate_python_suggestion, code, "gemv")
    assert result.passed


def test_cuda_interpreter_axpy_launch(benchmark):
    source = """
    extern "C" __global__
    void axpy(const int n, const double a, const double *x, double *y)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            y[i] = a * x[i] + y[i];
        }
    }
    """
    kernel = CudaModule(source).get_kernel("axpy")
    rng = np.random.default_rng(0)
    n = 256
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)

    def launch():
        kernel.launch((1,), (256,), (n, 2.0, x, y))

    benchmark(launch)


if __name__ == "__main__":
    main()
