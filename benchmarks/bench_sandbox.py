"""PERF: cost of the evaluation substrates (analysis + sandbox execution).

Times the three judging paths a suggestion can take: static analysis of a
C++ suggestion, sandboxed execution of a numpy suggestion, and interpreted
execution of a pyCUDA suggestion on the simulated device.
"""

from __future__ import annotations

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.corpus.templates import get_template
from repro.sandbox import evaluate_python_suggestion
from repro.sandbox.cuda_c import CudaModule
import numpy as np


def test_static_analysis_cpp_cg(benchmark):
    analyzer = SuggestionAnalyzer()
    code = get_template("cpp", "cuda", "cg")

    def run():
        analyzer._cache.clear()
        return analyzer.analyze(code, language="cpp", kernel="cg", requested_model="cpp.cuda")

    verdict = benchmark(run)
    assert verdict.is_correct


def test_sandbox_numpy_cg(benchmark):
    code = get_template("python", "numpy", "cg")
    result = benchmark(evaluate_python_suggestion, code, "cg")
    assert result.passed


def test_sandbox_pycuda_gemv(benchmark):
    code = get_template("python", "pycuda", "gemv")
    result = benchmark(evaluate_python_suggestion, code, "gemv")
    assert result.passed


def test_cuda_interpreter_axpy_launch(benchmark):
    source = """
    extern "C" __global__
    void axpy(const int n, const double a, const double *x, double *y)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            y[i] = a * x[i] + y[i];
        }
    }
    """
    kernel = CudaModule(source).get_kernel("axpy")
    rng = np.random.default_rng(0)
    n = 256
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)

    def launch():
        kernel.launch((1,), (256,), (n, 2.0, x, y))

    benchmark(launch)
