"""PERF: cost of the evaluation substrates (analysis + sandbox execution).

Times the three judging paths a suggestion can take: static analysis of a
C++ suggestion, sandboxed execution of a numpy suggestion, and interpreted
execution of a pyCUDA suggestion on the simulated device — plus the
batched-vs-serial sandbox comparison (:func:`collect_sandbox_record`) and
the scalar-vs-lockstep CUDA interpreter comparison
(:func:`collect_interpreter_record`), which feed the ``sandbox[...]`` /
``cuda[...]`` datapoints of ``BENCH_perf.json``.  Runs standalone
(``python benchmarks/bench_sandbox.py`` merges its datapoints into the
existing perf record) or under pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.corpus.templates import get_template
from repro.sandbox import evaluate_python_suggestion, evaluate_python_suggestions
from repro.sandbox.cuda_c import CudaModule, execution_mode, lockstep_stats, static_elision
import numpy as np

#: Where the perf record lands (the repo root's BENCH_* trajectory).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Timing repeats (best-of, to damp scheduler noise).
REPEATS = 3


def _pipeline_batches() -> list[list[tuple[str, str]]]:
    """The execution batches the pipeline actually forms: for every Python
    grid cell, the distinct suggestions of its completion at the default
    seed (the analyzer memo dedups exact duplicates before execution)."""
    from repro.codex.config import DEFAULT_SEED
    from repro.codex.engine import SimulatedCodex
    from repro.codex.prompt import Prompt
    from repro.models.grid import experiment_grid

    engine = SimulatedCodex(seed=DEFAULT_SEED)
    batches: list[list[tuple[str, str]]] = []
    for cell in experiment_grid(languages=("python",)):
        completion = engine.complete(Prompt.from_cell(cell))
        seen: set[str] = set()
        batch = []
        for code in completion.suggestions:
            if code not in seen:
                seen.add(code)
                batch.append((code, cell.kernel))
        if batch:
            batches.append(batch)
    return batches


def collect_sandbox_record(repeats: int = REPEATS) -> dict:
    """Best-of-``repeats`` wall-clock of the serial and batched sandbox paths
    over every Python cell's real suggestion batch, asserting identical
    outcomes.  Serial evaluates each suggestion in its own sandbox context
    (the pre-batching behaviour); batched runs one context per cell batch."""
    batches = _pipeline_batches()
    total = sum(len(batch) for batch in batches)
    # Untimed warm-up: first-touch costs (imports, task construction, numpy
    # caches) land outside the measured region for both paths.
    for batch in batches:
        evaluate_python_suggestions(batch)
    # Paired protocol: each repeat times serial and batched back-to-back for
    # every individual batch, keeping the per-batch minimum.  Scheduler drift
    # hits both paths of a pair equally, so the small structural advantage
    # of batching is not swamped by load noise on a busy box.
    serial_batch_best = [float("inf")] * len(batches)
    batched_batch_best = [float("inf")] * len(batches)
    serial_results = batched_results = None
    for _ in range(repeats):
        serial_results = []
        batched_results = []
        for index, batch in enumerate(batches):
            start = time.perf_counter()
            serial_results.extend(
                evaluate_python_suggestion(code, kernel) for code, kernel in batch
            )
            serial_batch_best[index] = min(
                serial_batch_best[index], time.perf_counter() - start
            )
            start = time.perf_counter()
            batched_results.extend(evaluate_python_suggestions(batch))
            batched_batch_best[index] = min(
                batched_batch_best[index], time.perf_counter() - start
            )
    assert [(r.passed, r.issues) for r in serial_results] == [
        (r.passed, r.issues) for r in batched_results
    ], "batched sandbox outcomes diverged from serial"
    serial_best = sum(serial_batch_best)
    batched_best = sum(batched_batch_best)
    # Batching amortizes per-suggestion context setup (fake-runtime install,
    # CUDA parse/launch reuse), so the win concentrates in the CPU-backed
    # cells (numpy/numba) whose executions are microseconds; the interpreted
    # GPU cells are dominated by per-suggestion kernel interpretation that no
    # batch can share.  Report the setup-bound stratum next to the overall
    # number so the trajectory tracks both.
    cpu_indices = [
        index
        for index, batch in enumerate(batches)
        if not any(("pycuda" in code) or ("cupy" in code) for code, _ in batch)
    ]
    cpu_total = sum(len(batches[index]) for index in cpu_indices)
    serial_cpu = sum(serial_batch_best[index] for index in cpu_indices)
    batched_cpu = sum(batched_batch_best[index] for index in cpu_indices)
    return {
        "experiments": {
            f"sandbox[serial x{total}]": round(serial_best, 4),
            f"sandbox[batched x{total}]": round(batched_best, 4),
            f"sandbox[serial cpu x{cpu_total}]": round(serial_cpu, 4),
            f"sandbox[batched cpu x{cpu_total}]": round(batched_cpu, 4),
        },
        "batched_speedup": round(serial_best / batched_best, 3) if batched_best else None,
        "batched_speedup_cpu": round(serial_cpu / batched_cpu, 3) if batched_cpu else None,
    }


def test_batched_execution_matches_serial_under_load():
    record = collect_sandbox_record(repeats=1)
    assert record["batched_speedup"] is not None
    assert record["batched_speedup_cpu"] is not None


# ---------------------------------------------------------------------------
# CUDA interpreter: scalar thread sweep vs vectorized lockstep engine
# ---------------------------------------------------------------------------

def _interpreter_launch_cases() -> list[tuple[str, str, tuple, tuple, tuple]]:
    """The corpus kernels at their sandbox-task problem sizes, as direct
    launch cases (name, source, grid, block, args) — the interpreter-bound
    stratum with no sandbox overhead in the way."""
    rng = np.random.default_rng(20230414)
    gemm_m, gemm_n, gemm_k = 8, 7, 6
    jac_n = 6
    cases = [
        ("axpy", """extern "C" __global__
void axpy(const int n, const double a, const double *x, double *y)
{ int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { y[i] = a * x[i] + y[i]; } }""",
         (1,), (256,), (64, 1.5, rng.standard_normal(64), rng.standard_normal(64))),
        ("gemv", """__global__ void gemv(const int m, const int n, const double *A, const double *x, double *y)
{ int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) { double sum = 0.0; for (int j = 0; j < n; j++) { sum += A[i * n + j] * x[j]; } y[i] = sum; } }""",
         (1,), (256,), (12, 9, rng.standard_normal(108), rng.standard_normal(9), np.zeros(12))),
        ("gemm", """__global__ void gemm(const int m, const int n, const int k,
                     const double *A, const double *B, double *C)
{ int i = blockIdx.y * blockDim.y + threadIdx.y; int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m && j < n) { double sum = 0.0; for (int l = 0; l < k; l++) { sum += A[i * k + l] * B[l * n + j]; }
  C[i * n + j] = sum; } }""",
         ((gemm_n + 15) // 16, (gemm_m + 15) // 16), (16, 16, 1),
         (gemm_m, gemm_n, gemm_k, rng.standard_normal(gemm_m * gemm_k),
          rng.standard_normal(gemm_k * gemm_n), np.zeros(gemm_m * gemm_n))),
        ("spmv", """__global__ void spmv(const int n, const int *row_ptr, const int *col_idx,
                     const double *values, const double *x, double *y)
{ int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { double sum = 0.0;
    for (int j = row_ptr[i]; j < row_ptr[i + 1]; j++) { sum += values[j] * x[col_idx[j]]; }
    y[i] = sum; } }""",
         (1,), (256,), (16, (np.arange(17) * 4).astype(np.int32),
                        rng.integers(0, 16, 64).astype(np.int32),
                        rng.standard_normal(64), rng.standard_normal(16), np.zeros(16))),
        ("jacobi", """__global__ void jacobi(const int n, const double *u, double *u_new)
{ int i = blockIdx.z * blockDim.z + threadIdx.z; int j = blockIdx.y * blockDim.y + threadIdx.y;
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1 && k >= 1 && k < n - 1) {
    int idx = i * n * n + j * n + k;
    u_new[idx] = (u[(i - 1) * n * n + j * n + k] + u[(i + 1) * n * n + j * n + k] +
                  u[i * n * n + (j - 1) * n + k] + u[i * n * n + (j + 1) * n + k] +
                  u[i * n * n + j * n + (k - 1)] + u[i * n * n + j * n + (k + 1)]) / 6.0; } }""",
         ((jac_n + 3) // 4,) * 3, (4, 4, 4),
         (jac_n, rng.standard_normal(jac_n ** 3), rng.standard_normal(jac_n ** 3))),
    ]
    return cases


def collect_interpreter_record(repeats: int = REPEATS) -> dict:
    """Paired scalar-vs-lockstep wall-clock of the CUDA interpreter.

    Two strata: direct kernel launches over the corpus kernels at their
    sandbox-task sizes (the pure interpreter-bound stratum PR 3 identified
    as the dominant sandbox cost), and the GPU-backed suggestion batches
    end-to-end.  Asserts byte-identical buffers between engines and zero
    lockstep fallbacks on the stock kernels while measuring.
    """
    cases = [
        (name, CudaModule(src).get_kernel(name), grid, block, args)
        for name, src, grid, block, args in _interpreter_launch_cases()
    ]
    before = lockstep_stats()
    # Correctness gate (and warm-up): both engines, byte-identical buffers.
    for name, kern, grid, block, args in cases:
        buffers = {}
        for mode in ("auto", "scalar"):
            copies = tuple(a.copy() if isinstance(a, np.ndarray) else a for a in args)
            with execution_mode(mode):
                kern.launch(grid, block, copies)
            buffers[mode] = b"".join(
                a.tobytes() for a in copies if isinstance(a, np.ndarray)
            )
        assert buffers["auto"] == buffers["scalar"], f"{name}: engine divergence"
    delta = lockstep_stats()
    fallbacks = delta.get("launches_scalar_fallback", 0) - before.get("launches_scalar_fallback", 0)
    assert fallbacks == 0, "stock corpus kernels must run fully vectorized"

    launch_best = {"auto": [float("inf")] * len(cases), "scalar": [float("inf")] * len(cases)}
    for _ in range(repeats):
        for index, (name, kern, grid, block, args) in enumerate(cases):
            for mode in ("auto", "scalar"):
                copies = tuple(a.copy() if isinstance(a, np.ndarray) else a for a in args)
                with execution_mode(mode):
                    start = time.perf_counter()
                    kern.launch(grid, block, copies)
                    elapsed = time.perf_counter() - start
                launch_best[mode][index] = min(launch_best[mode][index], elapsed)
    lockstep_launch = sum(launch_best["auto"])
    scalar_launch = sum(launch_best["scalar"])

    # End-to-end: the pipeline's GPU-backed suggestion batches.
    gpu_batches = [
        batch for batch in _pipeline_batches()
        if any(("pycuda" in code) or ("cupy" in code) for code, _ in batch)
    ]
    gpu_total = sum(len(batch) for batch in gpu_batches)
    for batch in gpu_batches:  # warm-up
        evaluate_python_suggestions(batch)
    batch_best = {"auto": [float("inf")] * len(gpu_batches),
                  "scalar": [float("inf")] * len(gpu_batches)}
    outcomes = {}
    for _ in range(repeats):
        for mode in ("auto", "scalar"):
            results = []
            for index, batch in enumerate(gpu_batches):
                start = time.perf_counter()
                results.extend(evaluate_python_suggestions(batch, cuda_execution=mode))
                batch_best[mode][index] = min(
                    batch_best[mode][index], time.perf_counter() - start
                )
            outcomes[mode] = [(r.passed, tuple(r.issues)) for r in results]
    assert outcomes["auto"] == outcomes["scalar"], "engine outcomes diverged on GPU batches"
    lockstep_e2e = sum(batch_best["auto"])
    scalar_e2e = sum(batch_best["scalar"])

    n_launches = len(cases)
    return {
        "experiments": {
            f"cuda[scalar launches x{n_launches}]": round(scalar_launch, 4),
            f"cuda[lockstep launches x{n_launches}]": round(lockstep_launch, 4),
            f"sandbox[gpu scalar x{gpu_total}]": round(scalar_e2e, 4),
            f"sandbox[gpu lockstep x{gpu_total}]": round(lockstep_e2e, 4),
        },
        "lockstep_speedup": round(scalar_launch / lockstep_launch, 3) if lockstep_launch else None,
        "lockstep_speedup_e2e": round(scalar_e2e / lockstep_e2e, 3) if lockstep_e2e else None,
    }


def test_lockstep_interpreter_beats_scalar():
    record = collect_interpreter_record(repeats=1)
    assert record["lockstep_speedup"] is not None and record["lockstep_speedup"] > 1.0
    assert record["lockstep_speedup_e2e"] is not None


# ---------------------------------------------------------------------------
# CUDA interpreter: static-analysis-driven hazard-tracking elision
# ---------------------------------------------------------------------------

def _static_elision_cases() -> list[tuple[str, str, tuple, tuple, tuple]]:
    """Store-heavy launch cases where per-store hazard tracking dominates.

    The stock corpus kernels store once per lane, so elision barely shows;
    these variants store in every loop iteration (a common suggestion idiom:
    accumulate directly into the output element), which is where dropping
    the writer/duplicate/foreign-reader bookkeeping pays.
    """
    rng = np.random.default_rng(20230414)
    m, n = 48, 64
    return [
        ("gemv_acc", """__global__ void gemv_acc(const int m, const int n, const double *A,
                     const double *x, double *y)
{ int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) { y[i] = 0.0;
    for (int j = 0; j < n; j++) { y[i] = y[i] + A[i * n + j] * x[j]; } } }""",
         (1,), (64,), (m, n, rng.standard_normal(m * n), rng.standard_normal(n), np.zeros(m))),
        ("axpy_iter", """extern "C" __global__
void axpy_iter(const int n, const int iters, const double a, const double *x, double *y)
{ int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { for (int t = 0; t < iters; t++) { y[i] = a * x[i] + y[i]; } } }""",
         (1,), (256,), (256, 32, 1.0009, rng.standard_normal(256), rng.standard_normal(256))),
    ]


def collect_static_record(repeats: int = REPEATS) -> dict:
    """Paired lockstep wall-clock with hazard-tracking elision on vs off.

    Both passes run the vectorized engine; the only difference is whether
    the static analyzer's race-SAFE proofs drop the per-access runtime
    bookkeeping.  Asserts byte-identical buffers between the two settings
    and that every elided launch stays fallback-free.
    """
    cases = [
        (name, CudaModule(src).get_kernel(name), grid, block, args)
        for name, src, grid, block, args in _static_elision_cases()
    ]
    before = lockstep_stats()
    # Correctness gate (and warm-up): elision must not change a single byte.
    for name, kern, grid, block, args in cases:
        buffers = {}
        for enabled in (True, False):
            copies = tuple(a.copy() if isinstance(a, np.ndarray) else a for a in args)
            with static_elision(enabled):
                kern.launch(grid, block, copies)
            buffers[enabled] = b"".join(
                a.tobytes() for a in copies if isinstance(a, np.ndarray)
            )
        assert buffers[True] == buffers[False], f"{name}: elision changed results"
    delta = lockstep_stats()
    fallbacks = delta.get("launches_scalar_fallback", 0) - before.get("launches_scalar_fallback", 0)
    assert fallbacks == 0, "elision cases must run fully vectorized"
    elided = delta.get("launches_static_elided", 0) - before.get("launches_static_elided", 0)
    assert elided >= len(cases), "static analyzer failed to prove the cases race-safe"

    best = {True: [float("inf")] * len(cases), False: [float("inf")] * len(cases)}
    for _ in range(repeats):
        for index, (name, kern, grid, block, args) in enumerate(cases):
            for enabled in (True, False):
                copies = tuple(a.copy() if isinstance(a, np.ndarray) else a for a in args)
                with static_elision(enabled):
                    start = time.perf_counter()
                    kern.launch(grid, block, copies)
                    elapsed = time.perf_counter() - start
                best[enabled][index] = min(best[enabled][index], elapsed)
    elided_time = sum(best[True])
    tracked_time = sum(best[False])
    n_launches = len(cases)
    return {
        "experiments": {
            f"cuda[tracked launches x{n_launches}]": round(tracked_time, 4),
            f"cuda[static-elided launches x{n_launches}]": round(elided_time, 4),
        },
        "lockstep_static_speedup": round(tracked_time / elided_time, 3) if elided_time else None,
    }


def test_static_elision_speeds_up_lockstep():
    record = collect_static_record(repeats=1)
    assert record["lockstep_static_speedup"] is not None
    assert record["lockstep_static_speedup"] > 1.0


def main() -> None:
    """Merge the batched-vs-serial and scalar-vs-lockstep datapoints into
    BENCH_perf.json."""
    record = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {"experiments": {}}
    sandbox = collect_sandbox_record()
    record.setdefault("experiments", {}).update(sandbox["experiments"])
    record["batched_speedup"] = sandbox["batched_speedup"]
    record["batched_speedup_cpu"] = sandbox["batched_speedup_cpu"]
    interpreter = collect_interpreter_record()
    record["experiments"].update(interpreter["experiments"])
    record["lockstep_speedup"] = interpreter["lockstep_speedup"]
    record["lockstep_speedup_e2e"] = interpreter["lockstep_speedup_e2e"]
    static = collect_static_record()
    record["experiments"].update(static["experiments"])
    record["lockstep_static_speedup"] = static["lockstep_static_speedup"]
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH}")
    for key, seconds in sorted(
        {**sandbox["experiments"], **interpreter["experiments"], **static["experiments"]}.items()
    ):
        print(f"  {key:32s} {seconds:8.4f}s")
    print(
        f"  batched speedup x{sandbox['batched_speedup']} "
        f"(cpu-bound stratum x{sandbox['batched_speedup_cpu']})"
    )
    print(
        f"  lockstep speedup x{interpreter['lockstep_speedup']} on the "
        f"interpreter-bound stratum (gpu batches end-to-end "
        f"x{interpreter['lockstep_speedup_e2e']})"
    )
    print(
        f"  static elision speedup x{static['lockstep_static_speedup']} on "
        "store-heavy lockstep launches"
    )


def test_static_analysis_cpp_cg(benchmark):
    analyzer = SuggestionAnalyzer()
    code = get_template("cpp", "cuda", "cg")

    def run():
        analyzer._cache.clear()
        return analyzer.analyze(code, language="cpp", kernel="cg", requested_model="cpp.cuda")

    verdict = benchmark(run)
    assert verdict.is_correct


def test_sandbox_numpy_cg(benchmark):
    code = get_template("python", "numpy", "cg")
    result = benchmark(evaluate_python_suggestion, code, "cg")
    assert result.passed


def test_sandbox_pycuda_gemv(benchmark):
    code = get_template("python", "pycuda", "gemv")
    result = benchmark(evaluate_python_suggestion, code, "gemv")
    assert result.passed


def test_cuda_interpreter_axpy_launch(benchmark):
    source = """
    extern "C" __global__
    void axpy(const int n, const double a, const double *x, double *y)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            y[i] = a * x[i] + y[i];
        }
    }
    """
    kernel = CudaModule(source).get_kernel("axpy")
    rng = np.random.default_rng(0)
    n = 256
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)

    def launch():
        kernel.launch((1,), (256,), (n, 2.0, x, y))

    benchmark(launch)


if __name__ == "__main__":
    main()
