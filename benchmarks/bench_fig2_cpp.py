"""E-F2: regenerate Figure 2 (C++ per-kernel and per-model average scores)."""

from __future__ import annotations

from _shared import evaluate_language
from repro.harness.figures import figure_data, render_figure


def _figure2():
    results = evaluate_language("cpp")
    return results, figure_data(results, "cpp")


def test_figure2_cpp(benchmark):
    results, data = benchmark(_figure2)
    kernels, models = data["kernels"], data["models"]
    # Shape: AXPY best, CG worst; OpenMP ahead of HIP.
    assert kernels["axpy"] == max(kernels.values())
    assert kernels["cg"] == min(kernels.values())
    assert models["cpp.openmp"] > models["cpp.hip"]
    print()
    print(render_figure(results, "cpp"))
