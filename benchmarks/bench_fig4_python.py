"""E-F4: regenerate Figure 4 (Python per-kernel and per-model average scores)."""

from __future__ import annotations

from _shared import evaluate_language
from repro.harness.figures import figure_data, render_figure


def _figure4():
    results = evaluate_language("python")
    return results, figure_data(results, "python")


def test_figure4_python(benchmark):
    results, data = benchmark(_figure4)
    kernels, models = data["kernels"], data["models"]
    # Shape: most kernels return at least one correct answer thanks to numpy,
    # Numba clearly trails the other three models.
    assert kernels["axpy"] == max(kernels.values())
    assert models["python.numba"] == min(models.values())
    assert models["python.numpy"] >= 2 * models["python.numba"]
    print()
    print(render_figure(results, "python"))
