"""CI perf-regression gate: compare BENCH_perf.json against the baseline.

Usage::

    python benchmarks/check_regression.py [--baseline BENCH_baseline.json]
        [--current BENCH_perf.json] [--speedup-tolerance 0.6]
        [--wallclock-tolerance 2.5]

The gate reads the freshly-measured ``BENCH_perf.json`` (written by
``bench_parallel_scaling.py`` earlier in the CI run) and the committed
``BENCH_baseline.json``, and **fails the build** when the perf trajectory
regresses:

* **Speedups** (dimensionless ratios — ``lockstep_speedup``,
  ``warm_store_speedup``, ``dispatch_resume_speedup``, ...) must not fall
  below ``baseline * (1 - speedup_tolerance)``.  Ratios are largely
  machine-independent, so the tolerance mostly absorbs scheduler noise.
* **Wall-clocks** (every ``full_grid[*]`` experiment) must not exceed
  ``baseline * wallclock_tolerance``.  Absolute seconds vary across CI
  hardware generations, hence the deliberately loose default factor — the
  gate catches "the grid got 3x slower", not 10% jitter.
* **Missing keys are failures**: a metric silently vanishing from the
  record is itself a regression of the benchmark.

Exit status 0 = within tolerance, 1 = regression (each violation printed),
2 = unusable input.  Tested in ``tests/test_check_regression.py``; the CI
job additionally feeds a doctored record to prove the gate actually fires.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Dimensionless ratios gated against a relative drop.
SPEEDUP_KEYS = (
    "lockstep_speedup",
    "lockstep_speedup_e2e",
    "lockstep_static_speedup",
    "warm_store_speedup",
    "dispatch_resume_speedup",
    "batched_speedup",
)

#: Wall-clock experiment keys gated against a growth factor (prefix match).
WALLCLOCK_PREFIX = "full_grid["

#: A speedup may drop this fraction below baseline before the gate fires.
#: Wide on purpose: the committed baseline comes from one machine and CI
#: runs on another — the gate exists to catch "the optimization is gone"
#: (a 10x becoming 2x), not cross-hardware jitter.
DEFAULT_SPEEDUP_TOLERANCE = 0.6

#: A wall-clock may grow this factor over baseline before the gate fires.
DEFAULT_WALLCLOCK_TOLERANCE = 2.5

#: Absolute wall-clock slack added on top of the factor: sub-100ms
#: baselines (the warm/resume paths) are IO-noise-dominated, and a pure
#: ratio would turn scheduler jitter into build failures.
WALLCLOCK_SLACK_SECONDS = 0.1

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_regressions(
    baseline: dict,
    current: dict,
    *,
    speedup_tolerance: float = DEFAULT_SPEEDUP_TOLERANCE,
    wallclock_tolerance: float = DEFAULT_WALLCLOCK_TOLERANCE,
) -> list[str]:
    """All tolerance violations of ``current`` vs ``baseline`` (empty = pass)."""
    failures: list[str] = []
    for key in SPEEDUP_KEYS:
        reference = baseline.get(key)
        if reference is None:
            continue  # metric not tracked in this baseline generation
        measured = current.get(key)
        if measured is None:
            failures.append(f"{key}: missing from the current record (baseline {reference})")
            continue
        floor = reference * (1.0 - speedup_tolerance)
        if measured < floor:
            failures.append(
                f"{key}: x{measured} fell below x{floor:.3f} "
                f"(baseline x{reference}, tolerance -{speedup_tolerance:.0%})"
            )
    baseline_experiments = baseline.get("experiments", {})
    current_experiments = current.get("experiments", {})
    for key, reference in sorted(baseline_experiments.items()):
        if not key.startswith(WALLCLOCK_PREFIX):
            continue
        measured = current_experiments.get(key)
        if measured is None:
            failures.append(f"{key}: missing from the current record (baseline {reference}s)")
            continue
        ceiling = reference * wallclock_tolerance + WALLCLOCK_SLACK_SECONDS
        if measured > ceiling:
            failures.append(
                f"{key}: {measured}s exceeded {ceiling:.4f}s "
                f"(baseline {reference}s, tolerance x{wallclock_tolerance})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "BENCH_baseline.json",
        help="committed reference record",
    )
    parser.add_argument(
        "--current", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="freshly measured record",
    )
    parser.add_argument(
        "--speedup-tolerance", type=float, default=DEFAULT_SPEEDUP_TOLERANCE,
        help="allowed fractional drop of speedup ratios (default %(default)s)",
    )
    parser.add_argument(
        "--wallclock-tolerance", type=float, default=DEFAULT_WALLCLOCK_TOLERANCE,
        help="allowed growth factor of full_grid wall-clocks (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = json.loads(args.baseline.read_text("utf-8"))
        current = json.loads(args.current.read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"check_regression: cannot read records: {exc}", file=sys.stderr)
        return 2
    failures = check_regressions(
        baseline,
        current,
        speedup_tolerance=args.speedup_tolerance,
        wallclock_tolerance=args.wallclock_tolerance,
    )
    if failures:
        print(f"PERF REGRESSION vs {args.baseline.name}:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    gated = [key for key in SPEEDUP_KEYS if key in baseline] + [
        key for key in sorted(baseline.get("experiments", {})) if key.startswith(WALLCLOCK_PREFIX)
    ]
    print(f"perf gate: {len(gated)} metric(s) within tolerance of {args.baseline.name}")
    for key in gated:
        measured = current.get(key, current.get("experiments", {}).get(key))
        print(f"  ok {key} = {measured}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
