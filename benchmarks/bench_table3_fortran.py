"""E-T3: regenerate Table 3 (Fortran proficiency scores, with/without `subroutine`)."""

from __future__ import annotations

from _shared import assert_shape_agreement, evaluate_language
from repro.core.aggregate import postfix_effect
from repro.harness.tables import render_language_table


def test_table3_fortran(benchmark):
    results = benchmark(evaluate_language, "fortran")
    comparison = assert_shape_agreement(results, "fortran")
    # Headline Fortran finding: the `subroutine` keyword is essential — the
    # bare prompt is near-useless, the keyword variant is uniformly acceptable.
    effect = postfix_effect(results, "fortran")
    assert effect["with_keyword"] > effect["without_keyword"]
    bare = results.filter(language="fortran", use_postfix=False)
    assert bare.mean_score() <= 0.3
    print()
    print(render_language_table(results, "fortran"))
    print(f"keyword effect: {effect['without_keyword']:.2f} -> {effect['with_keyword']:.2f}; "
          f"rho={comparison.cell_rank_correlation:.2f}")
