"""E-F3: regenerate Figure 3 (Fortran per-kernel and per-model average scores)."""

from __future__ import annotations

from _shared import evaluate_language
from repro.harness.figures import figure_data, render_figure


def _figure3():
    results = evaluate_language("fortran")
    return results, figure_data(results, "fortran")


def test_figure3_fortran(benchmark):
    results, data = benchmark(_figure3)
    kernels, models = data["kernels"], data["models"]
    # Shape: responses are comparatively uniform across kernels (the paper's
    # observation for Fortran) and OpenMP is the strongest model.
    assert max(kernels.values()) - min(kernels.values()) <= 0.5
    assert models["fortran.openmp"] == max(models.values())
    print()
    print(render_figure(results, "fortran"))
