"""E-F5: regenerate Figure 5 (Julia per-kernel and per-model average scores)."""

from __future__ import annotations

from _shared import evaluate_language
from repro.harness.figures import figure_data, render_figure


def _figure5():
    results = evaluate_language("julia")
    return results, figure_data(results, "julia")


def test_figure5_julia(benchmark):
    results, data = benchmark(_figure5)
    kernels, models = data["kernels"], data["models"]
    # Shape: the mature models (Threads, CUDA.jl) sit between novice and
    # learner, the young ones (AMDGPU.jl, KernelAbstractions.jl) rank lower,
    # and CG is the weakest kernel.
    mature = max(models["julia.threads"], models["julia.cuda"])
    young = max(models["julia.amdgpu"], models["julia.kernelabstractions"])
    assert mature >= young
    assert kernels["cg"] == min(kernels.values())
    print()
    print(render_figure(results, "julia"))
