"""A-KW: ablation of the prompt post-fix keyword (paper Section 4 discussion)."""

from __future__ import annotations

from repro.harness.experiments import run_keyword_ablation


def test_ablation_keywords(benchmark):
    report = benchmark(run_keyword_ablation)
    effects = report.data["effects"]
    # The paper's qualitative findings: the keyword is decisive for Fortran
    # and Python, mild for C++, and Julia has no keyword variant at all.
    assert effects["fortran"]["delta"] > 0.1
    assert effects["python"]["delta"] > 0.1
    assert abs(effects["cpp"]["delta"]) < 0.2
    assert effects["julia"]["delta"] == 0.0
    print()
    print(report.text)
