"""CI smoke: the lockstep CUDA engine must actually cover the stock corpus.

The vectorized interpreter falls back to the scalar sweep whenever it cannot
prove equivalence — which is always *correct* but silently loses the speedup.
This guard fails CI if any stock corpus kernel stops vectorizing:

* every CUDA-embedded template suggestion must compile to a lockstep program
  (zero ``kernels_scalar_only``),
* executing them end-to-end must take the lockstep path for every launch
  (zero ``launches_scalar_fallback`` — the expected fallback count for the
  stock corpus is exactly 0), and
* every suggestion must still pass its oracle.

Runs standalone (``python benchmarks/bench_lockstep_smoke.py``) or under
pytest.  A mutation that *should* fall back (data-dependent scatter races)
is exercised in ``tests/test_cuda_vectorized_differential.py``; this file
only guards the fast path.
"""

from __future__ import annotations

from repro.corpus.store import default_corpus
from repro.sandbox import evaluate_python_suggestions
from repro.sandbox.cuda_c import lockstep_stats, reset_lockstep_stats

#: The stock corpus is expected to vectorize completely.
EXPECTED_FALLBACKS = 0
EXPECTED_SCALAR_ONLY_KERNELS = 0


def run_smoke() -> dict:
    corpus = default_corpus()
    stock = [
        (s.code, s.kernel)
        for s in corpus
        if s.language == "python"
        and s.origin.value == "template"
        and ("SourceModule" in s.code or "RawKernel" in s.code)
    ]
    assert stock, "no CUDA-embedded template suggestions found in the corpus"

    reset_lockstep_stats()
    results = evaluate_python_suggestions(stock)
    stats = lockstep_stats()

    failed = [kernel for (_, kernel), r in zip(stock, results) if not r.passed]
    assert not failed, f"stock CUDA suggestions failed their oracles: {failed}"

    scalar_only = stats.get("kernels_scalar_only", 0)
    fallbacks = stats.get("launches_scalar_fallback", 0)
    lockstep_launches = stats.get("launches_lockstep", 0)
    reasons = {k: v for k, v in stats.items() if k.startswith(("fallback[", "unsupported["))}
    assert scalar_only == EXPECTED_SCALAR_ONLY_KERNELS, (
        f"{scalar_only} stock kernel(s) no longer compile to lockstep: {reasons}"
    )
    assert fallbacks == EXPECTED_FALLBACKS, (
        f"lockstep silently fell back {fallbacks}x on the stock corpus: {reasons}"
    )
    assert lockstep_launches > 0, "no launch took the lockstep path"
    return {
        "suggestions": len(stock),
        "lockstep_kernels": stats.get("kernels_lockstep", 0),
        "lockstep_launches": lockstep_launches,
        "scalar_fallbacks": fallbacks,
    }


def test_stock_corpus_runs_fully_vectorized():
    run_smoke()


def main() -> None:
    summary = run_smoke()
    print(
        "lockstep smoke ok: "
        f"{summary['suggestions']} suggestions, "
        f"{summary['lockstep_kernels']} kernels compiled, "
        f"{summary['lockstep_launches']} lockstep launches, "
        f"{summary['scalar_fallbacks']} fallbacks (expected {EXPECTED_FALLBACKS})"
    )


if __name__ == "__main__":
    main()
