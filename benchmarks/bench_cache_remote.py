"""Remote-cache smoke: a shared ``cache-server`` must warm a cold machine
to zero sandbox executions with byte-identical records, and an unreachable
server must degrade to recompute — never wedge or change a record.

Three end-to-end scenarios over the python-language grid (CI runs the
CLI-level equivalent as the ``cache-remote-smoke`` job; locally::

    PYTHONPATH=src python benchmarks/bench_cache_remote.py

):

1. **Cold populate** — a session on "machine A" (empty local store, empty
   server) evaluates the grid and publishes every verdict to the remote.
2. **Warm from remote** — a session on "machine B" (empty local store,
   *same* server) reproduces the records byte-identically with **zero**
   sandbox executions, every verdict read through from the remote, and
   reports the cold/warm wall-clock ratio.
3. **Remote down** — the server is gone; a third cold session pointed at
   the dead URL still completes with identical records by recomputing.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.analyzer import clear_verdict_memo  # noqa: E402
from repro.analysis.store import VerdictStore  # noqa: E402
from repro.api import Session  # noqa: E402
from repro.cache.backends import RemoteBackend  # noqa: E402
from repro.cache.server import CacheServer  # noqa: E402
from repro.codex.config import DEFAULT_SEED  # noqa: E402

LANGUAGE = "python"  # the only language whose analysis pays for a sandbox


def evaluate(store_dir: Path, url: str):
    clear_verdict_memo()  # each scenario simulates a fresh process/machine
    # Attach the remote tier the way the CLI's --cache-url does, but
    # explicitly, so a stray $REPRO_CACHE_URL cannot leak in.  The dead-URL
    # scenario gets a short timeout so degradation fails fast, not at 3s.
    remote = RemoteBackend(url, namespace="verdicts", timeout=0.5)
    store = VerdictStore(store_dir, remote=remote)
    started = time.perf_counter()
    with Session(seed=DEFAULT_SEED, verdict_store=store) as session:
        records = session.language_results(LANGUAGE).to_records()
        executions = session.sandbox_executions
        hits = session.store_hits
    return records, executions, hits, time.perf_counter() - started


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        server = CacheServer(workdir / "served", port=0).start()
        try:
            cold, cold_exec, _, cold_s = evaluate(workdir / "machine-a", server.url)
            assert cold_exec > 0, "cold run must execute sandbox modules"
            served = server.stats()["namespaces"]["verdicts"]["entries"]
            assert served > 0, "cold run must populate the remote"
            print(f"cache-remote: cold run published {served} verdicts in {cold_s:.2f}s")

            warm, warm_exec, warm_hits, warm_s = evaluate(workdir / "machine-b", server.url)
            assert warm == cold, "warm-from-remote records differ from the cold run"
            assert warm_exec == 0, f"warm-from-remote executed {warm_exec} modules"
            assert warm_hits > 0, "warm run reported no store hits"
            print(
                f"cache-remote: warm-from-remote run on a cold disk: "
                f"0 sandbox executions, {warm_hits} hits, "
                f"{cold_s / warm_s:.1f}x faster ({warm_s:.2f}s)"
            )
        finally:
            server.close()

        degraded, degraded_exec, _, _ = evaluate(workdir / "machine-c", "http://127.0.0.1:9")
        assert degraded == cold, "remote-down degradation changed the records"
        assert degraded_exec > 0, "remote-down run should have recomputed"
        print("cache-remote: unreachable server degraded to recompute, records identical")
    print("cache-remote: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
