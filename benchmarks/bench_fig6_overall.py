"""E-F6: regenerate Figure 6 (overall per-kernel and per-language averages)."""

from __future__ import annotations

from _shared import evaluate_full_grid
from repro.core.aggregate import overall_average
from repro.harness.figures import overall_figure_data, render_overall_figure
from repro.kernels.registry import KERNEL_NAMES


def _figure6():
    results = evaluate_full_grid()
    return results, overall_figure_data(results)


def test_figure6_overall(benchmark):
    results, data = benchmark(_figure6)
    kernels, languages = data["kernels"], data["languages"]
    # Shape: complexity degrades quality monotonically at the extremes, the
    # overall average sits around the novice level, and the general-purpose
    # languages (C++, Python) edge out Fortran and Julia.
    assert kernels["axpy"] == max(kernels.values())
    assert kernels["cg"] == min(kernels.values())
    assert list(kernels) == list(KERNEL_NAMES)
    assert 0.1 <= overall_average(results) <= 0.4
    assert max(languages["cpp"], languages["python"]) >= max(
        languages["fortran"], languages["julia"]
    )
    print()
    print(render_overall_figure(results))
