"""Docs link checker: fail on dangling intra-repo markdown links.

Scans every tracked ``*.md`` file for markdown links and images, and
verifies that each intra-repo target resolves:

* relative file links (``docs/api.md``, ``../README.md``) must point at an
  existing file or directory;
* anchor links (``api.md#statistical-sweeps``, ``#layer-diagram``) must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-N`` suffixes for
  duplicates);
* external links (``http(s)://``, ``mailto:``) are ignored — CI must not
  depend on the network.

Exit status 1 with one line per dangling link; 0 when the docs are clean.
Run from the repo root:  python benchmarks/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: [text](target) — stops at the first unescaped ')'.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, the only style the docs use.
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's heading-to-anchor slug (ASCII subset: enough for this repo)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    for lineno, target in _iter_links(path):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        target_path, _, fragment = target.partition("#")
        if target_path:
            resolved = (path.parent / target_path).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(ROOT)}:{lineno}: dangling link {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix == ".md":
            if resolved not in anchor_cache:
                anchor_cache[resolved] = _anchors(resolved)
            if fragment not in anchor_cache[resolved]:
                errors.append(
                    f"{path.relative_to(ROOT)}:{lineno}: dangling anchor {target!r}"
                )
    return errors


#: The maintained documentation set.  Machine-generated context files at the
#: repo root (PAPERS.md and friends) carry extraction artifacts and are not
#: part of the docs contract.
_DOC_ROOTS = ("README.md", "docs", "examples", "benchmarks", "src", "tests")


def main() -> int:
    docs: list[Path] = []
    for root in _DOC_ROOTS:
        path = ROOT / root
        if path.is_file():
            docs.append(path)
        elif path.is_dir():
            docs.extend(sorted(path.rglob("*.md")))
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    for path in docs:
        errors.extend(check_file(path, anchor_cache))
    for error in errors:
        print(error)
    print(f"checked {len(docs)} markdown file(s): {len(errors)} dangling link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
