"""E-PERF: wall-clock scaling of full-grid evaluation across executor backends.

Times the complete Table 1 grid under the ``serial`` and ``process``
backends (cold caches, so the numbers reflect the true pipeline cost, not
memo hits), verifies the two backends produce byte-identical records, then
times a sharded run — the grid split into ``SHARD_COUNT`` independent
:class:`repro.api.Shard`s, each evaluated by its own fresh
:class:`repro.api.Session` as if on a separate machine, plus the
manifest-validated merge — then a cold-vs-warm pass over the persistent
verdict store (the warm run must be byte-identical and execute zero
sandboxes), a cold-vs-resumed pass through the store-backed shard driver
(the warm driver must skip every shard), the batched-vs-serial sandbox
comparison from :mod:`bench_sandbox`, and finally every experiment id once
through one session's result cache.  The measurements are written to ``BENCH_perf.json``
at the repo root to extend the perf trajectory.

Runs standalone (``python benchmarks/bench_parallel_scaling.py``) or under
pytest.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _shared import DEFAULT_SEED
from bench_sandbox import collect_sandbox_record

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import ExperimentSpec, Session, merge_shard_parts
from repro.corpus.store import clear_default_corpus_cache, default_corpus
from repro.dispatch import ResultStore, ShardDriver

#: Backends measured for the scaling record.
SCALING_BACKENDS = ("serial", "process")

#: Number of single-machine shards timed for the sharded-vs-unsharded record.
SHARD_COUNT = 4

#: Timing repeats per backend (best-of, to damp scheduler noise).
REPEATS = 3

#: Where the perf record lands (the repo root's BENCH_* trajectory).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def _cold_caches() -> None:
    clear_verdict_memo()
    clear_default_corpus_cache()


def _time_full_grid(backend: str, cores: int) -> tuple[float, list[dict]]:
    """Best-of-``REPEATS`` wall-clock for the full grid under one backend.

    The corpus is pre-built before timing (on fork platforms workers inherit
    it copy-on-write), and every repeat starts from a fresh session and a
    cleared verdict memo, so both backends pay identical cold-analysis cost:
    the serial memo is cleared in-process, and a new worker pool (with empty
    worker-side memos) is spawned inside the timed region.
    """
    _cold_caches()
    default_corpus()
    best = float("inf")
    for _ in range(REPEATS):
        clear_verdict_memo()
        with Session(
            seed=DEFAULT_SEED,
            backend=backend,
            max_workers=min(cores, 8) if backend != "serial" else None,
        ) as session:
            start = time.perf_counter()
            results = session.full_results()
            best = min(best, time.perf_counter() - start)
    return best, results.to_records()


def _time_sharded_grid(n: int) -> tuple[float, float, list[dict]]:
    """Simulated ``n``-machine run of the grid.

    Each shard is evaluated by its own fresh serial Session with a cleared
    verdict memo (every machine pays its own analysis cost); the recorded
    wall-clock is the critical path — the slowest shard — plus the
    manifest-validated merge.  Returns (critical path, merge time, records).
    """
    spec = ExperimentSpec(seeds=(DEFAULT_SEED,))
    _cold_caches()
    default_corpus()
    parts = []
    shard_times = []
    for shard in spec.partition(n):
        clear_verdict_memo()
        with Session(seed=DEFAULT_SEED) as session:
            start = time.perf_counter()
            results = session.run(shard)
            shard_times.append(time.perf_counter() - start)
        parts.append((shard.entry(), results))
    start = time.perf_counter()
    merged = merge_shard_parts(parts)[DEFAULT_SEED]
    merge_time = time.perf_counter() - start
    return max(shard_times), merge_time, merged.to_records()


def _time_store_runs() -> tuple[float, float, int]:
    """Cold-vs-warm full grid through a fresh on-disk verdict store.

    The cold run populates the store; the warm run starts from a cleared
    in-memory memo (as a new process would) and must reproduce the records
    byte-identically with zero sandbox executions.  Returns
    (cold seconds, warm seconds, warm store hits).
    """
    _cold_caches()
    default_corpus()
    with tempfile.TemporaryDirectory(prefix="repro-verdicts-") as tmp:
        store_dir = Path(tmp) / "verdicts"
        with Session(seed=DEFAULT_SEED, verdict_store=store_dir) as session:
            start = time.perf_counter()
            cold_records = session.full_results().to_records()
            cold = time.perf_counter() - start
            assert session.sandbox_executions > 0, "cold run executed nothing"
        clear_verdict_memo()
        with Session(seed=DEFAULT_SEED, verdict_store=store_dir) as session:
            start = time.perf_counter()
            warm_records = session.full_results().to_records()
            warm = time.perf_counter() - start
            hits = session.store_hits
            assert session.sandbox_executions == 0, "warm store run hit the sandbox"
        assert warm_records == cold_records, "warm store run diverged from cold records"
    return cold, warm, hits


def _time_dispatch_runs(n: int) -> tuple[float, float, int]:
    """Cold store-backed dispatch vs fully-warm resume of the full grid.

    The cold driver evaluates all ``n`` shards inline and persists each
    payload; the warm driver (fresh store instance, cleared memos — a new
    process) must skip every shard and still merge byte-identically.
    Returns (cold seconds, warm seconds, warm skipped-shard count).
    """
    spec = ExperimentSpec(seeds=(DEFAULT_SEED,))
    _cold_caches()
    default_corpus()
    with Session(seed=DEFAULT_SEED) as session:
        expected = session.full_results().to_records()
    with tempfile.TemporaryDirectory(prefix="repro-results-") as tmp:
        store_dir = Path(tmp) / "results"
        clear_verdict_memo()
        start = time.perf_counter()
        cold_report = ShardDriver(spec, shards=n, result_store=store_dir).run()
        cold = time.perf_counter() - start
        assert cold_report.complete and len(cold_report.executed) == n, cold_report.summary()
        assert cold_report.result().to_records() == expected, (
            "dispatched merge diverged from the unsharded records"
        )
        clear_verdict_memo()
        start = time.perf_counter()
        warm_report = ShardDriver(spec, shards=n, result_store=ResultStore(store_dir)).run()
        warm = time.perf_counter() - start
        assert warm_report.complete and not warm_report.executed, warm_report.summary()
        assert warm_report.sandbox_executions == 0, "warm dispatch hit the sandbox"
        assert warm_report.result().to_records() == expected, (
            "resumed merge diverged from the unsharded records"
        )
    return cold, warm, len(warm_report.skipped)


def collect_perf_record() -> dict:
    """Measure backend scaling, sharded-vs-unsharded wall-clock, cold-vs-warm
    verdict-store runs, batched-vs-serial sandbox execution and
    per-experiment timings, asserting all evaluation paths agree."""
    cores = os.cpu_count() or 1
    record: dict = {
        "bench": "parallel_scaling",
        "seed": DEFAULT_SEED,
        "cores": cores,
        "experiments": {},
    }
    grid_records: dict[str, list[dict]] = {}
    for backend in SCALING_BACKENDS:
        elapsed, records = _time_full_grid(backend, cores)
        record["experiments"][f"full_grid[{backend}]"] = round(elapsed, 4)
        grid_records[backend] = records
    assert grid_records["process"] == grid_records["serial"], (
        "process backend diverged from serial records"
    )
    serial_s = record["experiments"]["full_grid[serial]"]
    process_s = record["experiments"]["full_grid[process]"]
    record["process_speedup"] = round(serial_s / process_s, 3) if process_s else None

    # Sharded critical path: what an n-machine shard/merge deployment costs.
    critical, merge_time, sharded_records = _time_sharded_grid(SHARD_COUNT)
    assert sharded_records == grid_records["serial"], (
        "sharded merge diverged from the unsharded serial records"
    )
    record["experiments"][f"full_grid[sharded x{SHARD_COUNT}]"] = round(critical + merge_time, 4)
    record["experiments"]["shard_merge"] = round(merge_time, 4)
    record["shard_speedup"] = (
        round(serial_s / (critical + merge_time), 3) if critical + merge_time else None
    )

    # Persistent verdict store: cold populate vs warm re-run (zero sandbox
    # executions, byte-identical records — asserted inside).
    cold, warm, hits = _time_store_runs()
    record["experiments"]["full_grid[store-cold]"] = round(cold, 4)
    record["experiments"]["full_grid[store-warm]"] = round(warm, 4)
    record["warm_store_speedup"] = round(cold / warm, 3) if warm else None
    record["warm_store_hits"] = hits

    # Resumable dispatch: store-backed cold drive vs fully-warm resume
    # (every shard skipped, byte-identical merge — asserted inside).
    dispatch_cold, dispatch_warm, skipped = _time_dispatch_runs(SHARD_COUNT)
    record["experiments"][f"full_grid[dispatch x{SHARD_COUNT}]"] = round(dispatch_cold, 4)
    record["experiments"]["full_grid[dispatch-resume]"] = round(dispatch_warm, 4)
    record["dispatch_resume_speedup"] = (
        round(dispatch_cold / dispatch_warm, 3) if dispatch_warm else None
    )
    record["dispatch_resume_skipped"] = skipped

    # Batched vs serial sandbox execution over the real Python cell batches.
    sandbox = collect_sandbox_record()
    record["experiments"].update(sandbox["experiments"])
    record["batched_speedup"] = sandbox["batched_speedup"]
    record["batched_speedup_cpu"] = sandbox["batched_speedup_cpu"]

    # Per-experiment wall-clock through one session's result cache: the first
    # run of each (seed, fingerprint) pays, everything downstream reuses it.
    _cold_caches()
    with Session(seed=DEFAULT_SEED) as session:
        timed_calls = [
            *((f"table{n}", lambda n=n: session.table(n)) for n in (2, 3, 4, 5)),
            *((f"figure{n}", lambda n=n: session.figure(n)) for n in (2, 3, 4, 5, 6)),
            ("ablation-keywords", lambda: session.ablation("keywords")),
            ("ablation-maturity", lambda: session.ablation("maturity")),
            ("ablation-suggestions", lambda: session.ablation("suggestions")),
        ]
        for experiment_id, call in timed_calls:
            start = time.perf_counter()
            call()
            record["experiments"][experiment_id] = round(time.perf_counter() - start, 4)
    return record


def write_perf_record(record: dict, path: Path = BENCH_PATH) -> Path:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def test_parallel_scaling(capsys=None):
    record = collect_perf_record()
    write_perf_record(record)
    # The ≥2x criterion only applies when the hardware can parallelise and
    # workers fork (spawn platforms re-import everything per worker, which
    # swamps this sub-second workload regardless of the pipeline's scaling).
    if record["cores"] >= 4 and multiprocessing.get_start_method() == "fork":
        assert record["process_speedup"] >= 2.0, record
    print()
    print(f"wrote {BENCH_PATH}")
    for key, seconds in sorted(record["experiments"].items()):
        print(f"  {key:24s} {seconds:8.4f}s")
    print(
        f"  cores={record['cores']} process speedup x{record['process_speedup']} "
        f"sharded-x{SHARD_COUNT} speedup x{record['shard_speedup']}"
    )
    print(
        f"  warm-store speedup x{record['warm_store_speedup']} "
        f"({record['warm_store_hits']} hits, 0 sandbox executions) "
        f"batched sandbox x{record['batched_speedup']} "
        f"(cpu-bound x{record['batched_speedup_cpu']})"
    )
    print(
        f"  dispatch-resume speedup x{record['dispatch_resume_speedup']} "
        f"({record['dispatch_resume_skipped']} shards skipped, 0 re-executions)"
    )


if __name__ == "__main__":
    test_parallel_scaling()
