"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (a table or a
figure) end-to-end — simulated suggestion generation, static/dynamic
analysis, rubric scoring, aggregation — and checks the qualitative "shape"
findings listed in DESIGN.md §1 against the published values.  Timings are
reported by pytest-benchmark; correctness of the reproduction is asserted.
"""

from __future__ import annotations

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import Session
from repro.codex.config import DEFAULT_SEED
from repro.core.compare import ShapeComparison, compare_to_paper
from repro.core.runner import ResultSet

__all__ = ["evaluate_language", "evaluate_full_grid", "assert_shape_agreement", "DEFAULT_SEED"]


def evaluate_language(language: str, *, seed: int = DEFAULT_SEED, backend: str = "serial") -> ResultSet:
    """Run the full evaluation for one language's table.

    Each call drives a fresh :class:`repro.api.Session` (empty result cache)
    and clears the process-wide verdict memo first, so every benchmark
    iteration pays the full analysis/execution cost instead of timing cache
    hits.  (The memoized corpus is left warm: template construction is
    infrastructure, not the measured pipeline.)
    """
    clear_verdict_memo()
    with Session(seed=seed, backend=backend) as session:
        return session.language_results(language)


def evaluate_full_grid(*, seed: int = DEFAULT_SEED, backend: str = "serial") -> ResultSet:
    """Run the evaluation for every cell of the Table 1 grid (cold caches,
    see :func:`evaluate_language`)."""
    clear_verdict_memo()
    with Session(seed=seed, backend=backend) as session:
        return session.full_results()


def assert_shape_agreement(results: ResultSet, language: str) -> ShapeComparison:
    """Assert the reproduction preserves the paper's qualitative shape."""
    comparison = compare_to_paper(results, language)
    assert comparison.cell_rank_correlation > 0.2, comparison
    assert comparison.within_one_level >= 0.8, comparison
    assert comparison.complexity_trend_holds, comparison
    assert comparison.keyword_effect_agrees, comparison
    assert comparison.top_model_agrees, comparison
    return comparison
