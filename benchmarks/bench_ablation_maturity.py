"""A-MAT: ablation of the maturity-prior weight (design-choice robustness)."""

from __future__ import annotations

from repro.harness.experiments import run_maturity_ablation


def test_ablation_maturity(benchmark):
    report = benchmark(lambda: run_maturity_ablation(scales=(0.5, 1.0, 1.25)))
    # The qualitative C++ ranking (OpenMP among the top models) must be
    # stable across a wide range of prior weights — i.e. the reproduction's
    # conclusions do not hinge on one hand-picked constant.
    assert all(report.data["openmp_in_top3"].values())
    print()
    print(report.text)
