"""CI gate: the CUDA-C static hazard analyzer must be conservative.

The analyzer's contract is one-sided: a ``SAFE`` verdict is a *proof*, so a
kernel whose hazard class is reported ``SAFE`` must never trigger the
corresponding runtime hazard fallback.  (``HAZARD``/``UNKNOWN`` claims carry
no such obligation — the runtime tracking simply stays on.)

This harness enforces that empirically over the full corpus — every stock
template and every mutated variant with an embedded CUDA kernel:

* each suggestion is executed solo with static elision **off**, so the
  lockstep engine's runtime hazard tracking acts as the ground-truth oracle;
* for every hazard class the analyzer reported ``SAFE`` across the
  suggestion's kernels, the run must record zero scalar fallbacks with that
  class's runtime reasons;
* non-vacuity: the stock templates must actually be proven race-``SAFE``
  (otherwise the gate would pass by never claiming anything), and the
  ``race_injection`` mutants must be flagged ``HAZARD``;
* finally, a stock pass with elision **on** must still satisfy every oracle
  and actually elide — the optimization the soundness proof pays for.

Runs standalone (``python benchmarks/bench_static_soundness.py``) or under
pytest (the ``static-soundness`` CI job).
"""

from __future__ import annotations

from repro.analysis.hazards import static_findings_for
from repro.corpus.store import default_corpus
from repro.sandbox import evaluate_python_suggestions
from repro.sandbox.cuda_c import lockstep_stats, reset_lockstep_stats, static_elision

#: Runtime fallback reasons that would falsify a SAFE verdict of each class.
#: barrier-divergence has no runtime counterpart (the interpreter's barrier
#: is a vectorized no-op), so its SAFE claims are vacuously unfalsifiable
#: here and checked only by the unit suite.
KIND_RUNTIME_REASONS: dict[str, tuple[str, ...]] = {
    "write-write-race": ("cross-lane-write", "duplicate-scatter", "atomic-result-order"),
    "duplicate-scatter": ("duplicate-scatter",),
    "cross-lane-read": ("cross-lane-read", "write-after-read"),
    "out-of-bounds": ("out-of-bounds", "bad-index"),
    "uninitialized-read": (
        "partially-defined-read",
        "unknown-identifier",
        "undefined-local-array",
    ),
    "barrier-divergence": (),
}


def _cuda_snippets(corpus):
    return [
        s
        for s in corpus
        if s.language == "python"
        and ("SourceModule" in s.code or "RawKernel" in s.code)
    ]


def run_soundness() -> dict:
    """Execute the corpus against the runtime oracle; returns a summary."""
    corpus = default_corpus(include_mutations=True)
    snippets = _cuda_snippets(corpus)
    assert snippets, "no CUDA-embedded suggestions found in the corpus"

    checked = 0
    safe_claims = 0
    race_hazard_mutants = 0
    violations: list[str] = []
    for snippet in snippets:
        findings = static_findings_for(snippet.code, snippet.language, snippet.kernel)
        label = f"{snippet.kernel}/{snippet.label_model}[{snippet.mutation or 'template'}]"
        if snippet.mutation == "race_injection" and any(
            f["kind"] == "write-write-race" and f["verdict"] == "HAZARD" for f in findings
        ):
            race_hazard_mutants += 1
        reset_lockstep_stats()
        with static_elision(False):
            evaluate_python_suggestions([(snippet.code, snippet.kernel)])
        stats = lockstep_stats()
        checked += 1
        for kind, reasons in KIND_RUNTIME_REASONS.items():
            kind_findings = [f for f in findings if f["kind"] == kind]
            if not kind_findings or any(f["verdict"] != "SAFE" for f in kind_findings):
                continue
            safe_claims += 1
            triggered = {
                reason: stats.get(f"fallback[{reason}]", 0)
                for reason in reasons
                if stats.get(f"fallback[{reason}]", 0)
            }
            if triggered:
                violations.append(f"{label}: {kind} claimed SAFE but runtime hit {triggered}")
    assert not violations, "static analyzer soundness violated:\n" + "\n".join(violations)

    # Non-vacuity: the gate must actually be exercising proofs.
    templates = [s for s in snippets if s.origin.value == "template"]
    for snippet in templates:
        findings = static_findings_for(snippet.code, snippet.language, snippet.kernel)
        races = [f for f in findings if f["kind"] == "write-write-race"]
        assert races and all(f["verdict"] == "SAFE" for f in races), (
            f"stock template {snippet.kernel}/{snippet.label_model} no longer "
            f"proven race-SAFE: {races}"
        )
    assert race_hazard_mutants > 0, "no race_injection mutant was flagged HAZARD"
    assert safe_claims > 0, "no SAFE claim was ever checked against the runtime"

    # The payoff path: elision on, stock corpus, oracles intact, launches elided.
    stock = [(s.code, s.kernel) for s in templates]
    reset_lockstep_stats()
    with static_elision(True):
        results = evaluate_python_suggestions(stock)
    elided_stats = lockstep_stats()
    failed = [kernel for (_, kernel), r in zip(stock, results) if not r.passed]
    assert not failed, f"stock suggestions failed their oracles under elision: {failed}"
    assert elided_stats.get("launches_static_elided", 0) > 0, (
        "static elision never engaged on the stock corpus"
    )

    return {
        "suggestions": checked,
        "safe_claims": safe_claims,
        "race_hazard_mutants": race_hazard_mutants,
        "elided_launches": elided_stats.get("launches_static_elided", 0),
    }


def test_static_analyzer_is_conservative():
    run_soundness()


def main() -> None:
    summary = run_soundness()
    print(
        "static soundness ok: "
        f"{summary['suggestions']} suggestions checked, "
        f"{summary['safe_claims']} SAFE claims upheld by the runtime oracle, "
        f"{summary['race_hazard_mutants']} race mutants flagged, "
        f"{summary['elided_launches']} launches elided on the stock corpus"
    )


if __name__ == "__main__":
    main()
