"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The gate must accept the committed baseline vs itself, tolerate
cross-machine jitter, and demonstrably fail on doctored regression records
— a gate that can't fire is worse than no gate.
"""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from check_regression import (  # noqa: E402  (path set up above)
    DEFAULT_SPEEDUP_TOLERANCE,
    WALLCLOCK_SLACK_SECONDS,
    check_regressions,
    main,
)


@pytest.fixture()
def baseline() -> dict:
    return {
        "lockstep_speedup": 10.0,
        "warm_store_speedup": 4.0,
        "dispatch_resume_speedup": 40.0,
        "experiments": {
            "full_grid[serial]": 0.4,
            "full_grid[store-warm]": 0.01,
            "table4": 0.2,  # not gated: not a full_grid key
        },
    }


class TestCheckRegressions:
    def test_identical_records_pass(self, baseline):
        assert check_regressions(baseline, copy.deepcopy(baseline)) == []

    def test_jitter_within_tolerance_passes(self, baseline):
        current = copy.deepcopy(baseline)
        current["lockstep_speedup"] = baseline["lockstep_speedup"] * (
            1.0 - DEFAULT_SPEEDUP_TOLERANCE
        ) + 0.01
        current["experiments"]["full_grid[serial]"] = 0.9  # 2.25x, under 2.5x
        assert check_regressions(baseline, current) == []

    def test_speedup_collapse_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["lockstep_speedup"] = 1.2
        failures = check_regressions(baseline, current)
        assert len(failures) == 1 and "lockstep_speedup" in failures[0]

    def test_wallclock_blowup_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["experiments"]["full_grid[serial]"] = 2.0
        failures = check_regressions(baseline, current)
        assert len(failures) == 1 and "full_grid[serial]" in failures[0]

    def test_tiny_wallclocks_get_absolute_slack(self, baseline):
        # 10ms -> 80ms is 8x the ratio ceiling but pure IO jitter; the
        # absolute slack keeps sub-100ms paths from failing builds.
        current = copy.deepcopy(baseline)
        current["experiments"]["full_grid[store-warm]"] = 0.08
        assert check_regressions(baseline, current) == []
        current["experiments"]["full_grid[store-warm]"] = (
            0.01 * 2.5 + WALLCLOCK_SLACK_SECONDS + 0.01
        )
        assert check_regressions(baseline, current) != []

    def test_missing_metric_fails(self, baseline):
        for key in ("warm_store_speedup",):
            current = copy.deepcopy(baseline)
            del current[key]
            assert any(key in failure for failure in check_regressions(baseline, current))
        current = copy.deepcopy(baseline)
        del current["experiments"]["full_grid[serial]"]
        assert any("full_grid[serial]" in f for f in check_regressions(baseline, current))

    def test_non_gated_keys_are_ignored(self, baseline):
        current = copy.deepcopy(baseline)
        current["experiments"]["table4"] = 99.0  # slower, but not a gated key
        assert check_regressions(baseline, current) == []

    def test_metric_absent_from_baseline_is_not_required(self, baseline):
        del baseline["dispatch_resume_speedup"]
        current = copy.deepcopy(baseline)
        assert check_regressions(baseline, current) == []


class TestMain:
    def _write(self, path: Path, record: dict) -> Path:
        path.write_text(json.dumps(record))
        return path

    def test_exit_codes(self, tmp_path, baseline, capsys):
        good = self._write(tmp_path / "good.json", baseline)
        assert main(["--baseline", str(good), "--current", str(good)]) == 0
        assert "within tolerance" in capsys.readouterr().out
        doctored = copy.deepcopy(baseline)
        doctored["warm_store_speedup"] = 0.5
        bad = self._write(tmp_path / "bad.json", doctored)
        assert main(["--baseline", str(good), "--current", str(bad)]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out
        assert main(["--baseline", str(good), "--current", str(tmp_path / "absent.json")]) == 2

    def test_committed_baseline_passes_against_committed_record(self):
        # The repo must never ship a BENCH_perf.json that its own committed
        # baseline rejects.
        assert main([]) == 0
