"""Tests for the SimCodex prompt model, competence config, sampler and engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.detection import detect_models
from repro.codex.config import CodexConfig, KnowledgeState
from repro.codex.engine import SimulatedCodex
from repro.codex.prompt import Prompt
from repro.codex.sampler import SuggestionSampler
from repro.models.grid import ExperimentCell, experiment_grid
from repro.models.programming_models import PROGRAMMING_MODELS
from repro.kernels.registry import KERNEL_NAMES


class TestPrompt:
    def test_query_structure(self):
        prompt = Prompt(kernel="gemm", model_uid="cpp.openmp", postfix="function")
        assert prompt.query == "GEMM OpenMP function"
        assert prompt.text == "// Prompt: GEMM OpenMP function"
        assert prompt.filename == "gemm.cpp"
        assert prompt.uses_keyword

    def test_fortran_prompt_comment_style(self):
        prompt = Prompt(kernel="axpy", model_uid="fortran.openacc", postfix="subroutine")
        assert prompt.text.startswith("! Prompt:")
        assert prompt.filename.endswith(".f90")

    def test_bare_prompt_has_no_keyword(self):
        prompt = Prompt(kernel="cg", model_uid="julia.cuda")
        assert prompt.query == "CG CUDA"
        assert not prompt.uses_keyword

    def test_from_cell_roundtrip(self):
        cell = ExperimentCell(language="python", model="python.numpy", kernel="spmv", use_postfix=True)
        prompt = Prompt.from_cell(cell)
        assert prompt.postfix == "def"
        assert prompt.cell_id == cell.cell_id

    def test_offload_prompt_phrase(self):
        prompt = Prompt(kernel="axpy", model_uid="cpp.openmp_offload")
        assert "offload" in prompt.query.lower()


class TestCodexConfig:
    config = CodexConfig()

    def test_competence_is_bounded(self):
        for cell in experiment_grid():
            value = self.config.competence(Prompt.from_cell(cell))
            assert 0.0 <= value <= 1.0

    def test_complexity_monotonically_degrades_competence(self):
        scores = [
            self.config.competence(Prompt(kernel=k, model_uid="cpp.openmp", postfix="function"))
            for k in KERNEL_NAMES
        ]
        assert scores[0] == max(scores)
        assert scores[-1] == min(scores)
        assert scores == sorted(scores, reverse=True)

    def test_keyword_helps_fortran_and_python(self):
        for model in ("fortran.openmp", "python.numpy"):
            keyword = "subroutine" if model.startswith("fortran") else "def"
            bare = self.config.competence(Prompt(kernel="gemv", model_uid=model))
            keyed = self.config.competence(Prompt(kernel="gemv", model_uid=model, postfix=keyword))
            assert keyed > bare

    def test_function_keyword_hurts_cuda_but_not_openmp(self):
        cuda_bare = self.config.competence(Prompt(kernel="gemm", model_uid="cpp.cuda"))
        cuda_keyed = self.config.competence(Prompt(kernel="gemm", model_uid="cpp.cuda", postfix="function"))
        assert cuda_keyed < cuda_bare
        omp_bare = self.config.competence(Prompt(kernel="gemm", model_uid="cpp.openmp"))
        omp_keyed = self.config.competence(Prompt(kernel="gemm", model_uid="cpp.openmp", postfix="function"))
        assert omp_keyed >= omp_bare

    def test_axpy_waives_the_bare_prompt_penalty_for_fortran(self):
        axpy = self.config.competence(Prompt(kernel="axpy", model_uid="fortran.openmp"))
        gemv = self.config.competence(Prompt(kernel="gemv", model_uid="fortran.openmp"))
        assert axpy > 2 * gemv

    def test_mature_models_outrank_young_ones(self):
        for better, worse in (
            ("cpp.openmp", "cpp.hip"),
            ("cpp.cuda", "cpp.thrust"),
            ("python.numpy", "python.numba"),
            ("julia.cuda", "julia.amdgpu"),
        ):
            b = self.config.competence(Prompt(kernel="axpy", model_uid=better))
            w = self.config.competence(Prompt(kernel="axpy", model_uid=worse))
            assert b > w, (better, worse)

    def test_state_probabilities_sum_to_one(self):
        for c in np.linspace(0.0, 1.0, 21):
            probs = self.config.state_probabilities(float(c))
            assert sum(probs.values()) == pytest.approx(1.0)
            assert all(p >= 0 for p in probs.values())

    def test_state_distribution_extremes(self):
        high = self.config.state_probabilities(0.95)
        low = self.config.state_probabilities(0.05)
        assert max(high, key=high.get) is KnowledgeState.COMPETENT
        assert max(low, key=low.get) is KnowledgeState.IGNORANT

    def test_expected_score_monotone_in_competence_extremes(self):
        hard = self.config.expected_score(Prompt(kernel="cg", model_uid="cpp.hip"))
        easy = self.config.expected_score(Prompt(kernel="axpy", model_uid="cpp.openmp", postfix="function"))
        assert easy > hard
        assert 0.0 <= hard <= easy <= 0.75

    @given(c=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_property_state_probabilities_valid(self, c):
        probs = CodexConfig().state_probabilities(c)
        assert abs(sum(probs.values()) - 1.0) < 1e-9


class TestSampler:
    def test_competent_sets_are_all_correct_templates(self, corpus, rng):
        sampler = SuggestionSampler(corpus=corpus)
        prompt = Prompt(kernel="axpy", model_uid="cpp.openmp", postfix="function")
        suggestions = sampler.sample_for_state(prompt, KnowledgeState.COMPETENT, rng)
        assert 2 <= len(suggestions) <= 10
        assert all(s.label_correct for s in suggestions)
        assert all(s.label_model == "cpp.openmp" for s in suggestions)

    def test_fuzzy_sets_have_correct_and_incorrect_same_model(self, corpus, rng):
        sampler = SuggestionSampler(corpus=corpus)
        prompt = Prompt(kernel="gemv", model_uid="fortran.openmp", postfix="subroutine")
        suggestions = sampler.sample_for_state(prompt, KnowledgeState.FUZZY, rng)
        assert any(s.label_correct for s in suggestions)
        assert any(not s.label_correct for s in suggestions)
        assert all(s.label_model in ("fortran.openmp", "serial", "none") for s in suggestions)

    def test_confused_sets_contain_other_models(self, corpus, rng):
        sampler = SuggestionSampler(corpus=corpus)
        prompt = Prompt(kernel="gemm", model_uid="cpp.openmp", postfix="function")
        suggestions = sampler.sample_for_state(prompt, KnowledgeState.CONFUSED, rng)
        other_models = {
            s.label_model
            for s in suggestions
            if s.label_model not in ("cpp.openmp", "serial", "none")
        }
        assert other_models

    def test_ignorant_sets_have_no_correct_requested_model_code(self, corpus, rng):
        sampler = SuggestionSampler(corpus=corpus)
        prompt = Prompt(kernel="cg", model_uid="cpp.hip")
        for _ in range(5):
            suggestions = sampler.sample_for_state(prompt, KnowledgeState.IGNORANT, rng)
            assert not any(s.label_correct and s.label_model == "cpp.hip" for s in suggestions)

    def test_sample_respects_max_suggestions(self, corpus, rng):
        sampler = SuggestionSampler(config=CodexConfig(max_suggestions=4), corpus=corpus)
        for cell in experiment_grid()[:20]:
            suggestions = sampler.sample(Prompt.from_cell(cell), rng)
            assert len(suggestions) <= 4

    def test_fuzzy_respects_tiny_budget(self, corpus, rng):
        # The fuzzy state draws its correct-suggestion count independently of
        # the budget; a budget of 1 must still cap the list.
        sampler = SuggestionSampler(config=CodexConfig(max_suggestions=1), corpus=corpus)
        prompt = Prompt(kernel="gemv", model_uid="fortran.openmp", postfix="subroutine")
        for _ in range(20):
            suggestions = sampler.sample_for_state(prompt, KnowledgeState.FUZZY, rng)
            assert len(suggestions) <= 1


class TestEngine:
    def test_completions_are_deterministic_per_seed(self, corpus):
        prompt = Prompt(kernel="spmv", model_uid="python.pycuda", postfix="def")
        a = SimulatedCodex(seed=7, corpus=corpus).complete(prompt)
        b = SimulatedCodex(seed=7, corpus=corpus).complete(prompt)
        assert a.suggestions == b.suggestions

    def test_different_seeds_change_output_somewhere(self, corpus):
        prompts = [Prompt.from_cell(cell) for cell in experiment_grid()[:30]]
        engine_a = SimulatedCodex(seed=1, corpus=corpus)
        engine_b = SimulatedCodex(seed=2, corpus=corpus)
        assert any(
            engine_a.complete(p).suggestions != engine_b.complete(p).suggestions for p in prompts
        )

    def test_completion_metadata(self, engine):
        prompt = Prompt(kernel="axpy", model_uid="julia.threads")
        completion = engine.complete(prompt)
        assert 0 <= len(completion) <= 10
        assert 0.0 <= completion.competence <= 1.0
        assert completion.prompt is prompt

    def test_suggestions_are_in_the_prompt_language(self, engine):
        prompt = Prompt(kernel="gemv", model_uid="fortran.openmp", postfix="subroutine")
        completion = engine.complete(prompt)
        for code in completion:
            if not code.strip():
                continue
            detected = detect_models(code, "fortran")
            # Either Fortran directives or serial/non-code text; never, say, CUDA C.
            assert all(uid.startswith("fortran.") for uid in detected)

    def test_complete_snippets_matches_complete(self, corpus):
        engine = SimulatedCodex(seed=3, corpus=corpus)
        prompt = Prompt(kernel="gemm", model_uid="cpp.kokkos", postfix="function")
        texts = engine.complete(prompt).suggestions
        snippets = engine.complete_snippets(prompt)
        assert tuple(s.code for s in snippets) == texts

    def test_every_grid_cell_yields_a_completion(self, engine):
        for cell in experiment_grid():
            completion = engine.complete(Prompt.from_cell(cell))
            assert len(completion) <= 10

    def test_all_models_have_registered_maturity(self):
        # guards the sampler's other-model weighting from KeyErrors
        from repro.popularity.maturity import model_maturity

        for uid in PROGRAMMING_MODELS:
            assert model_maturity(uid) > 0
