"""Chaos suite for the evaluation service.

Reuses the dispatch layer's deterministic fault injector
(:mod:`repro.dispatch.faults`) against the long-lived server: clients
vanishing mid-stream, worker crashes degrading (never wedging) an
experiment, graceful shutdown persisting in-flight work, and the headline
durability claim — kill the server, restart it on the same result store,
re-submit the same spec, and **zero shards re-execute**.
"""

from __future__ import annotations

import time

import pytest

from repro.api import ExperimentSpec, Session
from repro.codex.config import DEFAULT_SEED
from repro.dispatch import ResultStore, faults
from repro.service.client import connect
from repro.service.server import ServerThread

SPEC = dict(seed=DEFAULT_SEED, languages=["julia"])
N_CELLS = 24


@pytest.fixture(autouse=True)
def disarm_faults(monkeypatch):
    """Every test starts and ends with no armed fault plan."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))


@pytest.fixture(scope="module")
def expected_records(spec):
    with Session(seed=DEFAULT_SEED) as session:
        return session.run(spec).to_records()


def surviving_subset(spec, expected_records, shards, dead_starts):
    """Expected records of every shard whose start was not quarantined."""
    subset = []
    for shard in spec.partition(shards):
        if shard.start not in dead_starts:
            subset.extend(expected_records[shard.start : shard.stop])
    return subset


class TestCrashContainment:
    def test_transient_crash_retries_to_identity(self, expected_records):
        """Two injected crashes are absorbed by the retry budget; the final
        records are still byte-identical to the clean run."""
        faults.install([{"point": "worker.evaluate", "action": "crash", "times": 2}])
        with ServerThread(max_attempts=3) as handle:
            client = connect(port=handle.port)
            try:
                experiment = client.submit(shards=4, **SPEC)
                assert client.wait(experiment)["state"] == "done"
                assert client.result(experiment)["records"] == expected_records
            finally:
                client.close()

    def test_poison_shard_degrades_the_experiment(self, spec, expected_records):
        """A shard that crashes on every attempt is quarantined: the
        experiment finishes DEGRADED with the surviving cells, the
        quarantine is named in status/result/events, and the server keeps
        serving."""
        faults.install(
            [{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}]
        )
        with ServerThread(max_attempts=2) as handle:
            client = connect(port=handle.port)
            try:
                experiment = client.submit(shards=4, **SPEC)
                final = client.wait(experiment)
                assert final["state"] == "degraded"

                status = client.status(experiment)
                assert status["state"] == "degraded"
                assert status["executed"] == 3
                [quarantined] = status["quarantined"]
                assert quarantined["shard"] == f"s{DEFAULT_SEED}-00000-00006"
                assert quarantined["error"] == "InjectedCrash"
                assert quarantined["attempts"] == 2

                payload = client.result(experiment)
                assert payload["state"] == "degraded"
                assert payload["records"] == surviving_subset(
                    spec, expected_records, 4, {0}
                )

                shard_events = [p for m, p in client.events if m == "shard"]
                assert [event["source"] for event in shard_events] == [
                    "quarantined", "executed", "executed", "executed",
                ]
                assert shard_events[0]["failure"]["error"] == "InjectedCrash"

                # The quarantine stayed contained: the same server still
                # completes a clean experiment (the fault only matches the
                # first shard of a 4-way split).
                faults.reset()
                retry = client.submit(shards=4, **SPEC)
                assert client.wait(retry)["state"] == "done"
            finally:
                client.close()


class TestClientDisconnect:
    def test_disconnect_mid_stream_does_not_kill_the_experiment(self, spec, tmp_path):
        """The submitting client vanishes mid-stream: events are dropped,
        but evaluation continues and every shard is persisted."""
        store = ResultStore(tmp_path / "shards")
        with ServerThread(result_store=store) as handle:
            client = connect(port=handle.port)
            client.submit(shards=8, **SPEC)
            # Read until the first shard event, then vanish without goodbye.
            while not any(method == "shard" for method, _ in client.events):
                client._dispatch_event(client.read_message())
            client.close()

            # The orphaned experiment runs to completion: all 8 shards land
            # in the store.
            entries = [shard.entry() for shard in spec.partition(8)]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if all(store.get(entry) is not None for entry in entries):
                    break
                time.sleep(0.02)
            assert all(store.get(entry) is not None for entry in entries)

            # And the server is still healthy: a new client's identical
            # submit is served entirely from the store.
            fresh = connect(port=handle.port)
            try:
                experiment = fresh.submit(shards=8, **SPEC)
                assert fresh.wait(experiment)["state"] == "done"
                status = fresh.status(experiment)
                assert status["executed"] == 0
                assert status["skipped"] == 8
            finally:
                fresh.close()


class TestKillRestartResume:
    def test_restart_resumes_with_zero_reexecuted_shards(
        self, expected_records, tmp_path
    ):
        """The acceptance criterion: kill the server, restart it on the
        same result store, re-submit the same spec — zero shards
        re-execute and the records are byte-identical."""
        store_path = tmp_path / "shards"
        first = ServerThread(result_store=store_path).start()
        try:
            client = connect(port=first.port)
            try:
                experiment = client.submit(shards=6, **SPEC)
                assert client.wait(experiment)["state"] == "done"
                status = client.status(experiment)
                assert status["executed"] == 6 and status["skipped"] == 0
                records_before = client.result(experiment)["records"]
            finally:
                client.close()
        finally:
            first.stop()  # hard stop: the in-process kill -9

        second = ServerThread(result_store=store_path).start()
        try:
            client = connect(port=second.port)
            try:
                experiment = client.submit(shards=6, **SPEC)
                assert client.wait(experiment)["state"] == "done"
                status = client.status(experiment)
                assert status["executed"] == 0, "a restart must re-execute nothing"
                assert status["skipped"] == 6
                records_after = client.result(experiment)["records"]
            finally:
                client.close()
        finally:
            second.stop()

        assert records_before == records_after == expected_records

    def test_graceful_shutdown_persists_in_flight_shards(self, tmp_path):
        """`shutdown` mid-run: the running experiment stops at the next
        shard boundary with everything completed already persisted, the
        terminal event still reaches the client, and a restarted server
        resumes from exactly those shards."""
        store_path = tmp_path / "shards"
        # Slow every shard down so the shutdown deterministically lands
        # mid-run (each evaluation sleeps 50ms first).
        faults.install([{"point": "worker.evaluate", "action": "hang", "arg": 0.05}])
        first = ServerThread(result_store=store_path).start()
        client = connect(port=first.port)
        try:
            experiment = client.submit(shards=12, **SPEC)
            while not any(method == "shard" for method, _ in client.events):
                client._dispatch_event(client.read_message())
            assert client.shutdown()["stopping"] is True
            final = client.wait(experiment)
            assert final["state"] == "cancelled"
            done_shards = final["shards_done"]
            assert 0 < done_shards < 12, "shutdown landed mid-run"
        finally:
            client.close()
        assert first.join(timeout=60), "a graceful shutdown exits on its own"

        faults.reset()
        second = ServerThread(result_store=store_path).start()
        try:
            client = connect(port=second.port)
            try:
                resumed = client.submit(shards=12, **SPEC)
                assert client.wait(resumed)["state"] == "done"
                status = client.status(resumed)
                assert status["skipped"] == done_shards, (
                    "every shard completed before the shutdown must resume warm"
                )
                assert status["executed"] == 12 - done_shards
            finally:
                client.close()
        finally:
            second.stop()

    def test_submit_during_shutdown_is_refused(self):
        from repro.service import protocol
        from repro.service.protocol import ServiceError

        with ServerThread() as handle:
            client = connect(port=handle.port)
            try:
                client.shutdown()
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(**SPEC)
                assert excinfo.value.code == protocol.ERR_SHUTTING_DOWN
            except ConnectionError:
                # Equally acceptable: the drain already closed the socket.
                pass
            finally:
                client.close()
