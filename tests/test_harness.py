"""Tests for the harness: experiments, tables, figures, IO and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.harness import experiments
from repro.harness.cli import build_parser, main
from repro.harness.figures import (
    FIGURE_LANGUAGES,
    figure_data,
    overall_figure_data,
    paper_figure_data,
    paper_overall_figure_data,
    render_figure,
    render_overall_figure,
)
from repro.core.runner import ResultSet
from repro.harness.io import (
    load_records_csv,
    load_records_json,
    save_records_csv,
    save_records_json,
)
from repro.harness.tables import render_language_table, table_rows
from repro.kernels.registry import KERNEL_NAMES
from repro.models.languages import language_names


class TestTablesRendering:
    def test_table_rows_shape(self, full_results):
        rows = table_rows(full_results, "cpp", use_postfix=False)
        assert len(rows) == 8
        assert all(len(row) == 1 + len(KERNEL_NAMES) for row in rows)

    def test_cells_show_repro_and_paper_values(self, full_results):
        rows = table_rows(full_results, "fortran", use_postfix=True, include_paper=True)
        assert all("/" in cell for row in rows for cell in row[1:])

    def test_render_language_table_contains_both_halves(self, full_results):
        text = render_language_table(full_results, "python")
        assert "Prefix <kernel>" in text
        assert "Post fix 'def'" in text
        assert "numpy" in text

    def test_julia_table_has_single_half(self, full_results):
        text = render_language_table(full_results, "julia")
        assert "Post fix" not in text


class TestFiguresRendering:
    def test_figure_data_panels(self, full_results):
        data = figure_data(full_results, "cpp")
        assert tuple(data["kernels"]) == KERNEL_NAMES
        assert len(data["models"]) == 8

    def test_paper_figure_data_matches_table_means(self):
        data = paper_figure_data("julia")
        assert data["kernels"]["axpy"] == pytest.approx((0.75 + 0.75 + 0.0 + 0.25) / 4)

    def test_render_figure_includes_paper_panel(self, full_results):
        text = render_figure(full_results, "fortran")
        assert "(paper) per kernel" in text
        assert "Fortran: average score per kernel" in text

    def test_overall_figure(self, full_results):
        data = overall_figure_data(full_results)
        assert set(data["languages"]) == set(language_names())
        reference = paper_overall_figure_data()
        assert reference["kernels"]["axpy"] > reference["kernels"]["cg"]
        text = render_overall_figure(full_results)
        assert "Overall: average score per language" in text

    def test_figure_language_mapping(self):
        assert FIGURE_LANGUAGES == {2: "cpp", 3: "fortran", 4: "python", 5: "julia"}


class TestExperiments:
    def test_run_table_reports(self):
        report = experiments.run_table(5)
        assert report.experiment_id == "table5"
        assert report.comparison is not None
        assert "Julia" in report.text
        assert "rho=" in report.summary_line()

    def test_run_table_unknown_number(self):
        with pytest.raises(KeyError):
            experiments.run_table(7)

    def test_run_figure_reports(self):
        report = experiments.run_figure(3)
        assert report.experiment_id == "figure3"
        assert "kernels" in report.data
        assert report.comparison is not None

    def test_run_figure6(self):
        report = experiments.run_figure(6)
        assert report.experiment_id == "figure6"
        assert set(report.data["languages"]) == set(language_names())
        assert report.summary_line().endswith("done")

    def test_run_figure_unknown_number(self):
        with pytest.raises(KeyError):
            experiments.run_figure(9)

    def test_language_results_are_cached(self):
        first = experiments.run_language_results("julia")
        second = experiments.run_language_results("julia")
        assert first is second

    def test_keyword_ablation(self):
        report = experiments.run_keyword_ablation()
        effects = report.data["effects"]
        assert effects["fortran"]["delta"] > 0
        assert effects["python"]["delta"] > 0
        assert "Fortran" in report.text

    def test_suggestion_count_ablation_scores_bounded(self):
        report = experiments.run_suggestion_count_ablation(counts=(1, 10))
        means = report.data["means"]
        assert set(means) == {1, 10}
        assert all(0.0 <= v <= 1.0 for v in means.values())

    def test_maturity_ablation_keeps_openmp_on_top(self):
        report = experiments.run_maturity_ablation(scales=(0.75, 1.0))
        assert all(report.data["openmp_in_top3"].values())

    def test_full_grid_size_helper(self):
        assert experiments.full_grid_size() == 204


class TestIo:
    def test_csv_roundtrip(self, full_results, tmp_path):
        path = save_records_csv(full_results, tmp_path / "results.csv")
        content = path.read_text().splitlines()
        assert content[0].startswith("language,model,kernel")
        assert len(content) == len(full_results) + 1

    def test_json_roundtrip(self, full_results, tmp_path):
        path = save_records_json(full_results, tmp_path / "results.json")
        records = load_records_json(path)
        assert len(records) == len(full_results)
        assert {"language", "model", "kernel", "score"} <= set(records[0])
        assert json.loads(path.read_text())

    def test_json_roundtrip_rehydrates_exactly(self, full_results, tmp_path):
        """save → load → ResultSet.from_payload reproduces to_records()
        verbatim, postfix cells included, down to the serialized bytes."""
        path = save_records_json(full_results, tmp_path / "results.json")
        rebuilt = ResultSet.from_payload(load_records_json(path), seed=full_results.seed)
        assert rebuilt.to_records() == full_results.to_records()
        assert any(record["use_postfix"] and record["postfix"] for record in rebuilt.to_records())
        again = save_records_json(rebuilt, tmp_path / "again.json")
        assert again.read_bytes() == path.read_bytes()

    def test_csv_roundtrip_rehydrates_exactly(self, full_results, tmp_path):
        path = save_records_csv(full_results, tmp_path / "results.csv")
        rebuilt = ResultSet.from_payload(load_records_csv(path), seed=full_results.seed)
        assert rebuilt.to_records() == full_results.to_records()

    def test_rehydrated_set_keeps_indexed_lookups(self, full_results, tmp_path):
        path = save_records_json(full_results, tmp_path / "results.json")
        rebuilt = ResultSet.from_payload(load_records_json(path))
        some = full_results.results[10].cell
        assert rebuilt.score(some.model, some.kernel, use_postfix=some.use_postfix) == \
            full_results.results[10].score
        assert len(rebuilt.filter(language="julia")) == len(full_results.filter(language="julia"))

    def test_payload_roundtrip_via_to_payload(self, full_results):
        payload = full_results.to_payload()
        rebuilt = ResultSet.from_payload(json.loads(json.dumps(payload)))
        assert rebuilt.seed == full_results.seed
        assert rebuilt.to_records() == full_results.to_records()


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["table", "2"])
        assert args.command == "table" and args.number == 2
        args = parser.parse_args(["--seed", "5", "prompt", "axpy", "cpp.openmp", "--keyword"])
        assert args.seed == 5 and args.keyword

    def test_cli_table(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "Python" in out and "numpy" in out

    def test_cli_figure(self, capsys):
        assert main(["figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Julia" in out

    def test_cli_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "rank-correlation" in out
        assert "C++" in out

    def test_cli_ablation(self, capsys):
        assert main(["ablation", "keywords"]) == 0
        assert "Keyword post-fix effect" in capsys.readouterr().out

    def test_cli_prompt(self, capsys):
        assert main(["prompt", "axpy", "python.numpy", "--keyword"]) == 0
        out = capsys.readouterr().out
        assert "axpy.py" in out
        assert "suggestion 1" in out

    def test_cli_run_writes_outputs(self, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        json_path = tmp_path / "cells.json"
        assert main(["run", "--csv", str(csv_path), "--json", str(json_path)]) == 0
        assert csv_path.exists() and json_path.exists()
        out = capsys.readouterr().out
        assert "Overall: average score per kernel" in out
