"""Shared fixtures for the test suite.

Expensive objects (the default corpus, the analyzer with its verdict cache,
and a full evaluation grid run) are session-scoped so the several hundred
tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.api.session import reset_default_session
from repro.codex.config import CodexConfig, DEFAULT_SEED
from repro.codex.engine import SimulatedCodex
from repro.core.evaluator import PromptEvaluator
from repro.core.runner import EvaluationRunner, ResultSet
from repro.corpus.store import CorpusStore, default_corpus


@pytest.fixture(autouse=True)
def _fresh_default_session():
    """The legacy harness wrappers resolve through the process-default
    Session; each test gets a fresh one so cached ResultSets never leak
    between seeds/configs, and the old session's worker pools are closed."""
    reset_default_session()
    yield
    reset_default_session()


@pytest.fixture(scope="session")
def corpus() -> CorpusStore:
    """The default corpus (templates + mutated variants), shared process-wide."""
    return default_corpus()


@pytest.fixture(scope="session")
def analyzer() -> SuggestionAnalyzer:
    """A shared analyzer instance (its verdict cache is reused across tests)."""
    return SuggestionAnalyzer()


@pytest.fixture(scope="session")
def engine() -> SimulatedCodex:
    """A deterministic simulated Codex engine with the default seed."""
    return SimulatedCodex(seed=DEFAULT_SEED)


@pytest.fixture(scope="session")
def evaluator(engine: SimulatedCodex, analyzer: SuggestionAnalyzer) -> PromptEvaluator:
    return PromptEvaluator(engine=engine, analyzer=analyzer)


@pytest.fixture(scope="session")
def full_results(evaluator: PromptEvaluator) -> ResultSet:
    """The full Table 1 grid evaluated once for the whole session."""
    runner = EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED, evaluator=evaluator)
    return runner.run_full_grid()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
