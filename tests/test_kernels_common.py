"""Tests for the kernel registry, problem suite and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.base import KernelComplexity
from repro.kernels.problems import ProblemSuite, default_sizes, make_problem
from repro.kernels.registry import (
    KERNEL_NAMES,
    all_kernels,
    find_kernel,
    get_kernel,
    kernel_complexity_order,
)
from repro.kernels.validation import allclose, compare_outputs, max_abs_error, relative_error


class TestRegistry:
    def test_canonical_order(self):
        assert KERNEL_NAMES == ("axpy", "gemv", "gemm", "spmv", "jacobi", "cg")

    def test_complexity_order_matches_canonical_order(self):
        assert kernel_complexity_order() == KERNEL_NAMES

    def test_all_kernels_have_distinct_complexities(self):
        complexities = [k.spec.complexity for k in all_kernels()]
        assert len(set(complexities)) == len(complexities)
        assert complexities == sorted(complexities)

    def test_get_kernel_case_insensitive(self):
        assert get_kernel("AXPY").spec.name == "axpy"

    def test_get_kernel_unknown(self):
        with pytest.raises(KeyError):
            get_kernel("fft")

    def test_find_kernel_by_synonym(self):
        assert find_kernel("conjugate gradient").spec.name == "cg"
        assert find_kernel("matrix multiply").spec.name == "gemm"
        assert find_kernel("sparse matvec").spec.name == "spmv"
        assert find_kernel("unknown thing") is None

    def test_cg_is_hardest(self):
        assert get_kernel("cg").spec.complexity is KernelComplexity.MULTIKERNEL
        assert get_kernel("cg").spec.num_subkernels > get_kernel("axpy").spec.num_subkernels


class TestProblemSuite:
    def test_default_sizes_exist_for_every_kernel(self):
        for name in KERNEL_NAMES:
            sizes = default_sizes(name)
            assert len(sizes) >= 2
            assert all(s > 0 for s in sizes)

    def test_default_sizes_unknown_kernel(self):
        with pytest.raises(KeyError):
            default_sizes("nope")

    def test_make_problem_is_deterministic(self):
        a = make_problem("gemv", 16, seed=7)
        b = make_problem("gemv", 16, seed=7)
        np.testing.assert_array_equal(a.inputs["A"], b.inputs["A"])
        np.testing.assert_array_equal(a.expected, b.expected)

    def test_make_problem_seed_changes_data(self):
        a = make_problem("axpy", 16, seed=1)
        b = make_problem("axpy", 16, seed=2)
        assert not np.array_equal(a.inputs["x"], b.inputs["x"])

    def test_iter_all_covers_every_kernel(self):
        suite = ProblemSuite()
        names = {name for name, _ in suite.iter_all()}
        assert names == set(KERNEL_NAMES)

    def test_size_override(self):
        suite = ProblemSuite(sizes={"axpy": (4,)})
        assert suite.sizes_for("axpy") == (4,)
        problems = suite.problems_for("axpy")
        assert len(problems) == 1
        assert problems[0].size == 4

    def test_smallest_problem(self):
        suite = ProblemSuite()
        assert suite.smallest_problem("gemm").size == min(default_sizes("gemm"))

    def test_copy_inputs_protects_oracle_data(self):
        problem = make_problem("axpy", 8)
        copies = problem.copy_inputs()
        copies["x"][:] = 0.0
        assert not np.array_equal(copies["x"], problem.inputs["x"])


class TestValidation:
    def test_allclose_accepts_equal_arrays(self, rng):
        x = rng.standard_normal(10)
        assert allclose(x, x.copy())

    def test_allclose_rejects_different_arrays(self, rng):
        x = rng.standard_normal(10)
        assert not allclose(x, x + 1.0)

    def test_shape_mismatch_is_reported(self):
        result = compare_outputs(np.zeros(3), np.zeros(4))
        assert not result.passed
        assert "shape mismatch" in result.message

    def test_trivial_shape_difference_is_tolerated(self):
        result = compare_outputs(np.zeros((3, 1)), np.zeros(3))
        assert result.passed

    def test_non_numeric_candidate(self):
        result = compare_outputs("not numbers", np.zeros(3))
        assert not result.passed
        assert "not numeric" in result.message

    def test_nan_candidate_rejected(self):
        result = compare_outputs(np.array([np.nan, 0.0]), np.zeros(2))
        assert not result.passed
        assert "NaN" in result.message

    def test_none_candidate_rejected(self):
        assert not compare_outputs(None, np.zeros(2)).passed

    def test_malformed_oracle_raises(self):
        with pytest.raises(ValueError):
            compare_outputs(np.zeros(2), "oracle?")

    def test_scalar_comparison(self):
        assert compare_outputs(1.0, 1.0 + 1e-14).passed
        assert not compare_outputs(1.0, 2.0).passed

    def test_list_inputs_are_accepted(self):
        assert compare_outputs([1.0, 2.0], np.array([1.0, 2.0])).passed

    def test_relative_error_values(self):
        assert relative_error(np.array([2.0]), np.array([1.0])) == pytest.approx(1.0)
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_error(np.zeros(2), np.zeros(3)) == float("inf")

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 5.0]), np.array([1.0, 2.0])) == 3.0
        assert max_abs_error(np.array([]), np.array([])) == 0.0

    @given(
        values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=30),
        scale=st.floats(1e-13, 1e-11),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_small_perturbations_pass(self, values, scale):
        x = np.asarray(values, dtype=np.float64)
        perturbed = x * (1.0 + scale)
        assert compare_outputs(perturbed, x, rtol=1e-9, atol=1e-9).passed
