"""Differential oracle for the vectorized lockstep CUDA-C interpreter.

The lockstep engine (:mod:`repro.sandbox.cuda_c.lockstep`) must be
observationally indistinguishable from the scalar thread sweep — buffers,
verdicts, error types/messages, and recorded launch replays all byte-equal.
This suite is the guard for that contract:

* every CUDA-embedded corpus suggestion (templates *and* mutations, which
  cover out-of-bounds and wrong-result paths) runs through both engines,
* seeded property-based expression tests (stdlib ``random`` only) sweep
  arithmetic/comparison/ternary trees over thread indices, including int
  overflow and float NaN/inf cases,
* targeted divergence kernels (thread-dependent branches, early return,
  per-thread loop trip counts, ``__syncthreads__``) must match *without*
  falling back to the scalar path, and
* known-hazardous kernels (cross-lane reads, duplicate scatters) must fall
  back and still match exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.analyzer import SuggestionAnalyzer
from repro.sandbox.cuda_c import CudaModule, execution_mode, lockstep_stats, static_elision
from repro.sandbox.cuda_c import interpreter as interp
from repro.sandbox.executor import evaluate_python_suggestions
from repro.corpus.store import CorpusStore


def _cuda_snippets(corpus: CorpusStore):
    return [
        s for s in corpus
        if s.language == "python" and ("SourceModule" in s.code or "RawKernel" in s.code)
    ]


def _result_signature(results):
    out = []
    for r in results:
        output = r.output
        if isinstance(output, np.ndarray):
            output = (output.shape, output.dtype.str, output.tobytes())
        out.append((r.passed, tuple(r.issues), r.entry_point, output))
    return out


def _lockstep_delta(before, after):
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}


def _launch_both(source, kernel_name, args_factory, grid, block):
    """Launch under both engines; return (buffer bytes, error) per mode."""
    results = {}
    for mode in ("auto", "scalar"):
        args = args_factory()
        err = None
        with execution_mode(mode):
            kern = CudaModule(source).get_kernel(kernel_name)
            try:
                kern.launch(grid, block, args)
            except Exception as exc:
                err = (type(exc).__name__, str(exc))
        buffers = tuple(
            a.tobytes() for a in args if isinstance(a, np.ndarray)
        )
        results[mode] = (buffers, err)
    return results


def _assert_both_identical(source, kernel_name, args_factory, grid=(2,), block=(32,)):
    results = _launch_both(source, kernel_name, args_factory, grid, block)
    assert results["auto"] == results["scalar"]
    return results["auto"]


class TestCorpusDifferential:
    """Every CUDA-embedded corpus suggestion through both engines."""

    def test_every_cuda_suggestion_matches_scalar(self, corpus):
        snippets = _cuda_snippets(corpus)
        assert len(snippets) >= 20  # templates + mutations for 6 kernels
        batch = [(s.code, s.kernel) for s in snippets]
        vectorized = evaluate_python_suggestions(batch)
        scalar = evaluate_python_suggestions(batch, cuda_execution="scalar")
        assert _result_signature(vectorized) == _result_signature(scalar)

    def test_vectorized_is_the_default_and_actually_runs(self, corpus):
        snippets = [s for s in _cuda_snippets(corpus) if s.origin.value == "template"]
        batch = [(s.code, s.kernel) for s in snippets]
        before = lockstep_stats()
        results = evaluate_python_suggestions(batch)
        delta = _lockstep_delta(before, lockstep_stats())
        assert all(r.passed for r in results)
        assert delta.get("launches_lockstep", 0) > 0
        assert delta.get("launches_scalar_fallback", 0) == 0
        assert not any(k.startswith("fallback[") and v for k, v in delta.items())

    def test_verdicts_identical_across_engines(self, corpus):
        """Full analyzer verdicts (the persisted artifact) for every CUDA
        suggestion must not depend on the engine."""
        snippets = _cuda_snippets(corpus)
        verdicts = {}
        for mode in ("auto", "scalar"):
            analyzer = SuggestionAnalyzer(shared_memo=False)
            with execution_mode(mode):
                verdicts[mode] = [
                    analyzer.analyze(
                        s.code, language="python", kernel=s.kernel,
                        requested_model=s.label_model or "python.pycuda",
                    ).to_payload()
                    for s in snippets
                ]
        assert verdicts["auto"] == verdicts["scalar"]

    def test_recorded_launch_replays_identical(self):
        """Within a shared parse scope, the recorded launch-replay memo
        (kernel, geometry, argument fingerprint -> post-launch buffers) must
        be identical whichever engine interpreted the first launch."""
        src = """
        __global__ void gemv(const int m, const int n, const double *A, const double *x, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < m) {
                double sum = 0.0;
                for (int j = 0; j < n; j++) { sum += A[i * n + j] * x[j]; }
                y[i] = sum;
            }
        }
        """
        records = {}
        for mode in ("auto", "scalar"):
            rng = np.random.default_rng(3)
            a = rng.standard_normal(12 * 9)
            x = rng.standard_normal(9)
            with interp.shared_parse_scope(), execution_mode(mode):
                kern = CudaModule(src).get_kernel("gemv")
                kern.launch((1,), (32,), (12, 9, a, x, np.zeros(12)))
                kern.launch((1,), (32,), (12, 9, a, x, np.zeros(12)))  # replays
                memo = interp._LAUNCH_SCOPE.get()
                assert memo is not None
                normalized = []
                for key, buffers in memo.items():
                    kernel_obj = key[0]
                    normalized.append((
                        (kernel_obj.name,) + tuple(key[1:]),
                        tuple((name, arr.tobytes()) for name, arr in buffers),
                    ))
                records[mode] = sorted(normalized)
        assert records["auto"] == records["scalar"]
        assert len(records["auto"]) == 1  # both launches share one record

    def test_replayed_launch_matches_fresh_interpretation(self):
        """A memo replay (second identical launch in a scope) must leave the
        same bytes as interpreting from scratch, under both engines."""
        src = """
        __global__ void scale(const int n, const double a, double *y)
        { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { y[i] = a * y[i]; } }
        """
        outputs = {}
        for mode in ("auto", "scalar"):
            rng = np.random.default_rng(7)
            y_scoped = rng.standard_normal(40)
            y_fresh = y_scoped.copy()
            with execution_mode(mode):
                with interp.shared_parse_scope():
                    kern = CudaModule(src).get_kernel("scale")
                    probe = y_scoped.copy()
                    kern.launch((2,), (32,), (40, 1.5, probe))       # records
                    kern.launch((2,), (32,), (40, 1.5, y_scoped))    # replays
                CudaModule(src).get_kernel("scale").launch((2,), (32,), (40, 1.5, y_fresh))
            assert y_scoped.tobytes() == y_fresh.tobytes()
            outputs[mode] = y_scoped.tobytes()
        assert outputs["auto"] == outputs["scalar"]


# ---------------------------------------------------------------------------
# property-based expression differential (seeded, stdlib-only generator)
# ---------------------------------------------------------------------------

_INT_LEAVES = ("0", "1", "2", "3", "7", "12", "255", "100000", "2147483647",
               "4611686018427387904", "9223372036854775807")
_FLOAT_LEAVES = ("0.0", "0.5", "2.0", "3.25", "1e3", "1e308",
                 "(1e308 * 2.0 - 1e308 * 2.0)",   # NaN
                 "(1e308 * 2.0)")                  # inf
_VAR_LEAVES = ("i", "n", "threadIdx.x", "blockIdx.x", "blockDim.x")
_BIN_OPS = ("+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||")


def _gen_expr(rng: random.Random, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        bucket = rng.random()
        if bucket < 0.45:
            return rng.choice(_VAR_LEAVES)
        if bucket < 0.75:
            return rng.choice(_INT_LEAVES)
        return rng.choice(_FLOAT_LEAVES)
    shape = rng.random()
    if shape < 0.55:
        op = rng.choice(_BIN_OPS)
        return f"({_gen_expr(rng, depth - 1)} {op} {_gen_expr(rng, depth - 1)})"
    if shape < 0.70:
        cond = _gen_expr(rng, depth - 1)
        return f"({cond} ? {_gen_expr(rng, depth - 1)} : {_gen_expr(rng, depth - 1)})"
    if shape < 0.80:
        return f"(-{_gen_expr(rng, depth - 1)})"
    if shape < 0.88:
        return f"(!{_gen_expr(rng, depth - 1)})"
    func = rng.choice(("min", "max", "fabs"))
    if func == "fabs":
        return f"fabs({_gen_expr(rng, depth - 1)})"
    return f"{func}({_gen_expr(rng, depth - 1)}, {_gen_expr(rng, depth - 1)})"


def _expr_kernel(expr: str) -> str:
    return (
        "__global__ void f(const int n, double *out)\n"
        "{\n"
        "    int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        f"    if (i < n) {{ out[i] = {expr}; }}\n"
        "}\n"
    )


class TestPropertyExpressions:
    """Random expression trees evaluated scalar-vs-lockstep, elementwise."""

    N = 67  # not a multiple of the block size: guard divergence included

    def _assert_expr_matches(self, expr: str):
        src = _expr_kernel(expr)
        _assert_both_identical(
            src, "f", lambda: (self.N, np.zeros(self.N)), grid=(3,), block=(32,)
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_random_expression_batches(self, seed):
        rng = random.Random(20230414 + seed)
        for _ in range(8):
            self._assert_expr_matches(_gen_expr(rng, rng.randint(1, 4)))

    def test_int_overflow_expression(self):
        # int64 would overflow; the scalar engine's exact Python ints are the
        # reference and the lockstep engine must defer to them.
        self._assert_expr_matches("(9223372036854775807 + i)")
        self._assert_expr_matches("(4611686018427387904 * (i + 2))")
        self._assert_expr_matches("(9223372036854775807 * 9223372036854775807 + i)")

    def test_nan_and_inf_expressions(self):
        self._assert_expr_matches("((1e308 * 2.0 - 1e308 * 2.0) + i)")
        self._assert_expr_matches("((1e308 * 2.0 - 1e308 * 2.0) < i ? 1.0 : 2.0)")
        self._assert_expr_matches("min(i, (1e308 * 2.0 - 1e308 * 2.0))")
        self._assert_expr_matches("min((1e308 * 2.0 - 1e308 * 2.0), i)")
        self._assert_expr_matches("max(i, (1e308 * 2.0))")
        self._assert_expr_matches("(!(1e308 * 2.0 - 1e308 * 2.0))")

    def test_division_and_modulo_by_zero_expressions(self):
        # Scalar raises (CudaRuntimeError for int /, ZeroDivisionError for
        # float / and %); the lockstep engine must surface identical errors.
        self._assert_expr_matches("(i / (i % 3))")
        self._assert_expr_matches("(1.0 / (i % 3))")
        self._assert_expr_matches("(i % (i % 3))")
        self._assert_expr_matches("(7 / (n - n))")

    def test_mixed_type_ternary_per_lane(self):
        # Branch types differ (int vs float): per-lane `/` semantics diverge
        # between lanes, which the lockstep engine must reproduce (via
        # hazard fallback) bit-exactly.
        self._assert_expr_matches("(((i % 2 == 0) ? 3 : 2.5) / 2)")

    def test_int_decl_from_huge_float_matches_exact_python_semantics(self):
        # int v = 1e19-scale float: scalar int() is exact beyond int64; a
        # wrapping astype would flip the sign and diverge.
        src = """
        __global__ void f(const int n, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            int v = (threadIdx.x + 1.0) * 1e19;
            if (i < n) { y[i] = v > 0 ? 1.0 : 2.0; }
        }
        """
        (buffers,), err = _assert_both_identical(
            src, "f", lambda: (4, np.zeros(4)), grid=(1,), block=(4,)
        )
        assert err is None
        np.testing.assert_array_equal(np.frombuffer(buffers), [1.0, 1.0, 1.0, 1.0])

    def test_integer_division_semantics_negative_operands(self):
        self._assert_expr_matches("((0 - i) / 3)")
        self._assert_expr_matches("((0 - i) % 3)")
        self._assert_expr_matches("((0 - i) / (0 - 3))")


# ---------------------------------------------------------------------------
# divergence coverage (must vectorize, not fall back)
# ---------------------------------------------------------------------------

def _assert_no_fallback(delta):
    assert delta.get("launches_lockstep", 0) >= 1
    assert delta.get("launches_scalar_fallback", 0) == 0


class TestDivergence:
    def _run_divergent(self, src, name, args_factory, grid=(2,), block=(32,)):
        before = lockstep_stats()
        signature = _assert_both_identical(src, name, args_factory, grid, block)
        delta = _lockstep_delta(before, lockstep_stats())
        _assert_no_fallback(delta)
        return signature

    def test_if_else_thread_dependent(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                if (i % 2 == 0) { out[i] = i * 2.0; }
                else { out[i] = 0.0 - i; }
            }
        }
        """
        self._run_divergent(src, "f", lambda: (50, np.zeros(50)))

    def test_early_return_thread_dependent(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i >= n) { return; }
            if (i % 3 == 0) { return; }
            out[i] = i + 0.5;
        }
        """
        self._run_divergent(src, "f", lambda: (50, np.zeros(50)))

    def test_while_loop_per_thread_trip_counts(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                double acc = 0.0;
                int j = 0;
                while (j < i % 7) {
                    acc += j + 1.0;
                    j++;
                }
                out[i] = acc;
            }
        }
        """
        self._run_divergent(src, "f", lambda: (60, np.zeros(60)))

    def test_for_loop_with_break_and_continue(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                double acc = 0.0;
                for (int j = 0; j < 10; j++) {
                    if (j == i % 4) { continue; }
                    if (j > i % 6 + 3) { break; }
                    acc += 1.0;
                }
                out[i] = acc;
            }
        }
        """
        self._run_divergent(src, "f", lambda: (60, np.zeros(60)))

    def test_syncthreads_inside_uniform_branch(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (n > 0) {
                __syncthreads();
                if (i < n) { out[i] = i + 1.0; }
                __syncthreads();
            }
        }
        """
        self._run_divergent(src, "f", lambda: (40, np.zeros(40)))

    def test_nested_divergent_loops(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                double acc = 0.0;
                for (int a = 0; a < i % 3 + 1; a++) {
                    for (int b = 0; b < a + i % 2 + 1; b++) {
                        acc += a * 10.0 + b;
                    }
                }
                out[i] = acc;
            }
        }
        """
        self._run_divergent(src, "f", lambda: (60, np.zeros(60)))

    def test_guard_out_of_bounds_error_identical(self):
        # Weakened guard: thread n runs out of bounds.  Both engines must
        # produce the identical error *and* identical partial buffer bytes
        # (scalar threads 0..n-1 already wrote before the raise).
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i <= n) { out[i] = i * 1.5; }
        }
        """
        signature = _assert_both_identical(src, "f", lambda: (8, np.zeros(8)), grid=(1,), block=(32,))
        buffers, err = signature
        assert err is not None and err[0] == "CudaRuntimeError"
        assert "out-of-bounds" in err[1]


# ---------------------------------------------------------------------------
# hazard paths (must fall back AND match)
# ---------------------------------------------------------------------------

class TestHazardFallback:
    def _run_hazard(self, src, name, args_factory, reason, grid=(1,), block=(32,)):
        before = lockstep_stats()
        _assert_both_identical(src, name, args_factory, grid, block)
        delta = _lockstep_delta(before, lockstep_stats())
        assert delta.get("launches_scalar_fallback", 0) >= 1
        assert delta.get(f"fallback[{reason}]", 0) >= 1

    def test_duplicate_scatter_falls_back_identically(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i % 4] = i * 1.0; }
        }
        """
        self._run_hazard(src, "f", lambda: (16, np.zeros(4)), "duplicate-scatter")

    def test_cross_lane_read_falls_back_identically(self):
        # Thread t reads the element thread t-1 wrote: sequential execution
        # is order-sensitive, so the lockstep engine must defer.
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                out[i] = i + 1.0;
                if (i > 0) { out[i] = out[i - 1] * 10.0; }
            }
        }
        """
        self._run_hazard(src, "f", lambda: (8, np.zeros(8)), "cross-lane-read")

    def test_intra_statement_cross_lane_read_falls_back_identically(self):
        # Thread t reads the element thread t-1 writes *in the same
        # statement*: sequential execution chains the values ([0,1,2,3,..]),
        # a naive gather-then-scatter would not ([0,1,1,1,..]).
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i > 0 && i < n) { out[i] = out[i - 1] + 1.0; }
        }
        """
        before = lockstep_stats()
        (buffers,), err = _assert_both_identical(
            src, "f", lambda: (8, np.zeros(8)), grid=(1,), block=(8,)
        )
        delta = _lockstep_delta(before, lockstep_stats())
        assert err is None
        assert delta.get("fallback[write-after-read]", 0) >= 1
        np.testing.assert_array_equal(
            np.frombuffer(buffers), [0, 1, 2, 3, 4, 5, 6, 7]
        )

    def test_intra_statement_compound_cross_lane_read_falls_back(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i > 0 && i < n) { out[i] += out[i - 1]; }
        }
        """
        self._run_hazard(src, "f", lambda: (8, np.ones(8)), "write-after-read")

    def test_cross_statement_write_after_read_falls_back_identically(self):
        # Every thread reads y[0] in one statement; thread 0 writes it in
        # the next.  Sequentially, threads 1.. read *after* thread 0's
        # write ([1,2,2,2,...]); a gather-then-scatter engine that missed
        # the hazard would produce [1,1,1,1,...].
        src = """
        __global__ void f(const int n, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                double t = y[0];
                y[i] = t + 1.0;
            }
        }
        """
        before = lockstep_stats()
        (buffers,), err = _assert_both_identical(
            src, "f", lambda: (4, np.zeros(4)), grid=(1,), block=(4,)
        )
        delta = _lockstep_delta(before, lockstep_stats())
        assert err is None
        assert delta.get("fallback[write-after-read]", 0) >= 1
        np.testing.assert_array_equal(np.frombuffer(buffers), [1, 2, 2, 2])

    def test_same_lane_read_modify_write_still_vectorizes(self):
        # axpy's `y[i] = a * x[i] + y[i]`: each lane reads only its own
        # write target — order-free, must not fall back.
        src = """
        __global__ void f(const int n, const double *x, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = 2.0 * x[i] + y[i]; }
        }
        """
        before = lockstep_stats()
        rng = np.random.default_rng(11)
        x = rng.standard_normal(20)
        _assert_both_identical(src, "f", lambda: (20, x.copy(), np.ones(20)), grid=(1,), block=(32,))
        _assert_no_fallback(_lockstep_delta(before, lockstep_stats()))

    def test_atomic_result_use_with_duplicates_falls_back(self):
        src = """
        __global__ void f(const int n, double *total, double *seen)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { seen[i] = atomicAdd(total, 1.0); }
        }
        """
        self._run_hazard(
            src, "f", lambda: (8, np.zeros(1), np.zeros(8)), "atomic-result-order"
        )

    def test_atomic_accumulation_without_result_vectorizes(self):
        src = """
        __global__ void count(const int n, double *total)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { atomicAdd(total, 1.0); }
        }
        """
        before = lockstep_stats()
        _assert_both_identical(src, "count", lambda: (12, np.zeros(1)), grid=(2,), block=(8,))
        delta = _lockstep_delta(before, lockstep_stats())
        _assert_no_fallback(delta)

    def test_step_budget_exhaustion_identical(self):
        src = "__global__ void f(const int n, double *y) { while (1 < 2) { y[0] += 1.0; } }"
        errors = {}
        for mode in ("auto", "scalar"):
            with execution_mode(mode):
                kern = CudaModule(src).get_kernel("f")
                kern.max_thread_steps = 5_000
                y = np.zeros(1)
                with pytest.raises(interp.CudaRuntimeError) as excinfo:
                    kern.launch((1,), (1,), (1, y))
                errors[mode] = str(excinfo.value)
        assert errors["auto"] == errors["scalar"]


class TestCompileTimeFallbacks:
    def test_break_outside_loop_stays_scalar_and_identical(self):
        # A loop-less break escapes the scalar engine as a raw signal; the
        # lockstep engine must not reinterpret it as a lane-mask subtraction.
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { break; }
            out[i] = 1.0;
        }
        """
        kern = CudaModule(src).get_kernel("f")
        assert kern.lockstep is None
        _assert_both_identical(src, "f", lambda: (4, np.zeros(8)), grid=(1,), block=(8,))

    def test_continue_outside_loop_stays_scalar_and_identical(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { continue; }
            out[i] = 1.0;
        }
        """
        assert CudaModule(src).get_kernel("f").lockstep is None
        _assert_both_identical(src, "f", lambda: (4, np.zeros(8)), grid=(1,), block=(8,))

    def test_break_inside_loop_still_vectorizes(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                for (int j = 0; j < 10; j++) { if (j > i) { break; } out[i] = j; }
            }
        }
        """
        assert CudaModule(src).get_kernel("f").lockstep is not None


class TestNarrowBufferStores:
    def test_int32_overflow_store_falls_back_identically(self):
        # int64 lane values out of int32 range: the scalar engine raises
        # OverflowError assigning element by element; the lockstep engine
        # must not wrap silently.
        src = """
        __global__ void f(const int n, int *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = (i + 1) * 100000 * 100000; }
        }
        """
        signature = _assert_both_identical(
            src, "f", lambda: (4, np.zeros(4, dtype=np.int32)), grid=(1,), block=(8,)
        )
        _, err = signature
        assert err is not None and err[0] == "OverflowError"

    def test_int32_compound_store_falls_back_identically(self):
        src = """
        __global__ void f(const int n, int *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] += 2000000000 + i; }
        }
        """
        _assert_both_identical(
            src, "f", lambda: (4, np.ones(4, dtype=np.int32)), grid=(1,), block=(8,)
        )

    def test_in_range_int32_store_vectorizes(self):
        src = """
        __global__ void f(const int n, int *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = i * 3 + 1; }
        }
        """
        before = lockstep_stats()
        _assert_both_identical(
            src, "f", lambda: (6, np.zeros(6, dtype=np.int32)), grid=(1,), block=(8,)
        )
        _assert_no_fallback(_lockstep_delta(before, lockstep_stats()))


class TestExecutionModeSelection:
    def test_env_var_forces_scalar_through_batched_pipeline(self, monkeypatch):
        # $REPRO_CUDA_EXECUTION is the CLI-level control: with no explicit
        # cuda_execution argument the batched executor must honour it.
        src = (
            "import numpy as np\n"
            "import pycuda.autoinit\n"
            "import pycuda.driver as drv\n"
            "from pycuda.compiler import SourceModule\n"
            '_mod = SourceModule("""\n'
            "__global__ void axpy(const int n, const double a, const double *x, double *y)\n"
            "{ int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { y[i] = a * x[i] + y[i]; } }\n"
            '""")\n'
            '_axpy = _mod.get_function("axpy")\n'
            "def axpy(a, x, y):\n"
            "    x = np.asarray(x, dtype=np.float64)\n"
            "    y = np.asarray(y, dtype=np.float64).copy()\n"
            "    _axpy(np.int32(x.size), np.float64(a), drv.In(x), drv.InOut(y),\n"
            "          block=(256, 1, 1), grid=(1, 1))\n"
            "    return y\n"
        )
        monkeypatch.setenv("REPRO_CUDA_EXECUTION", "scalar")
        before = lockstep_stats()
        results = evaluate_python_suggestions([(src, "axpy")])
        delta = _lockstep_delta(before, lockstep_stats())
        assert results[0].passed
        assert delta.get("launches_lockstep", 0) == 0
        assert delta.get("launches_scalar_forced", 0) >= 1

    def test_explicit_mode_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CUDA_EXECUTION", "scalar")
        with execution_mode("auto"):
            assert interp._current_mode() == "auto"
        assert interp._current_mode() == "scalar"
        monkeypatch.delenv("REPRO_CUDA_EXECUTION")
        assert interp._current_mode() == "auto"

    def test_invalid_env_value_fails_loud(self, monkeypatch):
        # A typo must not silently force the slow engine.
        monkeypatch.setenv("REPRO_CUDA_EXECUTION", "lockstep")
        kern = CudaModule(
            "__global__ void f(int n, double *y) { y[0] = n; }"
        ).get_kernel("f")
        with pytest.raises(interp.CudaRuntimeError, match="REPRO_CUDA_EXECUTION"):
            kern.launch((1,), (1,), (1, np.zeros(1)))

    def test_invalid_execution_mode_argument_rejected(self):
        with pytest.raises(ValueError):
            with execution_mode("vectorized"):
                pass

    def test_scalar_only_kernels_counted_distinctly(self):
        src = """
        __global__ void f(const int n, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = mystruct.x; }
        }
        """
        kern = CudaModule(src).get_kernel("f")
        assert kern.lockstep is None
        before = lockstep_stats()
        with pytest.raises(interp.CudaRuntimeError):
            kern.launch((1,), (4,), (2, np.zeros(4)))
        delta = _lockstep_delta(before, lockstep_stats())
        assert delta.get("launches_scalar_only", 0) == 1
        assert delta.get("launches_scalar_forced", 0) == 0


class TestTernaryScalarSemantics:
    """The ternary operator is new in the parser: pin its scalar semantics."""

    def test_only_taken_branch_evaluates(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = i % 2 == 0 ? 10.0 + i : 0.0 - i; }
        }
        """
        n = 10
        out = np.zeros(n)
        with execution_mode("scalar"):
            CudaModule(src).get_kernel("f").launch((1,), (32,), (n, out))
        expected = np.array([10.0 + i if i % 2 == 0 else -float(i) for i in range(n)])
        np.testing.assert_array_equal(out, expected)

    def test_untaken_branch_errors_do_not_fire(self):
        # (i / 0) would raise — but only the taken branch evaluates.
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = 1 < 2 ? 5.0 : i / (n - n); }
        }
        """
        _assert_both_identical(src, "f", lambda: (8, np.zeros(8)), grid=(1,), block=(8,))

    def test_right_associativity(self):
        src = """
        __global__ void f(const int n, double *out)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = i < 2 ? 1.0 : i < 5 ? 2.0 : 3.0; }
        }
        """
        result = _assert_both_identical(src, "f", lambda: (8, np.zeros(8)), grid=(1,), block=(8,))
        buffers, err = result
        assert err is None
        values = np.frombuffer(buffers[0])
        np.testing.assert_array_equal(values, [1, 1, 2, 2, 2, 3, 3, 3])


class TestStaticElisionSoundness:
    """Static-analysis-driven hazard-tracking elision must be unobservable.

    A buffer the analyzer proved race-safe skips the runtime writer/
    duplicate/foreign-reader bookkeeping — but its snapshot stays, because
    an *unrelated* hazard later in the launch still restores every buffer
    and replays through the scalar sweep.  These tests pin both halves of
    that contract, plus the corpus-wide observational equivalence.
    """

    MIXED_SRC = """
    __global__ void k(int n, double* y, double* z, const int* idx) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            y[i] = y[i] + 1.0;
            z[idx[i]] = y[i];
        }
    }
    """

    def test_every_cuda_suggestion_matches_with_elision_on_and_off(self, corpus):
        batch = [(s.code, s.kernel) for s in _cuda_snippets(corpus)]
        signatures = {}
        for enabled in (True, False):
            with static_elision(enabled):
                signatures[enabled] = _result_signature(evaluate_python_suggestions(batch))
        assert signatures[True] == signatures[False]

    def test_elision_engages_on_stock_corpus(self, corpus):
        snippets = [s for s in _cuda_snippets(corpus) if s.origin.value == "template"]
        batch = [(s.code, s.kernel) for s in snippets]
        before = lockstep_stats()
        with static_elision(True):
            results = evaluate_python_suggestions(batch)
        delta = _lockstep_delta(before, lockstep_stats())
        assert all(r.passed for r in results)
        assert delta.get("launches_static_elided", 0) > 0
        assert delta.get("launches_scalar_fallback", 0) == 0

    def test_unrelated_hazard_restores_elided_buffer(self):
        # y is proven race-safe and elided; z's duplicate scatter trips the
        # runtime hazard, so the launch must restore y from its snapshot and
        # replay through the scalar sweep — byte-identically.
        kern = CudaModule(self.MIXED_SRC).get_kernel("k")
        assert "y" in kern.static_report.race_safe
        idx = np.zeros(32, dtype=np.int32)
        outputs = {}
        for mode, elide in (("auto", True), ("auto", False), ("scalar", False)):
            y = np.arange(32, dtype=np.float64)
            z = np.zeros(8)
            before = lockstep_stats()
            with execution_mode(mode), static_elision(elide):
                kern.launch((1,), (32,), (32, y, z, idx))
            delta = _lockstep_delta(before, lockstep_stats())
            if mode == "auto":
                assert delta.get("fallback[duplicate-scatter]", 0) == 1
            if elide:
                assert delta.get("launches_static_elided", 0) == 1
            outputs[(mode, elide)] = (y.tobytes(), z.tobytes())
        assert outputs[("auto", True)] == outputs[("auto", False)] == outputs[("scalar", False)]

    def test_race_hazard_kernel_never_elides_its_buffer(self):
        src = """
        __global__ void k(int n, double* y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[0] = y[0] + 1.0; }
        }
        """
        kern = CudaModule(src).get_kernel("k")
        assert "y" not in (kern.static_report.race_safe if kern.static_report else {})
        y = np.zeros(4)
        before = lockstep_stats()
        with static_elision(True):
            kern.launch((1,), (32,), (4, y))
        delta = _lockstep_delta(before, lockstep_stats())
        assert delta.get("launches_static_elided", 0) == 0
