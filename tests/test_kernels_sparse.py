"""Tests for the sparse substrate (COO/CSR) and the SpMV kernel."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.base import KernelComplexity
from repro.kernels.sparse import CooMatrix, CsrMatrix, poisson_1d, poisson_2d, poisson_3d
from repro.kernels.spmv import SpmvKernel, spmv, spmv_arrays


class TestCooMatrix:
    def test_to_dense(self):
        coo = CooMatrix(rows=[0, 1, 1], cols=[1, 0, 2], data=[3.0, 4.0, 5.0], shape=(2, 3))
        expected = np.array([[0.0, 3.0, 0.0], [4.0, 0.0, 5.0]])
        np.testing.assert_array_equal(coo.to_dense(), expected)

    def test_duplicate_entries_are_summed_in_csr(self):
        coo = CooMatrix(rows=[0, 0], cols=[1, 1], data=[2.0, 3.0], shape=(1, 2))
        csr = coo.to_csr()
        np.testing.assert_array_equal(csr.to_dense(), [[0.0, 5.0]])

    def test_empty_matrix(self):
        coo = CooMatrix(rows=[], cols=[], data=[], shape=(3, 3))
        csr = coo.to_csr()
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.matvec(np.ones(3)), np.zeros(3))

    def test_out_of_bounds_indices_raise(self):
        with pytest.raises(ValueError):
            CooMatrix(rows=[5], cols=[0], data=[1.0], shape=(2, 2))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            CooMatrix(rows=[0, 1], cols=[0], data=[1.0], shape=(2, 2))


class TestCsrMatrix:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((6, 5))
        dense[np.abs(dense) < 0.7] = 0.0
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_matvec_matches_dense(self, rng):
        dense = rng.standard_normal((8, 8))
        dense[np.abs(dense) < 0.9] = 0.0
        csr = CsrMatrix.from_dense(dense)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(csr.matvec(x), dense @ x)

    def test_matvec_matches_loop_reference(self, rng):
        csr = CsrMatrix.random(20, 20, 0.2, rng=rng)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(csr.matvec(x), csr.matvec_loop(x))

    def test_matvec_matches_scipy(self, rng):
        dense = rng.standard_normal((15, 11))
        dense[np.abs(dense) < 0.8] = 0.0
        ours = CsrMatrix.from_dense(dense)
        theirs = sp.csr_matrix(dense)
        x = rng.standard_normal(11)
        np.testing.assert_allclose(ours.matvec(x), theirs @ x)

    def test_matvec_with_empty_rows(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = 2.0
        dense[3, 3] = -1.0
        csr = CsrMatrix.from_dense(dense)
        x = np.arange(4, dtype=float)
        np.testing.assert_allclose(csr.matvec(x), dense @ x)

    def test_matmul_operator(self, rng):
        csr = CsrMatrix.identity(5)
        x = rng.standard_normal(5)
        np.testing.assert_allclose(csr @ x, x)

    def test_matvec_rejects_wrong_shape(self):
        csr = CsrMatrix.identity(4)
        with pytest.raises(ValueError):
            csr.matvec(np.ones(5))

    def test_diagonal(self):
        dense = np.diag([1.0, 2.0, 3.0])
        dense[0, 2] = 9.0
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.diagonal(), [1.0, 2.0, 3.0])

    def test_transpose(self, rng):
        dense = rng.standard_normal((5, 7))
        dense[np.abs(dense) < 0.8] = 0.0
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.transpose().to_dense(), dense.T)

    def test_scale_rows(self, rng):
        dense = rng.standard_normal((4, 4))
        csr = CsrMatrix.from_dense(dense)
        scale = np.array([1.0, 2.0, 0.5, -1.0])
        np.testing.assert_allclose(csr.scale_rows(scale).to_dense(), np.diag(scale) @ dense)

    def test_row_nnz(self):
        dense = np.array([[1.0, 0.0], [1.0, 2.0]])
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.row_nnz(), [1, 2])

    def test_invalid_indptr_raises(self):
        with pytest.raises(ValueError):
            CsrMatrix(indptr=[0, 2], indices=[0], data=[1.0], shape=(1, 1))

    def test_random_density_bounds(self):
        with pytest.raises(ValueError):
            CsrMatrix.random(4, 4, 0.0)

    def test_is_symmetric(self):
        assert poisson_2d(3).is_symmetric()
        asym = CsrMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert not asym.is_symmetric()

    @given(n=st.integers(2, 12), density=st.floats(0.05, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_property_matvec_agrees_with_dense(self, n, density):
        rng = np.random.default_rng(n * 1000 + int(density * 100))
        csr = CsrMatrix.random(n, n, density, rng=rng)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(csr.matvec(x), csr.to_dense() @ x, rtol=1e-10, atol=1e-12)


class TestPoissonOperators:
    def test_poisson_1d_structure(self):
        dense = poisson_1d(4).to_dense()
        expected = np.array(
            [[2, -1, 0, 0], [-1, 2, -1, 0], [0, -1, 2, -1], [0, 0, -1, 2]], dtype=float
        )
        np.testing.assert_array_equal(dense, expected)

    def test_poisson_2d_is_spd(self):
        dense = poisson_2d(4).to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_poisson_3d_shape_and_diagonal(self):
        op = poisson_3d(3)
        assert op.shape == (27, 27)
        np.testing.assert_allclose(op.diagonal(), np.full(27, 6.0))

    def test_poisson_rectangular(self):
        op = poisson_2d(2, 3)
        assert op.shape == (6, 6)

    def test_poisson_1d_invalid_size(self):
        with pytest.raises(ValueError):
            poisson_1d(0)


class TestSpmvKernel:
    kernel = SpmvKernel()

    def test_spec(self):
        assert self.kernel.spec.complexity is KernelComplexity.IRREGULAR

    def test_spmv_function(self, rng):
        matrix = poisson_2d(3)
        x = rng.standard_normal(9)
        np.testing.assert_allclose(spmv(matrix, x), matrix.to_dense() @ x)

    def test_spmv_requires_csr(self, rng):
        with pytest.raises(TypeError):
            spmv(np.eye(3), np.ones(3))

    def test_spmv_arrays_interface(self, rng):
        matrix = poisson_2d(3)
        x = rng.standard_normal(9)
        result = spmv_arrays(matrix.indptr, matrix.indices, matrix.data, x)
        np.testing.assert_allclose(result, matrix.matvec(x))

    def test_structured_problem_for_square_sizes(self):
        problem = self.kernel.make_problem_with_expected(16)
        assert problem.metadata["structure"] == "poisson2d"
        assert self.kernel.validate(self.kernel.reference(problem.inputs), problem).passed

    def test_random_problem_for_non_square_sizes(self):
        problem = self.kernel.make_problem_with_expected(10)
        assert problem.metadata["structure"] == "random"
        assert self.kernel.validate(self.kernel.reference(problem.inputs), problem).passed
