"""Tests for multi-seed statistical sweeps (repro.api.sweep).

The contract under test (docs/api.md, "Statistical sweeps"):

* the bootstrap CI is content-keyed per cell — deterministic across calls,
  invariant to which *other* cells are swept;
* the summary is invariant to seed insertion order and to the order each
  per-seed ResultSet was merged from shards;
* a single-seed sweep degrades exactly to point estimates (no bootstrap);
* malformed inputs (no seeds, bad confidence, duplicate cells, missing
  cells) raise ValueError rather than summarising silently.
"""

from __future__ import annotations

import pytest

from repro.api import Session, SweepSummary, summarize_sweep
from repro.core.runner import RecordResult, ResultSet


def _record(model: str, kernel: str, score: float, *, use_postfix: bool = False) -> RecordResult:
    return RecordResult(
        {
            "language": "python",
            "model": model,
            "kernel": kernel,
            "use_postfix": use_postfix,
            "score": score,
        }
    )


def _result_set(seed: int, scores: dict[tuple[str, str], float]) -> ResultSet:
    rs = ResultSet(seed=seed)
    for (model, kernel), score in scores.items():
        rs.add(_record(model, kernel, score))
    return rs


CELLS = [("python.numpy", "axpy"), ("python.numba", "gemm"), ("python.cupy", "spmv")]


def _sweep_results(seeds: tuple[int, ...]) -> dict[int, ResultSet]:
    return {
        seed: _result_set(
            seed,
            {cell: 0.25 + 0.1 * i + 0.05 * (seed % 3) for i, cell in enumerate(CELLS)},
        )
        for seed in seeds
    }


class TestSummaryShape:
    def test_basic_summary(self):
        summary = summarize_sweep(_sweep_results((1, 2, 3)))
        assert isinstance(summary, SweepSummary)
        assert summary.seeds == (1, 2, 3)
        assert len(summary.cells) == len(CELLS)
        for stats in summary.cells:
            assert stats.ci_low <= stats.mean <= stats.ci_high
            assert len(stats.scores) == 3

    def test_cell_lookup(self):
        summary = summarize_sweep(_sweep_results((1, 2)))
        stats = summary.cell("python.numpy", "axpy")
        assert stats.model == "python.numpy"
        with pytest.raises(KeyError):
            summary.cell("python.numpy", "gemm")

    def test_payload_round_trip_fields(self):
        summary = summarize_sweep(_sweep_results((1, 2)), confidence=0.9, n_resamples=200)
        payload = summary.to_payload()
        assert payload["seeds"] == [1, 2]
        assert payload["confidence"] == 0.9
        assert payload["n_resamples"] == 200
        for record in payload["cells"]:
            assert set(record) >= {"model", "kernel", "mean", "ci_low", "ci_high", "scores"}

    def test_mean_of_means(self):
        summary = summarize_sweep(_sweep_results((1, 2)))
        expected = sum(stats.mean for stats in summary.cells) / len(summary.cells)
        assert summary.mean_of_means() == pytest.approx(expected)


class TestDeterminism:
    def test_bootstrap_is_deterministic(self):
        a = summarize_sweep(_sweep_results((1, 2, 3)))
        b = summarize_sweep(_sweep_results((1, 2, 3)))
        assert a == b

    def test_seed_insertion_order_invariant(self):
        results = _sweep_results((1, 2, 3))
        reversed_results = dict(reversed(list(results.items())))
        assert summarize_sweep(results) == summarize_sweep(reversed_results)

    def test_merge_order_invariant(self):
        """Per-seed sets assembled from shards in any order summarise identically."""
        parts = [
            _result_set(7, {CELLS[0]: 0.3}),
            _result_set(7, {CELLS[1]: 0.5}),
            _result_set(7, {CELLS[2]: 0.7}),
        ]
        forward = ResultSet.merge(*parts)
        backward = ResultSet.merge(*reversed(parts))
        other = _result_set(8, {cell: 0.4 for cell in CELLS})
        assert summarize_sweep({7: forward, 8: other}) == summarize_sweep({8: other, 7: backward})

    def test_ci_content_keyed_per_cell(self):
        """Sweeping extra cells never changes an existing cell's interval."""
        small = {
            seed: _result_set(seed, {CELLS[0]: 0.2 + 0.1 * seed}) for seed in (1, 2, 3)
        }
        large = {
            seed: _result_set(
                seed, {CELLS[0]: 0.2 + 0.1 * seed, CELLS[1]: 0.9, CELLS[2]: 0.1}
            )
            for seed in (1, 2, 3)
        }
        cell_small = summarize_sweep(small).cell(*CELLS[0])
        cell_large = summarize_sweep(large).cell(*CELLS[0])
        assert cell_small == cell_large


class TestDegenerateAndInvalid:
    def test_single_seed_degrades_to_point_estimate(self):
        summary = summarize_sweep(_sweep_results((7,)))
        for stats in summary.cells:
            assert stats.mean == stats.scores[0]
            assert stats.ci_low == stats.mean == stats.ci_high

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            summarize_sweep({})

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_bad_confidence_raises(self, confidence):
        with pytest.raises(ValueError):
            summarize_sweep(_sweep_results((1, 2)), confidence=confidence)

    def test_missing_cell_raises(self):
        results = _sweep_results((1, 2))
        results[2] = _result_set(2, {CELLS[0]: 0.5})  # drops two cells
        with pytest.raises(ValueError, match="missing from seed"):
            summarize_sweep(results)


class TestSessionSweepSeeds:
    def test_sweep_seeds_matches_manual_summary(self):
        with Session(backend="serial") as session:
            summary = session.sweep_seeds([3, 5], languages=["julia"], n_resamples=100)
            per_seed = session.sweep([3, 5], languages=["julia"])
        manual = summarize_sweep(per_seed, n_resamples=100)
        assert summary == manual
        assert summary.seeds == (3, 5)
        # the julia grid spans 24 cells (ExperimentSpec docstring example)
        assert len(summary.cells) == 24

    def test_single_seed_sweep_matches_plain_run(self):
        with Session(backend="serial") as session:
            summary = session.sweep_seeds([9], languages=["julia"])
            plain = session.language_results("julia", seed=9)
        for result in plain:
            cell = result.cell
            stats = summary.cell(cell.model, cell.kernel, use_postfix=cell.use_postfix)
            assert stats.mean == result.score
            assert stats.ci_low == stats.ci_high == result.score
