"""Tests for the Session façade and the deprecated legacy shim over it."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.api.session import default_session, reset_default_session
from repro.api.spec import ExperimentSpec
from repro.codex.config import CodexConfig, DEFAULT_SEED
from repro.core.runner import ResultSet
from repro.harness import experiments


class TestSessionCaching:
    def test_language_results_cached_per_fingerprint(self):
        with Session() as session:
            first = session.language_results("julia")
            second = session.language_results("julia", config=CodexConfig())
            assert first is second

    def test_distinct_sessions_do_not_share_results(self):
        with Session() as a, Session() as b:
            ra, rb = a.language_results("julia"), b.language_results("julia")
            assert ra is not rb
            assert ra.to_records() == rb.to_records()

    def test_seed_and_config_overrides_key_the_cache(self):
        with Session() as session:
            base = session.language_results("julia")
            reseeded = session.language_results("julia", seed=DEFAULT_SEED + 1)
            budget = session.language_results("julia", config=CodexConfig(max_suggestions=3))
            assert base is not reseeded
            assert base is not budget
            assert base is session.language_results("julia")

    def test_clear_cache_forces_reevaluation(self):
        with Session() as session:
            first = session.language_results("julia")
            session.clear_cache()
            second = session.language_results("julia")
            assert first is not second
            assert first.to_records() == second.to_records()

    def test_cache_is_lru_bounded(self):
        with Session(cache_size=4) as session:
            for i in range(6):
                session._cache_put((i, "x", "f"), ResultSet(seed=i))
            assert len(session._cache) == 4
            assert (0, "x", "f") not in session._cache
            assert (5, "x", "f") in session._cache


class TestSessionLifecycle:
    def test_close_shuts_down_runners(self):
        session = Session(backend="thread")
        session.language_results("julia")
        assert session._runners
        session.close()
        assert not session._runners
        with pytest.raises(RuntimeError):
            session.language_results("cpp")
        session.close()  # idempotent

    def test_runner_pool_reused_across_calls(self):
        with Session() as session:
            session.language_results("julia")
            runner = next(iter(session._runners.values()))
            session.language_results("fortran")
            assert next(iter(session._runners.values())) is runner

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Session(backend="gpu")
        with Session() as session:
            with pytest.raises(ValueError):
                session.language_results("julia", backend="gpu")

    def test_progress_callback_fires_per_cell(self):
        seen: list[str] = []
        with Session(progress=lambda result: seen.append(result.cell.cell_id)) as session:
            results = session.language_results("julia")
        assert seen == [result.cell.cell_id for result in results]


class TestSessionArtefacts:
    def test_table_matches_legacy_wrapper(self):
        with Session() as session:
            report = session.table(5)
        with pytest.warns(DeprecationWarning):
            legacy = experiments.run_table(5)
        assert report.experiment_id == legacy.experiment_id == "table5"
        assert report.text == legacy.text
        assert report.data["records"] == legacy.data["records"]

    def test_figure_and_overall(self):
        with Session() as session:
            fig = session.figure(3)
            overall = session.figure(6)
        assert fig.experiment_id == "figure3"
        assert fig.comparison is not None
        assert overall.experiment_id == "figure6"
        assert overall.summary_line().endswith("done")

    def test_table_and_figure_unknown_numbers(self):
        with Session() as session:
            with pytest.raises(KeyError):
                session.table(7)
            with pytest.raises(KeyError):
                session.figure(9)

    def test_ablation_dispatch(self):
        with Session() as session:
            report = session.ablation("suggestions", counts=(1, 10))
            assert set(report.data["means"]) == {1, 10}
            with pytest.raises(KeyError):
                session.ablation("nonexistent")

    def test_ablation_points_reuse_cached_default_run(self):
        with Session() as session:
            default_cpp = session.language_results("cpp")
            session.ablation("suggestions", counts=(10,))
            budget10 = session.language_results("cpp", config=CodexConfig(max_suggestions=10))
            assert budget10 is default_cpp


class TestSpecRunsAndSweeps:
    def test_full_spec_run_equals_full_results(self):
        with Session() as session:
            spec_run = session.run(ExperimentSpec())
            assert spec_run.to_records() == session.full_results().to_records()

    def test_restricted_spec_runs_directly(self):
        spec = ExperimentSpec(languages=("julia",), kernels=("axpy", "gemv"))
        with Session() as session:
            results = session.run(spec)
        assert len(results) == len(spec.cells())
        assert all(result.cell.kernel in ("axpy", "gemv") for result in results)

    def test_sweep_returns_per_seed_sets(self):
        with Session() as session:
            swept = session.sweep([7, 8], languages=("julia",))
            assert list(swept) == [7, 8]
            assert swept[7].seed == 7
            assert swept[7].to_records() != swept[8].to_records()
            # Each seed's sweep entry matches an independent run at that seed.
            alone = session.language_results("julia", seed=7)
            assert swept[7].to_records() == alone.to_records()


class TestLegacyShim:
    def test_wrappers_emit_deprecation_warnings(self):
        for call in (
            lambda: experiments.run_language_results("julia"),
            lambda: experiments.run_table(2),
            lambda: experiments.run_figure(5),
            lambda: experiments.clear_result_cache(),
        ):
            with pytest.warns(DeprecationWarning):
                call()

    def test_wrappers_share_the_default_session_cache(self):
        with pytest.warns(DeprecationWarning):
            legacy = experiments.run_language_results("julia")
        assert default_session().language_results("julia") is legacy

    def test_legacy_cache_internals_mirror_default_session(self):
        from repro.harness.experiments import _RESULT_CACHE, _RESULT_CACHE_MAX, _cache_put

        assert _RESULT_CACHE is default_session()._cache
        assert _RESULT_CACHE_MAX == default_session()._cache_max
        _cache_put((1, "x", "f"), ResultSet(seed=1))
        assert (1, "x", "f") in default_session()._cache

    def test_reset_default_session_isolates(self):
        first = default_session()
        first.language_results("julia")
        fresh = reset_default_session()
        assert fresh is not first
        assert not fresh._cache
        assert default_session() is fresh
