"""Tests for the resumable distributed shard driver (:mod:`repro.dispatch`).

The tentpole guarantees:

* every dispatch backend (``inline``, ``process``, ``file-queue``) merges to
  records byte-identical to the unsharded run;
* a driver re-run against the same :class:`ResultStore` re-executes **zero**
  completed shards (killed runs resume instead of recomputing);
* streamed merges and callbacks follow the
  :class:`~repro.core.runner.EvaluationRunner` submission-order contract;
* file-queue workers validate tasks (config fingerprint, grid digest) and
  results before anything enters a merge.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.analyzer import clear_verdict_memo
from repro.api import ExperimentSpec, Session
from repro.codex.config import DEFAULT_SEED
from repro.dispatch import FileQueue, ResultStore, ShardDriver, drain_queue


@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))


@pytest.fixture(scope="module")
def expected_records(spec):
    with Session(seed=DEFAULT_SEED) as session:
        return session.run(spec).to_records()


# ---------------------------------------------------------------------------
# Inline backend: identity, resume, ordering
# ---------------------------------------------------------------------------

class TestInlineDispatch:
    def test_cold_dispatch_is_byte_identical(self, spec, expected_records, tmp_path):
        report = ShardDriver(spec, shards=4, result_store=tmp_path / "store").run()
        assert report.complete
        assert len(report.executed) == 4 and not report.skipped
        assert report.result().to_records() == expected_records

    def test_warm_rerun_executes_zero_shards(self, spec, expected_records, tmp_path):
        store = tmp_path / "store"
        ShardDriver(spec, shards=4, result_store=store).run()
        warm = ShardDriver(spec, shards=4, result_store=ResultStore(store)).run()
        assert warm.complete
        assert len(warm.skipped) == 4 and not warm.executed
        assert warm.result().to_records() == expected_records
        assert warm.sandbox_executions == 0

    def test_killed_run_resumes_without_reexecution(self, spec, expected_records, tmp_path):
        store = tmp_path / "store"
        partial = ShardDriver(spec, shards=4, result_store=store, max_shards=2).run()
        assert not partial.complete
        assert len(partial.executed) == 2
        with pytest.raises(ValueError, match="incomplete"):
            partial.result()
        # The partial merge holds exactly the completed prefix, canonically.
        partial_records = partial.results[DEFAULT_SEED].to_records()
        assert partial_records == expected_records[: len(partial_records)]
        resumed = ShardDriver(spec, shards=4, result_store=ResultStore(store)).run()
        assert resumed.complete
        assert len(resumed.skipped) == 2 and len(resumed.executed) == 2
        assert resumed.result().to_records() == expected_records

    def test_budget_exhaustion_still_reports_later_store_hits(
        self, spec, expected_records, tmp_path
    ):
        # Pre-populate only the LAST shard, then run with a budget of 1:
        # the driver executes shard 0, skips shards 1-2 (budget spent), but
        # must still surface shard 3's store hit in the report and partial
        # merge — it is already done, whatever the budget says.
        store = ResultStore(tmp_path / "store")
        shards = spec.partition(4)
        with Session(seed=DEFAULT_SEED) as session:
            store.put(shards[3].entry(), session.run(shards[3]))
        report = ShardDriver(
            spec, shards=4, result_store=ResultStore(tmp_path / "store"), max_shards=1
        ).run()
        assert not report.complete
        assert len(report.executed) == 1 and len(report.skipped) == 1
        assert [o.entry.start for o in report.outcomes] == [
            shards[0].start, shards[3].start
        ]
        partial = report.results[DEFAULT_SEED].to_records()
        expected = (
            expected_records[shards[0].start : shards[0].stop]
            + expected_records[shards[3].start : shards[3].stop]
        )
        assert partial == expected

    def test_store_writes_happen_before_callbacks(self, spec, tmp_path):
        # The crash window must never lose a finished shard: by the time
        # on_shard announces it, the payload is already on disk.
        store = ResultStore(tmp_path / "store")
        seen_on_disk: list[bool] = []
        driver = ShardDriver(
            spec,
            shards=2,
            result_store=store,
            on_shard=lambda o: seen_on_disk.append(store.get(o.entry) is not None),
        )
        driver.run()
        assert seen_on_disk == [True, True]

    def test_dispatch_without_a_store_still_works(self, spec, expected_records):
        report = ShardDriver(spec, shards=3).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_callbacks_fire_in_submission_order(self, spec, tmp_path):
        cells: list = []
        shards_seen: list[tuple[int, int]] = []
        ShardDriver(
            spec,
            shards=4,
            progress=lambda result: cells.append(result.cell),
            on_shard=lambda o: shards_seen.append((o.entry.start, o.entry.stop)),
        ).run()
        assert shards_seen == sorted(shards_seen)
        assert cells == spec.cells()
        # A warm run streams the same cells in the same order from the store.
        store = tmp_path / "store"
        ShardDriver(spec, shards=4, result_store=store).run()
        warm_cells: list = []
        ShardDriver(
            spec, shards=4, result_store=store,
            progress=lambda result: warm_cells.append(result.cell),
        ).run()
        assert warm_cells == spec.cells()

    def test_invalid_arguments_rejected(self, spec):
        with pytest.raises(ValueError):
            ShardDriver(spec, backend="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardDriver(spec, shards=0)
        with pytest.raises(ValueError):
            ShardDriver(spec, backend="file-queue")  # queue directory missing
        with pytest.raises(ValueError):
            ShardDriver(spec, max_shards=-1)


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

class TestProcessDispatch:
    def test_process_dispatch_is_byte_identical(self, spec, expected_records):
        report = ShardDriver(spec, shards=4, backend="process", max_workers=2).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_process_resume_skips_completed_shards(self, spec, expected_records, tmp_path):
        store = tmp_path / "store"
        ShardDriver(spec, shards=4, result_store=store, max_shards=3).run()
        resumed = ShardDriver(
            spec, shards=4, backend="process", max_workers=2, result_store=ResultStore(store)
        ).run()
        assert resumed.complete
        assert len(resumed.skipped) == 3 and len(resumed.executed) == 1
        assert resumed.result().to_records() == expected_records

    def test_process_counters_cross_the_boundary(self):
        # Python cells execute in the sandbox inside pool workers; the
        # driver's report must still see those executions.
        spec = ExperimentSpec(
            seeds=(DEFAULT_SEED,), languages=("python",), kernels=("axpy",)
        )
        clear_verdict_memo()
        report = ShardDriver(spec, shards=2, backend="process", max_workers=2).run()
        assert report.complete
        assert report.sandbox_executions > 0


# ---------------------------------------------------------------------------
# File-queue backend
# ---------------------------------------------------------------------------

class TestFileQueueDispatch:
    def test_driver_drains_its_own_queue(self, spec, expected_records, tmp_path):
        report = ShardDriver(
            spec, shards=3, backend="file-queue", queue=tmp_path / "q"
        ).run()
        assert report.complete
        assert len(report.executed) == 3
        assert report.result().to_records() == expected_records
        # Every task claimed and completed; nothing pending.
        queue = FileQueue(tmp_path / "q")
        assert queue.pending() == []
        assert len(list(queue.results_dir.glob("*.json"))) == 3

    def test_queue_progress_fires_once_per_cell(self, spec, tmp_path):
        # Locally-claimed queue shards stream progress live through their
        # runner; the completion hook must not deliver the cells again.
        cells: list = []
        ShardDriver(
            spec, shards=2, backend="file-queue", queue=tmp_path / "q",
            progress=lambda result: cells.append(result.cell),
        ).run()
        assert cells == spec.cells()

    def test_predrained_queue_is_consumed_without_execution(
        self, spec, expected_records, tmp_path
    ):
        queue = FileQueue(tmp_path / "q")
        for shard in spec.partition(3):
            assert queue.publish(shard)
            assert not queue.publish(shard)  # idempotent
        assert drain_queue(queue) == 3  # "the remote host"
        report = ShardDriver(
            spec, shards=3, backend="file-queue", queue=queue, max_shards=0,
            result_store=tmp_path / "store",
        ).run()
        assert report.complete
        assert len(report.remote) == 3 and not report.executed
        assert report.result().to_records() == expected_records
        # Remote payloads were persisted: a later run resumes from the store.
        warm = ShardDriver(
            spec, shards=3, backend="file-queue", queue=tmp_path / "q2",
            result_store=tmp_path / "store",
        ).run()
        assert len(warm.skipped) == 3

    def test_corrupt_result_payload_is_reexecuted(self, spec, expected_records, tmp_path):
        queue = FileQueue(tmp_path / "q")
        shards = spec.partition(2)
        for shard in shards:
            queue.publish(shard)
        drain_queue(queue)
        # Garble one result and swap another shard's payload in whole — both
        # must be detected and re-evaluated, never merged.
        names = [queue.task_name(shard) for shard in shards]
        (queue.results_dir / f"{names[0]}.json").write_text("truncated {")
        payloads = [queue.result(name) for name in names]
        assert payloads[0] is None  # corrupt file dropped on read
        doctored = {
            **payloads[1],
            "entry": {
                **payloads[1]["entry"],
                "index": 0,
                "cell_slice": [0, len(spec.cells()) // 2],
            },
        }
        queue.complete(names[1], doctored)
        report = ShardDriver(spec, shards=2, backend="file-queue", queue=queue).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_stale_claims_are_requeued(self, spec, tmp_path):
        queue = FileQueue(tmp_path / "q")
        shards = spec.partition(2)
        for shard in shards:
            queue.publish(shard)
        # A "crashed worker": claims a task, never completes it.
        assert queue.claim_next() is not None
        assert len(queue.pending()) == 1
        assert queue.requeue_stale(0.0) == 1
        assert len(queue.pending()) == 2

    def test_worker_refuses_foreign_fingerprint_tasks(self, spec, tmp_path):
        queue = FileQueue(tmp_path / "q")
        shard = spec.partition(2)[0]
        queue.publish(shard)
        name = queue.task_name(shard)
        task_path = queue.tasks_dir / f"{name}.json"
        descriptor = json.loads(task_path.read_text())
        descriptor["spec"]["fingerprint"] = "f" * 16
        task_path.write_text(json.dumps(descriptor))
        with pytest.warns(UserWarning, match="fingerprint"):
            assert drain_queue(queue) == 0
        # The task was released, not destroyed: a worker with the right
        # config could still take it.
        assert queue.pending() == [name]

    def test_worker_refuses_foreign_grid_tasks(self, spec, tmp_path):
        queue = FileQueue(tmp_path / "q")
        shard = spec.partition(2)[0]
        queue.publish(shard)
        task_path = queue.tasks_dir / f"{queue.task_name(shard)}.json"
        descriptor = json.loads(task_path.read_text())
        descriptor["grid"] = "g" * 16
        task_path.write_text(json.dumps(descriptor))
        with pytest.warns(UserWarning, match="grid"):
            assert drain_queue(queue) == 0

    def test_poison_task_does_not_starve_valid_tasks(self, spec, tmp_path):
        # One foreign task (first in name order) must not wedge the worker:
        # it is refused once and the valid tasks behind it still drain.
        queue = FileQueue(tmp_path / "q")
        for shard in spec.partition(2):
            queue.publish(shard)
        poison = queue.pending()[0]
        task_path = queue.tasks_dir / f"{poison}.json"
        descriptor = json.loads(task_path.read_text())
        descriptor["spec"]["fingerprint"] = "f" * 16
        task_path.write_text(json.dumps(descriptor))
        with pytest.warns(UserWarning, match="fingerprint"):
            assert drain_queue(queue) == 1  # the valid task still ran
        assert queue.pending() == [poison]  # poison released, not consumed

    def test_drain_respects_max_tasks(self, spec, tmp_path):
        queue = FileQueue(tmp_path / "q")
        for shard in spec.partition(3):
            queue.publish(shard)
        assert drain_queue(queue, max_tasks=1) == 1
        assert len(queue.pending()) == 2


# ---------------------------------------------------------------------------
# Session.dispatch
# ---------------------------------------------------------------------------

class TestSessionDispatch:
    def test_session_dispatch_matches_session_run(self, spec, expected_records, tmp_path):
        with Session(seed=DEFAULT_SEED) as session:
            report = session.dispatch(spec, shards=3, result_store=tmp_path / "store")
            assert report.complete
            assert report.result().to_records() == expected_records
            # Inline shards ran on the session's pooled runners, so the
            # session-level counters kept aggregating.
            assert session.sandbox_executions == report.sandbox_executions

    def test_session_dispatch_defaults_to_the_session_grid(self):
        with Session(seed=DEFAULT_SEED) as session:
            report = session.dispatch(shards=4)
            assert report.complete
            assert report.spec.seeds == (DEFAULT_SEED,)
            assert len(report.result()) == len(report.spec.cells())

    def test_session_progress_streams_through_dispatch(self, spec, tmp_path):
        cells: list = []
        with Session(seed=DEFAULT_SEED, progress=lambda r: cells.append(r.cell)) as session:
            session.dispatch(spec, shards=2, result_store=tmp_path / "store")
        assert cells == spec.cells()

    def test_session_verdict_store_reaches_dispatch_workers(self, tmp_path):
        python_spec = ExperimentSpec(
            seeds=(DEFAULT_SEED,), languages=("python",), kernels=("axpy",)
        )
        clear_verdict_memo()
        try:
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "verdicts") as session:
                cold = session.dispatch(python_spec, shards=2)
                assert cold.complete and session.sandbox_executions > 0
            clear_verdict_memo()
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "verdicts") as session:
                warm = session.dispatch(python_spec, shards=2)
                assert warm.complete
                assert session.sandbox_executions == 0
                assert session.store_hits > 0
        finally:
            clear_verdict_memo()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCliDispatch:
    def test_dispatch_json_is_byte_identical_to_run_json(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main(["run", "--json", str(tmp_path / "full.json")]) == 0
        assert main([
            "dispatch", "--shards", "3",
            "--result-store", str(tmp_path / "store"),
            "--json", str(tmp_path / "dispatched.json"),
        ]) == 0
        capsys.readouterr()
        assert (tmp_path / "dispatched.json").read_bytes() == (tmp_path / "full.json").read_bytes()

    def test_cli_kill_resume_cycle(self, tmp_path, capsys):
        from repro.harness.cli import main

        store = str(tmp_path / "store")
        args = ["dispatch", "--shards", "4", "--languages", "julia", "--result-store", store]
        assert main(args + ["--max-shards", "2"]) == 3  # "killed" mid-run
        captured = capsys.readouterr()
        assert "PARTIAL 2/4" in captured.out
        assert "shard-writes=2" in captured.err
        assert main(args + ["--json", str(tmp_path / "out.json")]) == 0
        captured = capsys.readouterr()
        assert "executed=2 skipped=2" in captured.out
        assert "shard-hits=2" in captured.err
        assert (tmp_path / "out.json").exists()

    def test_cli_dispatch_worker_drains_queue(self, spec, tmp_path, capsys):
        from repro.harness.cli import main

        queue = FileQueue(tmp_path / "q")
        for shard in spec.partition(2):
            queue.publish(shard)
        assert main(["dispatch-worker", "--queue", str(tmp_path / "q")]) == 0
        assert "evaluated 2 task(s)" in capsys.readouterr().out
        report = ShardDriver(
            spec, shards=2, backend="file-queue", queue=queue, max_shards=0
        ).run()
        assert report.complete and len(report.remote) == 2
