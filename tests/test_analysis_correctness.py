"""Tests for the per-language correctness checkers and the combined analyzer."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_suggestion, clike, fortranlang, julialang, pythonlang
from repro.analysis.analyzer import SuggestionAnalyzer
from repro.corpus.mutations import apply_mutation
from repro.corpus.snippets import CodeSnippet, SnippetOrigin
from repro.corpus.templates import get_template, iter_templates
from repro.kernels.registry import KERNEL_NAMES


def _static_issues(language: str, kernel: str, code: str) -> list[str] | None:
    if language == "cpp":
        return clike.check_structure(code) + clike.check_kernel_semantics(code, kernel)
    if language == "fortran":
        return fortranlang.check_structure(code) + fortranlang.check_kernel_semantics(code, kernel)
    if language == "julia":
        return julialang.check_structure(code) + julialang.check_kernel_semantics(code, kernel)
    return None


class TestTemplatesPassTheirCheckers:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_cpp_templates_pass(self, kernel):
        for model in ("openmp", "openmp_offload", "openacc", "kokkos", "cuda", "hip", "thrust", "sycl"):
            code = get_template("cpp", model, kernel)
            assert _static_issues("cpp", kernel, code) == [], (model, kernel)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_fortran_templates_pass(self, kernel):
        for model in ("openmp", "openmp_offload", "openacc"):
            code = get_template("fortran", model, kernel)
            assert _static_issues("fortran", kernel, code) == [], (model, kernel)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_julia_templates_pass(self, kernel):
        for model in ("threads", "cuda", "amdgpu", "kernelabstractions"):
            code = get_template("julia", model, kernel)
            assert _static_issues("julia", kernel, code) == [], (model, kernel)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_python_templates_pass_static_checks(self, kernel):
        for model in ("numpy", "numba", "cupy", "pycuda"):
            code = get_template("python", model, kernel)
            assert pythonlang.check_structure(code) == [], (model, kernel)
            assert pythonlang.undefined_call_names(code) == set(), (model, kernel)


class TestCheckersCatchRepresentativeBugs:
    def test_cpp_sign_flip_is_caught(self):
        code = get_template("cpp", "openmp", "axpy").replace("+ y[i]", "- y[i]")
        assert _static_issues("cpp", "axpy", code)

    def test_cpp_off_by_one_is_caught(self):
        code = get_template("cpp", "openmp", "gemv").replace("int i = 0", "int i = 1")
        assert _static_issues("cpp", "gemv", code)

    def test_cpp_inclusive_guard_is_caught(self):
        code = get_template("cpp", "cuda", "axpy").replace("if (i < n)", "if (i <= n)")
        assert _static_issues("cpp", "axpy", code)

    def test_cpp_broken_thread_index_is_caught(self):
        code = get_template("cpp", "cuda", "gemm").replace(
            "blockIdx.y * blockDim.y + threadIdx.y", "blockIdx.y * blockDim.y - threadIdx.y"
        )
        assert _static_issues("cpp", "gemm", code)

    def test_cpp_truncation_is_caught(self):
        code = get_template("cpp", "openmp", "cg")
        truncated = "\n".join(code.splitlines()[: len(code.splitlines()) // 2])
        assert clike.check_structure(truncated)

    def test_fortran_sign_flip_is_caught(self):
        code = get_template("fortran", "openmp", "axpy").replace("+ y(i)", "- y(i)")
        assert _static_issues("fortran", "axpy", code)

    def test_fortran_bounds_are_checked(self):
        code = get_template("fortran", "openacc", "gemm").replace("do i = 1, m", "do i = 0, m")
        assert _static_issues("fortran", "gemm", code)

    def test_fortran_missing_end_do_is_caught(self):
        code = get_template("fortran", "openmp", "gemv").replace("    end do\n", "", 1)
        assert fortranlang.check_structure(code)

    def test_julia_sign_flip_is_caught(self):
        code = get_template("julia", "threads", "axpy").replace("+ y[i]", "- y[i]")
        assert _static_issues("julia", "axpy", code)

    def test_julia_zero_based_range_is_caught(self):
        code = get_template("julia", "threads", "gemv").replace("in 1:m", "in 0:m")
        assert _static_issues("julia", "gemv", code)

    def test_julia_unbalanced_end_is_caught(self):
        code = get_template("julia", "cuda", "axpy").replace("    return nothing\nend", "    return nothing", 1)
        assert julialang.check_structure(code)

    def test_julia_broken_thread_index_is_caught(self):
        code = get_template("julia", "cuda", "gemv").replace(
            "* blockDim().x + threadIdx().x", "* blockDim().x - threadIdx().x"
        )
        assert _static_issues("julia", "gemv", code)

    def test_python_syntax_error_is_caught(self):
        assert pythonlang.check_structure("def axpy(a, x, y)\n    return a * x + y\n")

    def test_python_missing_function_is_caught(self):
        assert pythonlang.check_structure("import numpy as np\nresult = 1\n")

    def test_python_unknown_import_is_caught(self):
        issues = pythonlang.check_structure("import torch\n\ndef axpy(a, x, y):\n    return a * x + y\n")
        assert any("torch" in issue for issue in issues)

    def test_python_undefined_call_is_caught(self):
        undefined = pythonlang.undefined_call_names(
            "def axpy(a, x, y):\n    return axpy_helper(a, x, y)\n"
        )
        assert undefined == {"axpy_helper"}

    def test_python_entry_function_resolution(self):
        code = get_template("python", "numba", "cg")
        assert pythonlang.find_entry_function(code, "cg") == "cg"
        assert pythonlang.find_entry_function("def solve(A, b):\n    return b\n", "cg") == "solve"
        assert pythonlang.find_entry_function("x = 3\n", "cg") is None

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            clike.check_kernel_semantics("int x;", "fft")
        with pytest.raises(KeyError):
            fortranlang.check_kernel_semantics("x", "fft")
        with pytest.raises(KeyError):
            julialang.check_kernel_semantics("x", "fft")


class TestAnalyzerVerdicts:
    def test_templates_are_correct_for_their_own_model(self, analyzer):
        for language, model_short, kernel, code in iter_templates():
            verdict = analyzer.analyze(
                code, language=language, kernel=kernel, requested_model=f"{language}.{model_short}"
            )
            assert verdict.is_correct, (language, model_short, kernel, verdict.issues)

    def test_other_model_template_is_flagged_as_other_model(self, analyzer):
        code = get_template("cpp", "openacc", "axpy")
        verdict = analyzer.analyze(
            code, language="cpp", kernel="axpy", requested_model="cpp.openmp"
        )
        assert verdict.math_correct
        assert not verdict.uses_requested_model
        assert verdict.uses_other_model
        assert not verdict.is_correct

    def test_non_code_suggestion(self, analyzer):
        verdict = analyzer.analyze(
            "// AXPY implementation\n// TODO\n",
            language="cpp",
            kernel="axpy",
            requested_model="cpp.openmp",
        )
        assert not verdict.is_code
        assert not verdict.is_correct
        assert verdict.summary() == "no code"

    def test_serial_code_is_not_other_model(self, analyzer):
        serial = (
            "void axpy(int n, double a, const double *x, double *y) {\n"
            "    for (int i = 0; i < n; i++) {\n        y[i] = a * x[i] + y[i];\n    }\n}\n"
        )
        verdict = analyzer.analyze(
            serial, language="cpp", kernel="axpy", requested_model="cpp.openmp"
        )
        assert verdict.math_correct
        assert not verdict.uses_requested_model
        assert not verdict.uses_other_model

    def test_python_execution_catches_numerical_bug(self, analyzer):
        broken = "import numpy as np\n\ndef axpy(a, x, y):\n    return a * x - y\n"
        verdict = analyzer.analyze(
            broken, language="python", kernel="axpy", requested_model="python.numpy"
        )
        assert verdict.method == "executed"
        assert not verdict.math_correct

    def test_static_only_analyzer_skips_execution(self):
        static_analyzer = SuggestionAnalyzer(execute_python=False)
        code = get_template("python", "numpy", "axpy")
        verdict = static_analyzer.analyze(
            code, language="python", kernel="axpy", requested_model="python.numpy"
        )
        assert verdict.method == "static"
        assert verdict.is_correct

    def test_custom_python_executor_is_used(self):
        calls = []

        def executor(code: str, kernel: str) -> tuple[bool, list[str]]:
            calls.append(kernel)
            return False, ["nope"]

        custom = SuggestionAnalyzer(python_executor=executor)
        verdict = custom.analyze(
            get_template("python", "numpy", "gemv"),
            language="python",
            kernel="gemv",
            requested_model="python.numpy",
        )
        assert calls == ["gemv"]
        assert not verdict.math_correct
        assert "nope" in verdict.issues

    def test_analyzer_cache_returns_equal_verdicts(self, analyzer):
        # Memoized analyses return value-equal verdicts; each caller gets its
        # own copy so mutations cannot poison the process-wide memo.
        code = get_template("cpp", "openmp", "axpy")
        first = analyzer.analyze(code, language="cpp", kernel="axpy", requested_model="cpp.openmp")
        second = analyzer.analyze(code, language="cpp", kernel="axpy", requested_model="cpp.openmp")
        assert first == second
        assert first is not second

    def test_module_level_helper(self):
        verdict = analyze_suggestion(
            get_template("julia", "threads", "axpy"),
            language="julia",
            kernel="axpy",
            requested_model="julia.threads",
        )
        assert verdict.is_correct

    def test_mutation_catch_rate_is_high(self, analyzer, corpus):
        total = 0
        caught = 0
        for snippet in corpus:
            if snippet.origin is not SnippetOrigin.MUTATION:
                continue
            if snippet.mutation == "drop_parallelism":
                continue  # serial code is judged on model usage, not math
            requested = f"{snippet.language}.{snippet.metadata['model_short']}"
            verdict = analyzer.analyze(
                snippet.code,
                language=snippet.language,
                kernel=snippet.kernel,
                requested_model=requested,
            )
            total += 1
            if not verdict.is_correct:
                caught += 1
        assert total > 300
        assert caught / total >= 0.9

    def test_drop_parallelism_mutations_never_count_as_correct(self, analyzer, corpus):
        for snippet in corpus:
            if snippet.mutation != "drop_parallelism":
                continue
            requested = f"{snippet.language}.{snippet.metadata['model_short']}"
            verdict = analyzer.analyze(
                snippet.code,
                language=snippet.language,
                kernel=snippet.kernel,
                requested_model=requested,
            )
            assert not verdict.is_correct

    def test_comment_only_mutation_is_no_code(self, analyzer):
        template = CodeSnippet(
            code=get_template("cpp", "cuda", "spmv"),
            language="cpp",
            kernel="spmv",
            label_model="cpp.cuda",
            label_correct=True,
        )
        non_code = apply_mutation(template, "comment_only")
        verdict = analyzer.analyze(
            non_code.code, language="cpp", kernel="spmv", requested_model="cpp.cuda"
        )
        assert not verdict.is_code
