"""Tests for programming-model detection and the lexical helpers."""

from __future__ import annotations

import pytest

from repro.analysis.detection import detect_models, primary_model
from repro.analysis.lexical import (
    balanced_delimiters,
    extract_call_names,
    extract_identifiers,
    normalize_whitespace,
    strip_c_comments,
    strip_line_comments,
    strip_string_literals,
)
from repro.corpus.templates import get_template, iter_templates
from repro.models.programming_models import PROGRAMMING_MODELS


class TestLexicalHelpers:
    def test_strip_c_comments_keeps_pragmas(self):
        code = "// comment\n#pragma omp parallel for\nint x; /* block */\n"
        cleaned = strip_c_comments(code)
        assert "#pragma omp" in cleaned
        assert "comment" not in cleaned
        assert "block" not in cleaned

    def test_strip_line_comments_keeps_fortran_directives(self):
        code = "! a comment\n!$omp parallel do\ndo i = 1, n\n"
        cleaned = strip_line_comments(code, "!")
        assert "!$omp parallel do" in cleaned
        assert "a comment" not in cleaned

    def test_strip_string_literals(self):
        cleaned = strip_string_literals('call("some + text", other)')
        assert "some + text" not in cleaned
        assert "other" in cleaned

    def test_balanced_delimiters(self):
        assert balanced_delimiters("{ ( [ ] ) }")
        assert not balanced_delimiters("{ ( ) ")
        assert not balanced_delimiters(") (")

    def test_extract_call_names(self):
        calls = extract_call_names("foo(1); Kokkos::parallel_for(n); bar [i]")
        assert "foo" in calls
        assert "Kokkos::parallel_for" in calls
        assert "bar" not in calls

    def test_extract_identifiers(self):
        idents = extract_identifiers("alpha = beta_2 * 3;")
        assert {"alpha", "beta_2"} <= idents

    def test_normalize_whitespace(self):
        assert normalize_whitespace("a\n\t b   c ") == "a b c"


class TestDetection:
    def test_every_template_detects_its_own_model(self):
        for language, model_short, kernel, code in iter_templates():
            uid = f"{language}.{model_short}"
            detected = detect_models(code, language)
            assert uid in detected, (uid, kernel, detected)

    def test_primary_model_is_most_specific(self):
        code = get_template("cpp", "openmp_offload", "axpy")
        assert primary_model(code, "cpp") == "cpp.openmp_offload"
        assert "cpp.openmp" not in detect_models(code, "cpp")

    def test_hip_not_mistaken_for_cuda(self):
        code = get_template("cpp", "hip", "gemv")
        detected = detect_models(code, "cpp")
        assert "cpp.hip" in detected
        assert "cpp.cuda" not in detected

    def test_thrust_not_mistaken_for_cuda(self):
        code = get_template("cpp", "thrust", "axpy")
        detected = detect_models(code, "cpp")
        assert detected == ("cpp.thrust",)

    def test_serial_code_detects_nothing(self):
        serial = "void axpy(int n, double a, const double *x, double *y) {\n" \
                 "  for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i];\n}"
        assert detect_models(serial, "cpp") == ()
        assert primary_model(serial, "cpp") is None

    def test_fortran_offload_shadows_plain_openmp(self):
        code = get_template("fortran", "openmp_offload", "spmv")
        detected = detect_models(code, "fortran")
        assert "fortran.openmp_offload" in detected
        assert "fortran.openmp" not in detected

    def test_python_numpy_only_without_gpu_packages(self):
        numpy_code = get_template("python", "numpy", "gemv")
        assert detect_models(numpy_code, "python") == ("python.numpy",)
        cupy_code = get_template("python", "cupy", "gemv")
        assert "python.cupy" in detect_models(cupy_code, "python")
        assert "python.numpy" not in detect_models(cupy_code, "python")

    def test_julia_amdgpu_not_mistaken_for_cuda(self):
        code = get_template("julia", "amdgpu", "axpy")
        detected = detect_models(code, "julia")
        assert "julia.amdgpu" in detected
        assert "julia.cuda" not in detected

    def test_julia_kernelabstractions_detected(self):
        code = get_template("julia", "kernelabstractions", "gemm")
        assert "julia.kernelabstractions" in detect_models(code, "julia")

    def test_unknown_language_raises(self):
        with pytest.raises(KeyError):
            detect_models("code", "rust")

    def test_detected_uids_are_registered(self):
        for language, _model, _kernel, code in iter_templates():
            for uid in detect_models(code, language):
                assert uid in PROGRAMMING_MODELS

    def test_mixed_model_code_reports_both(self):
        code = (
            "#include <omp.h>\n"
            "#pragma acc parallel loop\n"
            "void f() {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) {}\n}\n"
        )
        detected = detect_models(code, "cpp")
        assert "cpp.openmp" in detected
        assert "cpp.openacc" in detected
