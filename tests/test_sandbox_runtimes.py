"""Tests for the fake GPU/JIT runtimes, sandbox tasks and the executor."""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.corpus.templates import get_template
from repro.kernels.registry import KERNEL_NAMES
from repro.sandbox import evaluate_python_suggestion, get_task, run_python_suggestion
from repro.sandbox import fake_cupy, fake_numba
from repro.sandbox.executor import fake_runtime
from repro.sandbox.fake_pycuda import compiler, driver, gpuarray
from repro.sandbox.tasks import SandboxTask


class TestFakeNumba:
    def test_njit_returns_function_unchanged(self):
        @fake_numba.njit
        def f(x):
            return x + 1

        assert f(1) == 2

    def test_njit_with_options(self):
        @fake_numba.njit(parallel=True, fastmath=True)
        def f(x):
            return x * 2

        assert f(3) == 6

    def test_prange_is_range(self):
        assert list(fake_numba.prange(4)) == [0, 1, 2, 3]

    def test_cuda_jit_kernel_launch(self):
        @fake_numba.cuda.jit
        def kernel(out):
            i = fake_numba.cuda.grid(1)
            if i < out.shape[0]:
                out[i] = i

        out = np.zeros(8)
        kernel[1, 8](out)
        np.testing.assert_array_equal(out, np.arange(8.0))

    def test_cuda_namespace_helpers(self):
        arr = np.ones(3)
        assert fake_numba.cuda.to_device(arr) is arr
        assert fake_numba.cuda.is_available()
        fake_numba.cuda.synchronize()


class TestFakeCupy:
    def test_asarray_copies(self):
        x = np.arange(4.0)
        gpu = fake_cupy.asarray(x)
        gpu[0] = 99.0
        assert x[0] == 0.0

    def test_asnumpy_roundtrip(self):
        x = np.arange(5.0)
        np.testing.assert_array_equal(fake_cupy.asnumpy(fake_cupy.asarray(x)), x)

    def test_numpy_fallback_attributes(self):
        np.testing.assert_allclose(fake_cupy.sqrt(np.array([4.0])), [2.0])
        with pytest.raises(AttributeError):
            fake_cupy.definitely_not_a_numpy_function  # noqa: B018

    def test_raw_kernel_executes(self):
        kernel = fake_cupy.RawKernel(
            """
            extern "C" __global__
            void scale(const int n, const double a, double *y)
            {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    y[i] = a * y[i];
                }
            }
            """,
            "scale",
        )
        y = np.ones(10)
        kernel((1,), (16,), (10, 3.0, y))
        np.testing.assert_allclose(y, np.full(10, 3.0))

    def test_elementwise_kernel(self):
        axpy = fake_cupy.ElementwiseKernel(
            "float64 a, float64 x, float64 y", "float64 z", "z = a * x + y", "axpy"
        )
        a = np.full(4, 2.0)
        x = np.arange(4.0)
        y = np.ones(4)
        z = np.zeros(4)
        result = axpy(a, x, y, z)
        np.testing.assert_allclose(result, 2.0 * x + 1.0)


class TestFakePycuda:
    def test_source_module_and_driver_wrappers(self, rng):
        mod = compiler.SourceModule(
            """
            __global__ void axpy(const int n, const double a, const double *x, double *y)
            {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    y[i] = a * x[i] + y[i];
                }
            }
            """
        )
        func = mod.get_function("axpy")
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        expected = 1.5 * x + y
        func(np.int32(20), np.float64(1.5), driver.In(x), driver.InOut(y),
             block=(32, 1, 1), grid=(1, 1))
        np.testing.assert_allclose(y, expected)

    def test_gpuarray_roundtrip(self):
        arr = gpuarray.to_gpu(np.arange(6.0))
        assert arr.shape == (6,)
        assert arr.size == 6
        np.testing.assert_array_equal(arr.get(), np.arange(6.0))
        np.testing.assert_array_equal(np.asarray(arr), np.arange(6.0))

    def test_gpuarray_zeros(self):
        assert gpuarray.zeros(4).get().sum() == 0.0

    def test_mem_alloc_and_memcpy(self):
        allocation = driver.mem_alloc(8 * 5)
        src = np.arange(5.0)
        driver.memcpy_htod(allocation, src)
        dst = np.zeros(5)
        driver.memcpy_dtoh(dst, allocation)
        np.testing.assert_array_equal(dst, src)


class TestFakeRuntimeContext:
    def test_modules_installed_and_restored(self):
        assert "cupy" not in sys.modules or sys.modules["cupy"].__name__ != "repro.sandbox.fake_cupy"
        with fake_runtime():
            import cupy  # noqa: F401  (resolves to the fake)
            import pycuda.driver  # noqa: F401
            from numba import njit  # noqa: F401

            assert sys.modules["cupy"].__name__.endswith("fake_cupy")
        assert "pycuda" not in sys.modules or not sys.modules["pycuda"].__name__.startswith(
            "repro.sandbox"
        ) is False or True  # restored or absent


class TestSandboxTasks:
    def test_every_kernel_has_a_task(self):
        for kernel in KERNEL_NAMES:
            task = get_task(kernel)
            assert isinstance(task, SandboxTask)
            assert task.expected is not None

    def test_tasks_are_cached(self):
        assert get_task("axpy") is get_task("axpy")

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_task("fft")

    def test_fresh_args_are_copies(self):
        task = get_task("axpy")
        args_a = task.fresh_args()
        args_b = task.fresh_args()
        assert args_a[1] is not args_b[1]
        np.testing.assert_array_equal(args_a[1], args_b[1])

    def test_expected_values_match_reference_definitions(self):
        gemv = get_task("gemv")
        np.testing.assert_allclose(gemv.expected, gemv.args[0] @ gemv.args[1])
        cg = get_task("cg")
        np.testing.assert_allclose(cg.args[0] @ cg.expected, cg.args[1], rtol=1e-8)


class TestExecutor:
    @pytest.mark.parametrize("model", ["numpy", "numba", "cupy", "pycuda"])
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_all_python_templates_pass(self, model, kernel):
        code = get_template("python", model, kernel)
        result = evaluate_python_suggestion(code, kernel)
        assert result.passed, (model, kernel, result.issues)

    def test_numerically_wrong_code_fails(self):
        code = "import numpy as np\n\ndef gemv(A, x):\n    return A.T @ x\n"
        result = evaluate_python_suggestion(code, "gemv")
        assert not result.passed
        assert any("mismatch" in issue for issue in result.issues)

    def test_exception_in_function_is_reported(self):
        code = "def axpy(a, x, y):\n    raise RuntimeError('boom')\n"
        result = evaluate_python_suggestion(code, "axpy")
        assert not result.passed
        assert any("boom" in issue for issue in result.issues)

    def test_missing_entry_point_is_reported(self):
        result = evaluate_python_suggestion("x = 41\n", "axpy")
        assert not result.passed
        assert any("entry point" in issue for issue in result.issues)

    def test_module_level_crash_is_reported(self):
        code = "import numpy as np\nraise ValueError('bad import time')\n\ndef axpy(a, x, y):\n    return y\n"
        result = evaluate_python_suggestion(code, "axpy")
        assert not result.passed

    def test_function_returning_none_fails(self):
        code = "def axpy(a, x, y):\n    pass\n"
        result = evaluate_python_suggestion(code, "axpy")
        assert not result.passed
        assert any("None" in issue for issue in result.issues)

    def test_run_python_suggestion_returns_output(self):
        code = get_template("python", "numpy", "axpy")
        result = run_python_suggestion(code, "axpy")
        assert result.passed
        assert result.entry_point == "axpy"
        assert result.output is not None
