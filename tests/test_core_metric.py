"""Tests for the proficiency rubric, evaluator, runner, aggregation and comparison."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verdict import SuggestionVerdict
from repro.core.aggregate import (
    kernel_averages,
    language_averages,
    model_averages,
    overall_average,
    postfix_effect,
)
from repro.core.compare import compare_to_paper, spearman_rank_correlation
from repro.core.paper_reference import PAPER_TABLES, paper_cells, paper_score, paper_table
from repro.core.proficiency import ProficiencyLevel, classify_verdicts, score_label
from repro.core.report import format_bar_chart, format_score, format_table, side_by_side
from repro.kernels.registry import KERNEL_NAMES
from repro.models.grid import ExperimentCell
from repro.models.languages import language_names
from repro.models.programming_models import models_for_language


def _verdict(correct=True, other=False, code=True, requested=True, math=None) -> SuggestionVerdict:
    math_correct = correct if math is None else math
    return SuggestionVerdict(
        is_code=code,
        detected_models=("cpp.openacc",) if other else (("cpp.openmp",) if requested else ()),
        uses_requested_model=requested and code,
        uses_other_model=other,
        math_correct=math_correct and code,
    )


class TestRubric:
    def test_empty_suggestion_list_is_non_knowledge(self):
        assert classify_verdicts([]) is ProficiencyLevel.NON_KNOWLEDGE

    def test_no_correct_code_is_non_knowledge(self):
        verdicts = [_verdict(correct=False), _verdict(correct=False, other=True)]
        assert classify_verdicts(verdicts) is ProficiencyLevel.NON_KNOWLEDGE

    def test_single_correct_suggestion_is_expert(self):
        assert classify_verdicts([_verdict()]) is ProficiencyLevel.EXPERT

    def test_all_correct_is_proficient(self):
        assert classify_verdicts([_verdict(), _verdict(), _verdict()]) is ProficiencyLevel.PROFICIENT

    def test_correct_plus_incorrect_same_model_is_learner(self):
        verdicts = [_verdict(), _verdict(correct=False, math=False)]
        assert classify_verdicts(verdicts) is ProficiencyLevel.LEARNER

    def test_correct_plus_other_model_is_novice(self):
        verdicts = [_verdict(), _verdict(correct=False, other=True)]
        assert classify_verdicts(verdicts) is ProficiencyLevel.NOVICE

    def test_other_model_even_if_mathematically_correct_is_novice(self):
        verdicts = [_verdict(), SuggestionVerdict(
            is_code=True, detected_models=("cpp.openacc",),
            uses_requested_model=False, uses_other_model=True, math_correct=True,
        )]
        assert classify_verdicts(verdicts) is ProficiencyLevel.NOVICE

    def test_non_code_extra_suggestion_keeps_learner(self):
        verdicts = [_verdict(), SuggestionVerdict(is_code=False)]
        assert classify_verdicts(verdicts) is ProficiencyLevel.LEARNER

    def test_levels_have_expected_values(self):
        assert float(ProficiencyLevel.NOVICE.value) == 0.25
        assert ProficiencyLevel.from_score(0.5) is ProficiencyLevel.LEARNER
        assert score_label(0.75) == "proficient"
        with pytest.raises(ValueError):
            ProficiencyLevel.from_score(0.3)

    @given(st.lists(st.sampled_from(["correct", "incorrect", "other", "noncode"]), max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_property_rubric_is_total_and_consistent(self, kinds):
        verdicts = []
        for kind in kinds:
            if kind == "correct":
                verdicts.append(_verdict())
            elif kind == "incorrect":
                verdicts.append(_verdict(correct=False, math=False))
            elif kind == "other":
                verdicts.append(_verdict(correct=False, other=True))
            else:
                verdicts.append(SuggestionVerdict(is_code=False))
        level = classify_verdicts(verdicts)
        assert level in ProficiencyLevel
        has_correct = any(v.is_correct for v in verdicts)
        assert (level is ProficiencyLevel.NON_KNOWLEDGE) == (not has_correct)
        if level in (ProficiencyLevel.NOVICE,):
            assert any(v.uses_other_model for v in verdicts)


class TestEvaluatorAndRunner:
    def test_cell_result_fields(self, evaluator):
        cell = ExperimentCell(language="cpp", model="cpp.openmp", kernel="axpy", use_postfix=True)
        result = evaluator.evaluate_cell(cell)
        assert result.score in (0.0, 0.25, 0.5, 0.75, 1.0)
        assert result.n_suggestions == len(result.verdicts)
        assert 0 <= result.n_correct <= result.n_suggestions
        record = result.to_record()
        assert record["model"] == "cpp.openmp"
        assert record["level"] == result.level.label

    def test_evaluate_explicit_suggestions(self, evaluator):
        from repro.corpus.templates import get_template

        cell = ExperimentCell(language="cpp", model="cpp.cuda", kernel="axpy", use_postfix=False)
        correct = get_template("cpp", "cuda", "axpy")
        result = evaluator.evaluate_suggestions(cell, (correct,))
        assert result.level is ProficiencyLevel.EXPERT
        result2 = evaluator.evaluate_suggestions(cell, (correct, correct))
        assert result2.level is ProficiencyLevel.PROFICIENT

    def test_full_grid_covers_every_cell(self, full_results):
        assert len(full_results) == 204
        languages = {r.cell.language for r in full_results}
        assert languages == set(language_names())

    def test_scores_are_valid_rubric_values(self, full_results):
        assert set(full_results.scores()) <= {0.0, 0.25, 0.5, 0.75, 1.0}

    def test_result_lookup_and_filter(self, full_results):
        value = full_results.score("cpp.openmp", "axpy", use_postfix=True)
        assert value in (0.0, 0.25, 0.5, 0.75, 1.0)
        subset = full_results.filter(language="julia")
        assert len(subset) == 24
        with pytest.raises(KeyError):
            full_results.score("cpp.openmp", "fft", use_postfix=False)

    def test_runs_are_reproducible(self, full_results, evaluator):
        from repro.core.runner import EvaluationRunner

        rerun = EvaluationRunner(seed=full_results.seed, evaluator=evaluator).run_language("julia")
        for result in rerun:
            assert result.score == full_results.score(
                result.cell.model, result.cell.kernel, use_postfix=result.cell.use_postfix
            )


class TestAggregation:
    def test_kernel_averages_cover_all_kernels(self, full_results):
        averages = kernel_averages(full_results)
        assert tuple(averages) == KERNEL_NAMES
        assert all(0.0 <= v <= 1.0 for v in averages.values())

    def test_complexity_trend(self, full_results):
        averages = kernel_averages(full_results)
        assert averages["axpy"] == max(averages.values())
        assert averages["cg"] <= averages["axpy"] / 2

    def test_model_averages_per_language(self, full_results):
        for language in language_names():
            averages = model_averages(full_results, language)
            assert len(averages) == len(models_for_language(language))

    def test_language_averages_and_overall(self, full_results):
        languages = language_averages(full_results)
        assert set(languages) == set(language_names())
        overall = overall_average(full_results)
        assert 0.05 <= overall <= 0.5  # around the novice band, as in the paper

    def test_postfix_effect_positive_for_fortran_and_python(self, full_results):
        assert postfix_effect(full_results, "fortran")["delta"] > 0
        assert postfix_effect(full_results, "python")["delta"] > 0
        assert postfix_effect(full_results, "julia")["delta"] == 0.0


class TestPaperReference:
    def test_tables_have_expected_shapes(self):
        assert len(paper_table("cpp", use_postfix=False)) == 8
        assert len(paper_table("fortran", use_postfix=True)) == 3
        assert len(paper_table("python", use_postfix=True)) == 4
        assert len(paper_table("julia", use_postfix=False)) == 4
        with pytest.raises(KeyError):
            paper_table("julia", use_postfix=True)

    def test_known_values_from_the_paper(self):
        assert paper_score("cpp.openmp", "axpy", use_postfix=False) == 0.75
        assert paper_score("cpp.cuda", "gemm", use_postfix=True) == 0.0
        assert paper_score("fortran.openmp", "spmv", use_postfix=True) == 0.5
        assert paper_score("python.numpy", "cg", use_postfix=True) == 0.75
        assert paper_score("julia.amdgpu", "spmv", use_postfix=False) == 0.25

    def test_no_cell_reaches_expert(self):
        for table in PAPER_TABLES.values():
            for row in table.values():
                assert all(score < 1.0 for score in row.values())

    def test_all_scores_are_rubric_values(self):
        for (language, use_postfix) in PAPER_TABLES:
            for _model, _kernel, score in paper_cells(language, use_postfix=use_postfix):
                assert score in (0.0, 0.25, 0.5, 0.75)

    def test_every_paper_cell_exists_in_the_grid(self):
        for (language, use_postfix), table in PAPER_TABLES.items():
            model_uids = {m.uid for m in models_for_language(language)}
            assert set(table) == model_uids
            for row in table.values():
                assert set(row) == set(KERNEL_NAMES)


class TestComparison:
    def test_spearman_basics(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert spearman_rank_correlation([1.0], [2.0]) == 0.0
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1])

    def test_spearman_matches_scipy(self, rng):
        import scipy.stats

        a = list(rng.standard_normal(40))
        b = list(rng.standard_normal(40))
        ours = spearman_rank_correlation(a, b)
        theirs = scipy.stats.spearmanr(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    @pytest.mark.parametrize("language", ["cpp", "fortran", "python", "julia"])
    def test_shape_agreement_with_paper(self, full_results, language):
        comparison = compare_to_paper(full_results, language)
        assert comparison.cell_rank_correlation > 0.2
        assert comparison.within_one_level >= 0.8
        assert comparison.mean_absolute_difference <= 0.3
        assert comparison.complexity_trend_holds
        assert comparison.keyword_effect_agrees
        assert comparison.cells

    def test_top_model_agreement(self, full_results):
        for language in ("cpp", "fortran", "python", "julia"):
            comparison = compare_to_paper(full_results, language)
            assert comparison.top_model_agrees, language


class TestReportRendering:
    def test_format_score(self):
        assert format_score(0.0) == "0"
        assert format_score(0.25) == "0.25"
        assert format_score(0.5) == "0.5"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["x", "1"], ["yy", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[2]
        assert len(lines) == 6

    def test_format_bar_chart(self):
        chart = format_bar_chart({"axpy": 0.75, "cg": 0.0}, title="scores", width=8)
        assert "axpy" in chart and "#" in chart
        assert "cg" in chart
        assert format_bar_chart({}) == "(no data)"

    def test_side_by_side(self):
        combined = side_by_side("a\nbb", "X\nY\nZ")
        lines = combined.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")
        assert lines[0].rstrip().endswith("X")
