"""Concurrency suite for the evaluation service.

Many clients, one server: experiment ids stay isolated per session, each
client's event stream is ordered even while experiments interleave on the
shared worker pool, final ``result`` payloads are byte-identical to
``Session.run`` for the same spec, and the bounded request queue both
refuses overflow explicitly and frees its slot on mid-run cancellation.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import ExperimentSpec, Session
from repro.codex.config import DEFAULT_SEED
from repro.service import protocol
from repro.service.client import ServiceClient, connect
from repro.service.protocol import ServiceError
from repro.service.server import ServerThread

SPEC = dict(seed=DEFAULT_SEED, languages=["julia"], kernels=["axpy", "gemv"])
N_CLIENTS = 4


@pytest.fixture(scope="module")
def expected_records():
    with Session(seed=DEFAULT_SEED) as session:
        results = session.run(
            ExperimentSpec(
                seeds=(DEFAULT_SEED,), languages=("julia",), kernels=("axpy", "gemv")
            )
        )
    return results.to_records()


class TestConcurrentClients:
    def test_overlapping_submissions_stay_isolated_and_identical(self, expected_records):
        """N clients submit the same spec concurrently: distinct experiment
        ids, per-client-ordered streams, byte-identical results."""
        with ServerThread(workers=3, queue_limit=2 * N_CLIENTS) as handle:
            outcomes: list[dict] = [None] * N_CLIENTS
            errors: list[BaseException] = []

            def run_client(slot: int) -> None:
                try:
                    client = connect(port=handle.port)
                    try:
                        experiment = client.submit(shards=4, **SPEC)
                        final = client.wait(experiment)
                        payload = client.result(experiment)
                        outcomes[slot] = {
                            "session": client.session_id,
                            "experiment": experiment,
                            "final": final,
                            "records": payload["records"],
                            "events": list(client.events),
                        }
                    finally:
                        client.close()
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=run_client, args=(slot,))
                for slot in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert all(outcome is not None for outcome in outcomes)

        sessions = {outcome["session"] for outcome in outcomes}
        experiments = {outcome["experiment"] for outcome in outcomes}
        assert len(sessions) == N_CLIENTS, "each connection gets its own session"
        assert len(experiments) == N_CLIENTS, "each submission gets its own experiment"

        expected_bytes = json.dumps(expected_records, indent=2, sort_keys=True)
        for outcome in outcomes:
            assert outcome["final"]["state"] == "done"
            # Byte identity with the in-process run, per client.
            assert (
                json.dumps(outcome["records"], indent=2, sort_keys=True)
                == expected_bytes
            )
            self._assert_stream_ordered(outcome)

    @staticmethod
    def _assert_stream_ordered(outcome: dict) -> None:
        """One client's event stream: only its own experiment, progress
        counters strictly increasing, shards in submission order, state
        last."""
        events = outcome["events"]
        assert all(
            params["experiment_id"] == outcome["experiment"] for _, params in events
        ), "a client must never see another session's events"
        progress_done = [p["done"] for m, p in events if m == "progress"]
        assert progress_done == sorted(progress_done)
        assert len(progress_done) == 8  # one per cell
        shard_entries = [p["entry"]["cell_slice"] for m, p in events if m == "shard"]
        assert shard_entries == sorted(shard_entries), "shards arrive in submission order"
        snapshot_cells = [p["snapshot"]["cells"] for m, p in events if m == "shard"]
        assert snapshot_cells == [2, 4, 6, 8], "snapshots grow with the partial merge"
        assert events[-1][0] == "state"
        assert events[-1][1]["state"] == "done"

    def test_sessions_cannot_see_each_others_experiments(self):
        with ServerThread() as handle:
            owner = connect(port=handle.port)
            other = connect(port=handle.port)
            try:
                experiment = owner.submit(**SPEC)
                for method in ("status", "cancel", "result"):
                    with pytest.raises(ServiceError) as excinfo:
                        other.call(method, {"experiment_id": experiment})
                    assert excinfo.value.code == protocol.ERR_UNKNOWN_EXPERIMENT
                # The owner still sees it fine.
                assert owner.wait(experiment)["state"] == "done"
            finally:
                owner.close()
                other.close()


class TestBoundedQueue:
    def test_queue_full_is_explicit_and_cancel_releases_the_slot(self):
        """With one slot and one worker: the second submit is refused with
        queue-full, cancelling the running experiment mid-run frees the
        slot, and the next submit is accepted."""
        with ServerThread(workers=1, queue_limit=1) as handle:
            client = connect(port=handle.port)
            try:
                # Many small shards: cancellation lands at a shard boundary
                # long before the experiment finishes.
                running = client.submit(
                    seed=DEFAULT_SEED, languages=["julia"], shards=12
                )
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(**SPEC)
                assert excinfo.value.code == protocol.ERR_QUEUE_FULL
                assert excinfo.value.data["limit"] == 1

                client.cancel(running)
                final = client.wait(running)
                assert final["state"] == "cancelled"
                assert final["done"] < final["total"], "cancel landed mid-run"

                # Slot released: the queue accepts again, and the new
                # experiment runs to completion.
                accepted = client.submit(**SPEC)
                assert client.wait(accepted)["state"] == "done"
            finally:
                client.close()

    def test_cancelled_queued_experiment_never_runs(self):
        with ServerThread(workers=1, queue_limit=2) as handle:
            client = connect(port=handle.port)
            try:
                running = client.submit(seed=DEFAULT_SEED, languages=["julia"], shards=8)
                queued = client.submit(**SPEC)
                assert client.cancel(queued)["state"] == "cancelled"
                status = client.status(queued)
                assert status["state"] == "cancelled"
                assert status["executed"] == 0 and status["done"] == 0
                client.cancel(running)
                client.wait(running)
            finally:
                client.close()

    def test_cancel_is_idempotent(self):
        with ServerThread() as handle:
            client = connect(port=handle.port)
            try:
                experiment = client.submit(**SPEC)
                client.wait(experiment)
                # Cancelling a finished experiment changes nothing.
                assert client.cancel(experiment)["state"] == "done"
                assert client.result(experiment)["state"] == "done"
            finally:
                client.close()


class TestClientHelper:
    def test_events_buffered_during_calls_are_not_lost(self):
        """Responses and events interleave on one socket; the blocking
        client must surface both."""
        progress_seen = []
        with ServerThread() as handle:
            client = ServiceClient(
                port=handle.port,
                on_event=lambda m, p: progress_seen.append(m),
            )
            with client:
                client.hello()
                experiment = client.submit(**SPEC)
                # Poll status while events stream in: each status call's
                # response is found among buffered notifications.
                while client.status(experiment)["state"] not in (
                    "done", "degraded", "cancelled", "failed",
                ):
                    pass
                payload = client.result(experiment)
        assert payload["state"] == "done"
        assert progress_seen.count("progress") == 8
        assert progress_seen[-1] == "state"
