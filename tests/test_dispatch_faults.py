"""Chaos suite for the dispatch fault-tolerance layer.

Every scenario here injects deterministic failures through
:mod:`repro.dispatch.faults` — worker crashes, hard deaths, hangs, corrupt
result writes, skewed clocks — and asserts the one invariant the layer
promises: the end state of a dispatch is always a **byte-identical merge or
an explicit quarantine**, never wrong records, never a livelock, and never
a double-owned lease.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import ExperimentSpec, Session
from repro.atomicio import write_atomic_json
from repro.codex.config import DEFAULT_SEED
from repro.dispatch import (
    FileQueue,
    HeartbeatLease,
    ResultStore,
    ShardDriver,
    ShardQuarantine,
    drain_queue,
    faults,
)


@pytest.fixture(autouse=True)
def disarm_faults(monkeypatch):
    """Every test starts and ends with no armed fault plan."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))


@pytest.fixture(scope="module")
def expected_records(spec):
    with Session(seed=DEFAULT_SEED) as session:
        return session.run(spec).to_records()


def surviving_subset(spec, expected_records, dead_starts):
    """Expected records of every shard whose start is not quarantined."""
    subset = []
    for shard in spec.partition(4):
        if shard.start not in dead_starts:
            subset.extend(expected_records[shard.start : shard.stop])
    return subset


# ---------------------------------------------------------------------------
# The injector itself
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_unarmed_fire_is_a_noop(self):
        assert faults.fire("worker.evaluate", "anything") is None
        assert faults.clock_skew() == 0.0

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.Fault("worker.evaluate", "melt")

    def test_times_budget_and_match_are_honoured(self):
        faults.install(
            [{"point": "worker.evaluate", "action": "crash", "match": "poison", "times": 2}]
        )
        assert faults.fire("worker.evaluate", "healthy") is None
        assert faults.fire("worker.complete", "poison") is None  # wrong point
        for _ in range(2):
            with pytest.raises(faults.InjectedCrash):
                faults.fire("worker.evaluate", "poison-shard")
        assert faults.fire("worker.evaluate", "poison-shard") is None  # budget spent

    def test_env_plan_is_read_lazily(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, '[{"point": "queue.clock", "action": "skew", "arg": 42.5}]'
        )
        faults.reset()
        assert faults.clock_skew() == 42.5

    def test_backoff_delay_is_bounded_jitter(self):
        import random

        rng = random.Random(0)
        for attempt in range(12):
            delay = faults.backoff_delay(attempt, base=0.05, cap=2.0, rng=rng)
            assert 0.0 <= delay <= min(2.0, 0.05 * 2**attempt)


# ---------------------------------------------------------------------------
# Inline backend: retries and quarantine
# ---------------------------------------------------------------------------

class TestInlineFaults:
    def test_transient_crash_is_retried_to_identity(self, spec, expected_records, tmp_path):
        faults.install([{"point": "worker.evaluate", "action": "crash", "times": 2}])
        report = ShardDriver(spec, shards=4, poll_interval=0.001).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_poison_shard_is_quarantined_not_merged(self, spec, expected_records):
        faults.install(
            [{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}]
        )
        report = ShardDriver(spec, shards=4, poll_interval=0.001).run()
        assert not report.complete
        assert report.pending == 0
        assert len(report.quarantined) == 1
        dead = report.quarantined[0]
        assert isinstance(dead, ShardQuarantine)
        assert dead.entry.start == 0
        assert dead.attempts == 3
        assert dead.failure["error"] == "InjectedCrash"
        assert "DEGRADED 3/4" in report.summary()
        with pytest.raises(ValueError, match="quarantined"):
            report.result()
        # The survivors merged byte-identically to the matching subset.
        partial = report.results[DEFAULT_SEED].to_records()
        assert partial == surviving_subset(spec, expected_records, {0})

    def test_max_attempts_is_the_retry_budget(self, spec):
        faults.install([{"point": "worker.evaluate", "action": "crash", "times": 2}])
        report = ShardDriver(spec, shards=1, max_attempts=2, poll_interval=0.001).run()
        assert len(report.quarantined) == 1 and report.quarantined[0].attempts == 2
        faults.install([{"point": "worker.evaluate", "action": "crash", "times": 2}])
        report = ShardDriver(spec, shards=1, max_attempts=3, poll_interval=0.001).run()
        assert report.complete  # third attempt succeeded

    def test_quarantined_shards_do_not_poison_the_store(self, spec, expected_records, tmp_path):
        # A quarantined shard leaves nothing behind in the result store; once
        # the fault is gone, a resume executes it and completes the merge.
        store = tmp_path / "store"
        faults.install([{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}])
        first = ShardDriver(spec, shards=4, result_store=store, poll_interval=0.001).run()
        assert len(first.quarantined) == 1 and len(first.outcomes) == 3
        faults.reset()
        resumed = ShardDriver(spec, shards=4, result_store=ResultStore(store)).run()
        assert resumed.complete
        assert len(resumed.skipped) == 3 and len(resumed.executed) == 1
        assert resumed.result().to_records() == expected_records


# ---------------------------------------------------------------------------
# Process backend: hard deaths and hung workers
# ---------------------------------------------------------------------------

class TestProcessFaults:
    def test_dead_worker_is_detected_and_quarantined(self, spec, expected_records, monkeypatch):
        # The fault plan travels through the environment, so every spawned
        # worker (and each retry's fresh worker) re-arms it and dies hard.
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            '[{"point": "worker.evaluate", "action": "die", "match": "-00000-"}]',
        )
        faults.reset()
        report = ShardDriver(
            spec, shards=4, backend="process", max_workers=2, max_attempts=2
        ).run()
        assert report.pending == 0
        assert len(report.quarantined) == 1
        dead = report.quarantined[0]
        assert dead.entry.start == 0 and dead.failure["error"] == "WorkerDied"
        assert "exited with code 17" in dead.failure["message"]
        partial = report.results[DEFAULT_SEED].to_records()
        assert partial == surviving_subset(spec, expected_records, {0})

    def test_hung_worker_is_killed_on_shard_timeout(self, spec, expected_records, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            '[{"point": "worker.evaluate", "action": "hang", "arg": 60, "match": "-00000-"}]',
        )
        faults.reset()
        start = time.monotonic()
        report = ShardDriver(
            spec,
            shards=4,
            backend="process",
            max_workers=2,
            max_attempts=2,
            shard_timeout=1.0,
        ).run()
        elapsed = time.monotonic() - start
        assert elapsed < 30  # no livelock: 2 attempts × 1 s timeout, not 60 s hangs
        assert len(report.quarantined) == 1
        dead = report.quarantined[0]
        assert dead.failure["error"] == "ShardTimeout"
        partial = report.results[DEFAULT_SEED].to_records()
        assert partial == surviving_subset(spec, expected_records, {0})

    def test_worker_error_records_cross_the_pipe(self, spec, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            '[{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}]',
        )
        faults.reset()
        report = ShardDriver(
            spec, shards=4, backend="process", max_workers=2, max_attempts=2
        ).run()
        assert len(report.quarantined) == 1
        assert report.quarantined[0].failure["error"] == "InjectedCrash"
        assert "injected crash" in report.quarantined[0].failure["message"]


# ---------------------------------------------------------------------------
# File queue: leases, retries, dead letters
# ---------------------------------------------------------------------------

class TestQueueFaults:
    def test_crashing_worker_releases_for_retry(self, spec, expected_records, tmp_path):
        queue = FileQueue(tmp_path / "q")
        for shard in spec.partition(4):
            queue.publish(shard)
        faults.install(
            [{"point": "worker.evaluate", "action": "crash", "match": "-00000-", "times": 1}]
        )
        # The crash is contained, the failure recorded, the task released —
        # and the *same* drain call re-claims and completes it.
        with pytest.warns(UserWarning, match="released for retry"):
            assert drain_queue(queue) == 4
        assert queue.pending() == [] and queue.failed() == []
        assert list(queue.attempts_dir.iterdir()) == []  # retired on success
        report = ShardDriver(
            spec, shards=4, backend="file-queue", queue=queue, max_shards=0
        ).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_poison_task_lands_in_the_dead_letter_dir(self, spec, expected_records, tmp_path):
        queue = FileQueue(tmp_path / "q", max_attempts=2)
        faults.install([{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}])
        report = ShardDriver(
            spec, shards=4, backend="file-queue", queue=queue, poll_interval=0.001
        ).run()
        assert report.pending == 0
        assert len(report.quarantined) == 1
        assert report.quarantined[0].attempts == 2
        # The dead letter carries the descriptor and the failure history.
        name = queue.task_name(spec.partition(4)[0])
        assert queue.failed() == [name]
        letter = queue.quarantined(name)
        assert letter["format"] == "repro.dispatch-quarantine/v1"
        assert letter["attempts"] == 2
        assert all(f["error"] == "InjectedCrash" for f in letter["failures"])
        assert letter["task"]["format"] == "repro.dispatch-task/v1"
        partial = report.results[DEFAULT_SEED].to_records()
        assert partial == surviving_subset(spec, expected_records, {0})
        # Quarantine is sticky: a fresh driver neither re-publishes nor
        # re-executes the dead shard (no livelock, no wrong records).
        faults.reset()
        again = ShardDriver(
            spec, shards=4, backend="file-queue", queue=queue, poll_interval=0.001
        ).run()
        assert len(again.quarantined) == 1 and again.pending == 0

    def test_corrupt_result_write_degrades_to_reexecution(
        self, spec, expected_records, tmp_path
    ):
        queue = FileQueue(tmp_path / "q")
        shards = spec.partition(2)
        for shard in shards:
            queue.publish(shard)
        poison = queue.task_name(shards[0])
        faults.install(
            [{"point": "worker.complete", "action": "corrupt", "match": poison, "times": 1}]
        )
        assert drain_queue(queue) == 2  # the worker believes both completed
        raw = (queue.results_dir / f"{poison}.json").read_text()
        with pytest.raises(ValueError):
            json.loads(raw)  # the bytes on disk really are torn
        faults.reset()
        report = ShardDriver(spec, shards=2, backend="file-queue", queue=queue).run()
        assert report.complete
        assert report.result().to_records() == expected_records

    def test_live_lease_is_never_reoffered(self, spec, tmp_path):
        # A shard that simply runs long — with a heartbeating worker — must
        # never be stolen, while a genuinely abandoned claim must be.
        queue = FileQueue(tmp_path / "q", heartbeat_interval=0.05, lease_beats=3)
        shard = spec.partition(2)[0]
        queue.publish(shard)
        claim = queue.claim(queue.task_name(shard))
        assert claim is not None
        with HeartbeatLease(queue, claim):
            time.sleep(queue.lease_seconds * 3)  # far beyond the lease
            assert queue.requeue_stale() == 0
            assert claim.alive()
        # Heartbeats stopped (the worker is gone): the lease expires.
        time.sleep(queue.lease_seconds * 1.5)
        assert queue.requeue_stale() == 1
        assert not claim.alive()
        assert queue.pending() == [claim.name]
        assert queue.attempts(claim.name) == 1  # LeaseExpired is on record

    def test_skewed_clock_revokes_visibly_not_silently(self, spec, tmp_path):
        # A sweeper whose clock runs fast wrongly revokes a fresh lease —
        # the protocol cannot prevent that, but the owner must find out.
        queue = FileQueue(tmp_path / "q", heartbeat_interval=0.05, lease_beats=2)
        shard = spec.partition(2)[0]
        queue.publish(shard)
        claim = queue.claim(queue.task_name(shard))
        assert claim is not None and claim.alive()
        faults.install([{"point": "queue.clock", "action": "skew", "arg": 3600.0}])
        assert queue.requeue_stale() == 1
        assert not claim.alive()
        with HeartbeatLease(queue, claim, interval=0.02) as lease:
            time.sleep(0.2)
        assert lease.lost  # the revoked owner noticed via its heartbeat

    def test_claim_requeue_race_never_yields_two_live_owners(self, spec, tmp_path):
        # Property-style: racing claimers and a stale sweeper with a wildly
        # skewed clock (every lease looks expired the moment it is taken)
        # must never leave two workers each believing they hold the lease.
        queue = FileQueue(
            tmp_path / "q", heartbeat_interval=0.05, lease_beats=1, max_attempts=10_000
        )
        shard = spec.partition(1)[0]
        name = queue.task_name(shard)
        queue.publish(shard)
        faults.install([{"point": "queue.clock", "action": "skew", "arg": 3600.0}])
        for _ in range(25):
            barrier = threading.Barrier(3)
            claims = []

            def claimer():
                barrier.wait()
                claims.append(queue.claim(name))

            def sweeper():
                barrier.wait()
                queue.requeue_stale()

            threads = [
                threading.Thread(target=claimer),
                threading.Thread(target=claimer),
                threading.Thread(target=sweeper),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            won = [claim for claim in claims if claim is not None]
            # The rename race has at most one winner, and however the sweep
            # interleaved, at most one of the tokens names a live lease.
            assert len(won) <= 1
            assert sum(claim.alive() for claim in won) <= 1
            assert len(queue._claim_files(name)) <= 1
            # Settle for the next round: sweep until the task is re-offered.
            while name not in queue.pending():
                queue.requeue_stale()

    def test_completed_claims_are_garbage_collected(self, spec, tmp_path):
        # Satellite: claims/ must not leak. Normal completion retires the
        # claim; a claim orphaned *after* its result exists is swept away,
        # and never resurrects the finished task.
        queue = FileQueue(tmp_path / "q")
        shards = spec.partition(2)
        for shard in shards:
            queue.publish(shard)
        drain_queue(queue)
        assert list(queue.claims_dir.iterdir()) == []
        assert list(queue.attempts_dir.iterdir()) == []
        # Orphan a claim by hand next to its existing result.
        name = queue.task_name(shards[0])
        orphan = queue.claims_dir / f"{name}.deadbeef.json"
        write_atomic_json(orphan, {"format": "repro.dispatch-task/v1"})
        assert queue.requeue_stale(0.0) == 0  # GC'd, not re-offered
        assert not orphan.exists()
        assert queue.pending() == []

    def test_worker_poll_waits_for_late_tasks(self, spec, tmp_path):
        queue = FileQueue(tmp_path / "q")
        shard = spec.partition(1)[0]
        threading.Timer(0.3, lambda: queue.publish(shard)).start()
        # Without poll the worker would exit immediately on the empty queue.
        assert drain_queue(queue, poll=10.0, max_tasks=1) == 1

    def test_worker_poll_expires_on_a_queue_that_stays_empty(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        start = time.monotonic()
        assert drain_queue(queue, poll=0.3) == 0
        assert 0.3 <= time.monotonic() - start < 5.0


# ---------------------------------------------------------------------------
# Durability: the shared fsync-before-replace writer
# ---------------------------------------------------------------------------

class TestAtomicWrites:
    def test_write_atomic_json_fsyncs_before_replace(self, tmp_path, monkeypatch):
        import repro.atomicio as atomicio

        synced: list[int] = []
        real_fsync = atomicio.os.fsync
        monkeypatch.setattr(atomicio.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        write_atomic_json(tmp_path / "entry.json", {"a": 1})
        assert len(synced) >= 1  # the entry file (plus, best-effort, its dir)
        assert json.loads((tmp_path / "entry.json").read_text()) == {"a": 1}
        synced.clear()
        write_atomic_json(tmp_path / "fast.json", {"a": 1}, durable=False)
        assert synced == []

    def test_failed_write_leaves_no_droppings(self, tmp_path, monkeypatch):
        import repro.atomicio as atomicio

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "fsync", explode)
        with pytest.raises(OSError):
            write_atomic_json(tmp_path / "entry.json", {"a": 1})
        assert list(tmp_path.iterdir()) == []

    def test_stores_share_the_durable_writer(self, tmp_path, monkeypatch):
        # Both on-disk stores and the queue publish through the same code
        # path — count fsyncs to prove nothing grew its own writer back.
        import repro.atomicio as atomicio
        from repro.analysis.store import VerdictStore
        from repro.analysis.verdict import SuggestionVerdict

        synced: list[int] = []
        real_fsync = atomicio.os.fsync
        monkeypatch.setattr(atomicio.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        store = VerdictStore(tmp_path / "verdicts")
        store.put(
            ("code", "python", "axpy", "python.numpy"),
            SuggestionVerdict(is_code=True, math_correct=True, method="executed"),
        )
        assert synced, "VerdictStore.put no longer goes through write_atomic_json"
        before = len(synced)
        queue = FileQueue(tmp_path / "q")
        spec = ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))
        queue.publish(spec.partition(1)[0])
        assert len(synced) > before, "FileQueue.publish no longer goes through write_atomic_json"


# ---------------------------------------------------------------------------
# CLI: graceful degradation
# ---------------------------------------------------------------------------

class TestCliDegradation:
    def test_allow_partial_merges_survivors_with_exit_4(
        self, spec, expected_records, tmp_path, monkeypatch, capsys
    ):
        from repro.harness.cli import main

        monkeypatch.setenv(
            faults.FAULTS_ENV,
            '[{"point": "worker.evaluate", "action": "crash", "match": "-00000-"}]',
        )
        faults.reset()
        args = ["dispatch", "--shards", "4", "--languages", "julia", "--max-attempts", "2"]
        # Without --allow-partial: refuse to merge, point at the flag.
        assert main(args) == 3
        captured = capsys.readouterr()
        assert "quarantined:" in captured.err
        assert "--allow-partial" in captured.err
        # With it: the survivors' merge is written and the exit is degraded.
        out = tmp_path / "partial.json"
        assert main(args + ["--allow-partial", "--json", str(out)]) == 4
        captured = capsys.readouterr()
        assert "DEGRADED 3/4" in captured.out
        assert "InjectedCrash" in captured.err
        written = json.loads(out.read_text())
        assert written == surviving_subset(spec, expected_records, {0})

    def test_allow_partial_names_quarantined_shards_on_stderr(
        self, monkeypatch, capsys
    ):
        """The exit-4 path must name every hole in the merge, not just
        count them: the stderr summary lists the quarantined shard ids."""
        from repro.harness.cli import main

        monkeypatch.setenv(
            faults.FAULTS_ENV,
            '[{"point": "worker.evaluate", "action": "crash", "match": "-00000-"},'
            ' {"point": "worker.evaluate", "action": "crash", "match": "-00012-"}]',
        )
        faults.reset()
        assert (
            main(
                [
                    "dispatch", "--shards", "4", "--languages", "julia",
                    "--max-attempts", "2", "--allow-partial",
                ]
            )
            == 4
        )
        captured = capsys.readouterr()
        assert "quarantined shard(s) missing from the merge" in captured.err
        assert f"s{DEFAULT_SEED}-00000-00006" in captured.err
        assert f"s{DEFAULT_SEED}-00012-00018" in captured.err
        # Surviving shards are not accused.
        assert f"s{DEFAULT_SEED}-00006-00012" not in captured.err
