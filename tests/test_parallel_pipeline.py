"""Tests for the parallel, cache-aware evaluation pipeline.

Covers the four layers of the perf architecture:

* the per-cell seeding contract (:func:`repro.codex.engine.cell_seed_sequence`),
* the shared corpus memo (:func:`repro.corpus.store.default_corpus`),
* the executor backends and indexed :class:`ResultSet` in
  :mod:`repro.core.runner`, and
* the process-wide verdict memo and fingerprint-keyed result cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyzer as analyzer_module
from repro.analysis.analyzer import SuggestionAnalyzer, clear_verdict_memo
from repro.codex.config import CodexConfig, DEFAULT_SEED
from repro.codex.engine import cell_seed_sequence
from repro.codex.sampler import SuggestionSampler
from repro.core.runner import (
    MIN_CHUNK_CELLS,
    EvaluationRunner,
    ResultSet,
    default_chunk_size,
)
from repro.corpus.store import default_corpus
from repro.harness import experiments
from repro.models.grid import experiment_grid
from repro.popularity.maturity import MaturityModel


# ---------------------------------------------------------------------------
# Per-cell seeding contract
# ---------------------------------------------------------------------------

class TestCellSeedSequence:
    def test_same_cell_same_stream(self):
        a = cell_seed_sequence(7, language="cpp", model="cpp.openmp", kernel="axpy", postfix="function")
        b = cell_seed_sequence(7, language="cpp", model="cpp.openmp", kernel="axpy", postfix="function")
        assert np.random.default_rng(a).integers(0, 1 << 30, 8).tolist() == \
            np.random.default_rng(b).integers(0, 1 << 30, 8).tolist()

    def test_coordinates_change_the_stream(self):
        base = dict(language="cpp", model="cpp.openmp", kernel="axpy", postfix="")
        reference = np.random.default_rng(cell_seed_sequence(7, **base)).integers(0, 1 << 30, 8)
        for variant in (
            dict(base, kernel="gemm"),
            dict(base, model="cpp.cuda"),
            dict(base, postfix="function"),
        ):
            drawn = np.random.default_rng(cell_seed_sequence(7, **variant)).integers(0, 1 << 30, 8)
            assert drawn.tolist() != reference.tolist(), variant
        reseeded = np.random.default_rng(cell_seed_sequence(8, **base)).integers(0, 1 << 30, 8)
        assert reseeded.tolist() != reference.tolist()

    def test_mismatched_language_rejected(self):
        with pytest.raises(ValueError):
            cell_seed_sequence(7, language="fortran", model="cpp.openmp", kernel="axpy", postfix="")


# ---------------------------------------------------------------------------
# Backend determinism
# ---------------------------------------------------------------------------

class TestBackendDeterminism:
    def test_serial_thread_process_identical_full_grid(self, full_results):
        serial_records = full_results.to_records()
        for backend, workers in (("thread", 4), ("process", 2)):
            runner = EvaluationRunner(
                config=CodexConfig(), seed=DEFAULT_SEED, backend=backend, max_workers=workers
            )
            assert runner.run_full_grid().to_records() == serial_records, backend

    def test_single_cell_matches_full_grid_value(self, full_results):
        # Any cell evaluated in isolation reproduces its in-grid record.
        cells = experiment_grid()
        for index in (0, 57, 119, 203):
            cell = cells[index]
            runner = EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED)
            alone = runner.run_cells([cell])
            assert alone.to_records() == [full_results.to_records()[index]]

    def test_evaluation_order_is_irrelevant(self):
        cells = experiment_grid(languages=("julia",))
        forward = EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED).run_cells(cells)
        backward = EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED).run_cells(cells[::-1])
        key = lambda r: (r["model"], r["kernel"], r["use_postfix"])
        assert sorted(forward.to_records(), key=key) == sorted(backward.to_records(), key=key)

    def test_progress_callback_fires_in_submission_order(self):
        cells = experiment_grid(languages=("julia",), kernels=("axpy", "gemv"))
        for backend in ("serial", "thread"):
            seen: list[str] = []
            runner = EvaluationRunner(
                config=CodexConfig(),
                seed=DEFAULT_SEED,
                backend=backend,
                progress=lambda result: seen.append(result.cell.cell_id),
            )
            runner.run_cells(cells)
            assert seen == [cell.cell_id for cell in cells], backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EvaluationRunner(backend="gpu")

    def test_runner_reuses_pool_across_runs(self):
        with EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED, backend="thread") as runner:
            first = runner.run_language("julia")
            executor = runner._executor
            assert executor is not None
            second = runner.run_language("julia")
            assert runner._executor is executor
            assert first.to_records() == second.to_records()
        assert runner._executor is None
        runner.close()  # idempotent

    def test_process_backend_rejects_custom_evaluator(self, evaluator):
        with pytest.raises(ValueError):
            EvaluationRunner(backend="process", evaluator=evaluator)


# ---------------------------------------------------------------------------
# Parallel dispatch policy: the process backend must at least break even
# ---------------------------------------------------------------------------

class TestDispatchPolicy:
    def test_default_chunk_size_targets_two_chunks_per_worker(self):
        # ~2 chunks per worker: enough straggler rebalancing without paying
        # per-chunk IPC comparable to the work (the old 4-chunks-per-worker
        # policy put the stock 204-cell grid at 7-cell chunks, where the
        # process backend lost to serial outright).
        assert default_chunk_size(204, 8) == 13
        assert default_chunk_size(204, 1) == 102
        assert default_chunk_size(1000, 4) == 125

    def test_default_chunk_size_never_cuts_confetti(self):
        # Below MIN_CHUNK_CELLS the dispatch overhead dominates; small grids
        # prefer idle workers over finer chunks.
        assert default_chunk_size(48, 4) == MIN_CHUNK_CELLS
        assert default_chunk_size(3, 8) == MIN_CHUNK_CELLS
        assert all(
            default_chunk_size(n, w) >= MIN_CHUNK_CELLS
            for n in (1, 10, 100, 1000)
            for w in (1, 2, 8)
        )

    def test_single_worker_process_backend_runs_in_process(self):
        # A one-worker subprocess pool is serial evaluation plus fork and
        # IPC overhead — strictly slower than the calling thread.  On hosts
        # where the pool would resolve to a single worker the process
        # backend therefore evaluates in-process (byte-identical by the
        # determinism contract), which is what guarantees it breaks even
        # with serial on the stock grid instead of losing ~20% to overhead.
        runner = EvaluationRunner(
            config=CodexConfig(), seed=DEFAULT_SEED, backend="process", max_workers=1
        )
        results = runner.run_language("julia")
        assert runner._executor is None  # no pool was ever spawned
        serial = EvaluationRunner(config=CodexConfig(), seed=DEFAULT_SEED).run_language("julia")
        assert results.to_records() == serial.to_records()

    def test_single_worker_process_backend_still_counts_work(self, tmp_path):
        # The in-process shortcut must keep the counter contract: sandbox
        # executions and verdict-store hits are attributed to the runner
        # exactly as the pool path attributes worker deltas.
        cells = experiment_grid(languages=("python",), kernels=("axpy",))
        clear_verdict_memo()
        try:
            cold = EvaluationRunner(
                config=CodexConfig(), seed=DEFAULT_SEED, backend="process",
                max_workers=1, verdict_store=tmp_path / "store",
            )
            cold_records = cold.run_cells(cells).to_records()
            assert cold.sandbox_executions > 0
            clear_verdict_memo()
            warm = EvaluationRunner(
                config=CodexConfig(), seed=DEFAULT_SEED, backend="process",
                max_workers=1, verdict_store=tmp_path / "store",
            )
            assert warm.run_cells(cells).to_records() == cold_records
            assert warm.sandbox_executions == 0
            assert warm.store_hits > 0
        finally:
            clear_verdict_memo()


# ---------------------------------------------------------------------------
# Indexed ResultSet
# ---------------------------------------------------------------------------

class TestResultSetIndex:
    def test_score_matches_linear_scan(self, full_results):
        for result in full_results:
            cell = result.cell
            assert full_results.score(cell.model, cell.kernel, use_postfix=cell.use_postfix) == result.score

    def test_score_missing_cell_raises(self, full_results):
        with pytest.raises(KeyError):
            full_results.score("cpp.openmp", "axpy", use_postfix=None)

    def test_filter_matches_linear_scan(self, full_results):
        for criteria in (
            dict(language="cpp"),
            dict(model="python.numpy"),
            dict(kernel="cg", use_postfix=False),
            dict(language="fortran", model="fortran.openacc", kernel="axpy", use_postfix=True),
            dict(),
        ):
            expected = [
                r for r in full_results
                if all(getattr(r.cell, name) == value for name, value in criteria.items())
            ]
            assert full_results.filter(**criteria).results == expected, criteria

    def test_preloaded_results_are_indexed(self, full_results):
        rebuilt = ResultSet(results=list(full_results), seed=full_results.seed)
        some = rebuilt.results[10].cell
        assert rebuilt.score(some.model, some.kernel, use_postfix=some.use_postfix) == \
            rebuilt.results[10].score


# ---------------------------------------------------------------------------
# Shared analyzer memo
# ---------------------------------------------------------------------------

class TestVerdictMemo:
    def test_identical_suggestion_executes_once(self, corpus):
        code = corpus.template("python", "python.numpy", "axpy").code
        calls: list[str] = []

        def counting_executor(code: str, kernel: str) -> tuple[bool, list[str]]:
            calls.append(kernel)
            return True, []

        analyzer = SuggestionAnalyzer(python_executor=counting_executor)
        for _ in range(3):
            verdict = analyzer.analyze(
                code, language="python", kernel="axpy", requested_model="python.numpy"
            )
            assert verdict.is_correct
        assert len(calls) == 1

    def test_default_analyzers_share_one_memo(self, corpus, monkeypatch):
        code = corpus.template("python", "python.numpy", "gemv").code
        calls: list[str] = []

        def counting_executor(code: str, kernel: str) -> tuple[bool, list[str]]:
            calls.append(kernel)
            return True, []

        monkeypatch.setattr(analyzer_module, "_default_python_executor", counting_executor)
        clear_verdict_memo()
        try:
            first, second = SuggestionAnalyzer(), SuggestionAnalyzer()
            assert first._cache is second._cache
            kwargs = dict(language="python", kernel="gemv", requested_model="python.numpy")
            first.analyze(code, **kwargs)
            second.analyze(code, **kwargs)
            assert len(calls) == 1
        finally:
            clear_verdict_memo()

    def test_mutating_a_returned_verdict_does_not_poison_the_memo(self, corpus):
        code = corpus.template("julia", "julia.threads", "axpy").code
        analyzer = SuggestionAnalyzer()
        kwargs = dict(language="julia", kernel="axpy", requested_model="julia.threads")
        first = analyzer.analyze(code, **kwargs)
        first.add_issue("caller-side annotation")
        first.math_correct = False
        second = analyzer.analyze(code, **kwargs)
        assert second.math_correct
        assert "caller-side annotation" not in second.issues

    def test_custom_backends_do_not_pollute_shared_memo(self):
        stubbed = SuggestionAnalyzer(python_executor=lambda code, kernel: (True, []))
        static = SuggestionAnalyzer(execute_python=False)
        default = SuggestionAnalyzer()
        assert stubbed._cache is not default._cache
        assert static._cache is not default._cache


# ---------------------------------------------------------------------------
# Corpus memo and fingerprint-keyed result cache
# ---------------------------------------------------------------------------

class TestCacheLayers:
    def test_default_corpus_is_memoized(self):
        assert default_corpus() is default_corpus()
        assert SuggestionSampler().corpus is SuggestionSampler().corpus

    def test_fingerprint_is_value_based(self):
        assert CodexConfig().fingerprint() == CodexConfig().fingerprint()
        assert CodexConfig().fingerprint() != CodexConfig(max_suggestions=5).fingerprint()
        scaled = CodexConfig(maturity=MaturityModel(model_weight=0.62 * 1.0))
        assert scaled.fingerprint() == CodexConfig().fingerprint()
        assert CodexConfig(maturity=MaturityModel(model_weight=0.31)).fingerprint() != \
            CodexConfig().fingerprint()

    def test_equal_configs_share_cached_results(self):
        first = experiments.run_language_results("julia", config=CodexConfig())
        second = experiments.run_language_results("julia", config=CodexConfig())
        default = experiments.run_language_results("julia")
        assert first is second is default

    def test_clear_result_cache_forces_reevaluation(self):
        first = experiments.run_language_results("julia")
        experiments.clear_result_cache()
        second = experiments.run_language_results("julia")
        assert first is not second
        assert first.to_records() == second.to_records()

    def test_ablation_points_reuse_default_run(self):
        default_cpp = experiments.run_language_results("cpp")
        # Maturity scale 1.0 and suggestion budget 10 fingerprint to the
        # default config, so neither ablation re-evaluates that point.
        scaled = experiments.run_language_results(
            "cpp", config=CodexConfig(maturity=MaturityModel(model_weight=0.62 * 1.0))
        )
        budget10 = experiments.run_language_results("cpp", config=CodexConfig(max_suggestions=10))
        assert scaled is default_cpp
        assert budget10 is default_cpp

    def test_result_cache_is_lru_bounded(self):
        from repro.harness.experiments import _RESULT_CACHE, _RESULT_CACHE_MAX, _cache_put

        for i in range(_RESULT_CACHE_MAX + 5):
            _cache_put((i, "x", "f"), ResultSet(seed=i))
        assert len(_RESULT_CACHE) == _RESULT_CACHE_MAX
        assert (0, "x", "f") not in _RESULT_CACHE
        assert (_RESULT_CACHE_MAX + 4, "x", "f") in _RESULT_CACHE

    def test_run_everything_evaluates_each_cell_once_per_fingerprint(self, monkeypatch):
        evaluated: list[tuple[str, str]] = []
        original = EvaluationRunner.run_cells

        def counting_run_cells(self, cells):
            cells = list(cells)
            evaluated.extend((self.config.fingerprint(), cell.cell_id) for cell in cells)
            return original(self, cells)

        monkeypatch.setattr(EvaluationRunner, "run_cells", counting_run_cells)
        experiments.run_everything(seed=DEFAULT_SEED)
        assert len(evaluated) == len(set(evaluated)), "a (fingerprint, cell) pair ran twice"
