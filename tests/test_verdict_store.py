"""Tests for the persistent verdict store and batched sandbox execution.

Covers the tentpole guarantees:

* :class:`repro.analysis.store.VerdictStore` round-trips verdicts through
  disk and degrades every failure mode (truncation, corruption, schema
  bumps, racing writers) to recompute — never to a wrong verdict;
* the analyzer layers the store under the process-wide memo (memo hits stay
  free and are written through; store hits fill the memo);
* batched sandbox execution produces byte-identical outcomes to the serial
  path while counting every module execution;
* warm-store runs — serial and process backend — reproduce cold records
  byte-for-byte with **zero** sandbox executions.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import store as store_module
from repro.analysis.analyzer import SuggestionAnalyzer, clear_verdict_memo
from repro.analysis.store import VerdictStore, default_store_path
from repro.analysis.verdict import SuggestionVerdict
from repro.api import Session
from repro.codex.config import DEFAULT_SEED
from repro.sandbox import (
    evaluate_python_suggestion,
    evaluate_python_suggestions,
    sandbox_execution_count,
)


def _verdict() -> SuggestionVerdict:
    return SuggestionVerdict(
        is_code=True,
        detected_models=("python.numpy",),
        uses_requested_model=True,
        math_correct=True,
        issues=["kept issue"],
        method="executed",
    )


def _key(code: str = "def axpy(a, x, y):\n    return a * x + y\n") -> tuple[str, str, str, str]:
    return (code, "python", "axpy", "python.numpy")


# ---------------------------------------------------------------------------
# Round trip and keying
# ---------------------------------------------------------------------------

class TestVerdictStoreRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = VerdictStore(tmp_path)
        assert store.get(_key()) is None
        store.put(_key(), _verdict())
        assert store.get(_key()) == _verdict()
        assert len(store) == 1
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_get_returns_fresh_objects(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        first = store.get(_key())
        first.issues.append("caller-side mutation")
        first.math_correct = False
        assert store.get(_key()) == _verdict()

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        for other in (
            ("other code", "python", "axpy", "python.numpy"),
            (_key()[0], "julia", "axpy", "python.numpy"),
            (_key()[0], "python", "gemv", "python.numpy"),
            (_key()[0], "python", "axpy", "python.numba"),
        ):
            assert store.get(other) is None, other

    def test_put_is_idempotent_across_instances(self, tmp_path):
        VerdictStore(tmp_path).put(_key(), _verdict())
        second = VerdictStore(tmp_path)
        second.put(_key(), _verdict())
        assert second.writes == 0  # existing entry detected, not rewritten
        assert len(second) == 1

    def test_default_store_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_VERDICT_STORE", str(tmp_path / "env-store"))
        assert default_store_path() == tmp_path / "env-store"

    def test_stats_and_clear(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        store.put(_key("other"), _verdict())
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["schema"] == store_module.STORE_SCHEMA
        assert store.clear() == 2
        assert len(store) == 0
        assert VerdictStore(tmp_path).get(_key()) is None


# ---------------------------------------------------------------------------
# Corruption, versioning and races: always degrade to recompute
# ---------------------------------------------------------------------------

class TestStoreDegradation:
    def _entry_file(self, tmp_path):
        [entry] = list(tmp_path.glob("??/*.json"))
        return entry

    def test_truncated_entry_is_a_miss_and_dropped(self, tmp_path):
        VerdictStore(tmp_path).put(_key(), _verdict())
        entry = self._entry_file(tmp_path)
        entry.write_text(entry.read_text()[:17])
        fresh = VerdictStore(tmp_path)
        assert fresh.get(_key()) is None
        assert not entry.exists()  # corrupt entry removed, next put recomputes
        fresh.put(_key(), _verdict())
        assert VerdictStore(tmp_path).get(_key()) == _verdict()

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        VerdictStore(tmp_path).put(_key(), _verdict())
        self._entry_file(tmp_path).write_text("\x00\x01 not json")
        assert VerdictStore(tmp_path).get(_key()) is None

    def test_string_typed_issue_list_is_rejected_as_corrupt(self, tmp_path):
        # Valid JSON, valid key, but "issues" is a string: characterwise
        # iteration would fabricate a garbled verdict — must be a miss.
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        entry = self._entry_file(tmp_path)
        payload = json.loads(entry.read_text())
        payload["verdict"]["issues"] = "bad"
        entry.write_text(json.dumps(payload))
        assert VerdictStore(tmp_path).get(_key()) is None

    def test_entry_for_a_different_key_is_rejected(self, tmp_path):
        # Simulate a digest collision / foreign file: valid JSON, wrong key.
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        entry = self._entry_file(tmp_path)
        payload = json.loads(entry.read_text())
        payload["kernel"] = "gemv"
        entry.write_text(json.dumps(payload))
        assert VerdictStore(tmp_path).get(_key()) is None

    def test_transient_read_error_is_a_miss_but_keeps_the_entry(self, tmp_path, monkeypatch):
        from pathlib import Path

        VerdictStore(tmp_path).put(_key(), _verdict())
        entry = self._entry_file(tmp_path)

        def flaky_read_bytes(self, *args, **kwargs):
            raise OSError("Input/output error")

        reader = VerdictStore(tmp_path)
        monkeypatch.setattr(Path, "read_bytes", flaky_read_bytes)
        assert reader.get(_key()) is None  # transient failure -> plain miss
        monkeypatch.undo()
        assert entry.exists()  # ... the shared entry was NOT destroyed
        assert reader.get(_key()) == _verdict()

    def test_schema_version_bump_invalidates_old_entries(self, tmp_path, monkeypatch):
        VerdictStore(tmp_path).put(_key(), _verdict())
        assert VerdictStore(tmp_path).get(_key()) is not None
        monkeypatch.setattr(store_module, "STORE_SCHEMA", store_module.STORE_SCHEMA + 1)
        bumped = VerdictStore(tmp_path)
        assert bumped.get(_key()) is None  # old entry unreachable -> recompute
        bumped.put(_key(), _verdict())
        assert bumped.get(_key()) == _verdict()

    def test_analysis_version_bump_invalidates_old_entries(self, tmp_path, monkeypatch):
        # Analyzer *behavior* changes must orphan stale verdicts too.
        VerdictStore(tmp_path).put(_key(), _verdict())
        monkeypatch.setattr(store_module, "ANALYSIS_VERSION", store_module.ANALYSIS_VERSION + 1)
        assert VerdictStore(tmp_path).get(_key()) is None

    def test_lockstep_interpreter_bump_is_recorded(self):
        # The vectorized lockstep CUDA interpreter changed what execution
        # *can* observe (GPUArray write-back, memcpy fidelity, ternary
        # support), so the analysis version must be past the scalar-era 1.
        # Stores written before the bump degrade to recompute (below).
        from repro.analysis.verdict import ANALYSIS_VERSION

        assert ANALYSIS_VERSION >= 2

    def test_pre_bump_store_degrades_to_recompute(self, tmp_path, monkeypatch):
        # Simulate a store populated by the scalar-era interpreter (analysis
        # version 1): the current analyzer must never serve those entries —
        # every lookup misses and recomputation repopulates under the new
        # digest, with both generations coexisting in the directory.
        monkeypatch.setattr(store_module, "ANALYSIS_VERSION", 1)
        legacy = VerdictStore(tmp_path)
        legacy.put(_key(), _verdict())
        assert legacy.get(_key()) is not None
        monkeypatch.undo()

        current = VerdictStore(tmp_path)
        assert current.get(_key()) is None  # stale verdict never served
        current.put(_key(), _verdict())
        assert current.get(_key()) == _verdict()
        assert len(current) == 2  # old entry orphaned, not misread

    def test_put_fails_soft_when_the_directory_is_unwritable(self, tmp_path, monkeypatch):
        from pathlib import Path

        store = VerdictStore(tmp_path)

        def broken_mkdir(self, *args, **kwargs):
            raise OSError("read-only file system")

        monkeypatch.setattr(Path, "mkdir", broken_mkdir)
        store.put(_key(), _verdict())  # must not raise: analysis never fails on cache IO
        assert store.writes == 0

    def test_racing_writers_on_the_same_keys_never_corrupt(self, tmp_path):
        iterations = 25
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for i in range(iterations):
                    barrier.wait()
                    # A fresh instance per iteration defeats the _known
                    # shortcut, so both threads really race the same entry.
                    VerdictStore(tmp_path).put(_key(f"code {i}"), _verdict())
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        reader = VerdictStore(tmp_path)
        for i in range(iterations):
            assert reader.get(_key(f"code {i}")) == _verdict(), i
        assert len(reader) == iterations
        assert not list(tmp_path.glob("??/.*.tmp"))  # no leaked temp files


# ---------------------------------------------------------------------------
# Analyzer integration: memo above, store below
# ---------------------------------------------------------------------------

class TestAnalyzerStoreIntegration:
    def test_second_process_skips_execution(self, corpus, tmp_path):
        code = corpus.template("python", "python.numpy", "axpy").code
        store = VerdictStore(tmp_path)
        kwargs = dict(language="python", kernel="axpy", requested_model="python.numpy")
        before = sandbox_execution_count()
        first = SuggestionAnalyzer(store=store, shared_memo=False).analyze(code, **kwargs)
        assert sandbox_execution_count() - before == 1
        assert first.is_correct
        # A "new process": fresh analyzer, fresh memo, same directory.
        fresh_store = VerdictStore(tmp_path)
        before = sandbox_execution_count()
        second = SuggestionAnalyzer(store=fresh_store, shared_memo=False).analyze(code, **kwargs)
        assert sandbox_execution_count() == before  # store hit, no execution
        assert second == first
        assert fresh_store.hits == 1

    def test_memo_hits_are_not_written_through(self, corpus, tmp_path):
        # A memo entry carries no provenance (a forced-shared non-default
        # analyzer may have put it there), so memo hits must never be
        # persisted — only self-computed or store-loaded verdicts are.
        code = corpus.template("julia", "julia.threads", "gemv").code
        kwargs = dict(language="julia", kernel="gemv", requested_model="julia.threads")
        clear_verdict_memo()
        try:
            SuggestionAnalyzer().analyze(code, **kwargs)  # memo only, no store
            store = VerdictStore(tmp_path)
            SuggestionAnalyzer(store=store).analyze(code, **kwargs)  # memo hit
            assert len(store) == 0  # degrades to recompute elsewhere, never to a wrong verdict
            clear_verdict_memo()
            verdict = SuggestionAnalyzer(store=store).analyze(code, **kwargs)  # computed
            assert len(store) == 1
            assert VerdictStore(tmp_path).get((code, "julia", "gemv", "julia.threads")) == verdict
        finally:
            clear_verdict_memo()

    def test_non_default_modes_cannot_attach_a_store(self, tmp_path):
        # The store key carries no analysis mode: static-only or
        # custom-backend verdicts must never reach the shared store.
        with pytest.raises(ValueError):
            SuggestionAnalyzer(execute_python=False, store=tmp_path)
        with pytest.raises(ValueError):
            SuggestionAnalyzer(python_executor=lambda code, kernel: (True, []), store=tmp_path)

    def test_store_hit_fills_the_memo(self, corpus, tmp_path):
        code = corpus.template("fortran", "fortran.openmp", "axpy").code
        key = (code, "fortran", "axpy", "fortran.openmp")
        store = VerdictStore(tmp_path)
        store.put(key, _verdict())
        analyzer = SuggestionAnalyzer(store=store, shared_memo=False)
        kwargs = dict(language="fortran", kernel="axpy", requested_model="fortran.openmp")
        analyzer.analyze(code, **kwargs)
        analyzer.analyze(code, **kwargs)
        assert store.hits == 1  # second lookup came from the memo


# ---------------------------------------------------------------------------
# Batched sandbox execution
# ---------------------------------------------------------------------------

class TestBatchedExecution:
    def test_batched_matches_serial(self, corpus):
        items = [
            (corpus.template("python", "python.numpy", "axpy").code, "axpy"),
            (corpus.template("python", "python.numba", "gemv").code, "gemv"),
            (corpus.template("python", "python.cupy", "gemm").code, "gemm"),
            (corpus.template("python", "python.pycuda", "axpy").code, "axpy"),
            (corpus.template("python", "python.numpy", "cg").code, "cg"),
            ("def axpy(a, x, y):\n    return None\n", "axpy"),  # fails the oracle
            ("x = 1\n", "gemv"),  # no entry point
        ]
        serial = [evaluate_python_suggestion(code, kernel) for code, kernel in items]
        batched = evaluate_python_suggestions(items)
        assert [(r.passed, r.issues, r.entry_point) for r in serial] == [
            (r.passed, r.issues, r.entry_point) for r in batched
        ]
        assert serial[0].passed and not serial[5].passed and not serial[6].passed

    def test_batch_executes_in_input_order_like_serial(self, corpus):
        # The fake cupy module object is shared (in both paths), so execution
        # ORDER is observable; the batch must follow input order, not kernel
        # grouping, to stay identical to a serial loop.
        from repro.sandbox import fake_cupy

        marker = "import cupy\ncupy._order_marker = True\ndef gemv(a, x):\n    return a @ x\n"
        watcher = (
            "import cupy\n"
            "def axpy(a, x, y):\n"
            "    assert not hasattr(cupy, '_order_marker'), 'marker visible'\n"
            "    return a * x + y\n"
        )
        clean = corpus.template("python", "python.numpy", "axpy").code
        items = [(clean, "axpy"), (marker, "gemv"), (watcher, "axpy")]
        try:
            serial = [evaluate_python_suggestion(code, kernel) for code, kernel in items]
            if hasattr(fake_cupy, "_order_marker"):
                del fake_cupy._order_marker
            batched = evaluate_python_suggestions(items)
            assert [(r.passed, r.issues) for r in serial] == [
                (r.passed, r.issues) for r in batched
            ]
            assert not serial[2].passed  # the watcher runs after the marker setter
        finally:
            if hasattr(fake_cupy, "_order_marker"):
                del fake_cupy._order_marker

    def test_module_mutation_cannot_leak_into_the_next_batch_item(self, corpus):
        # A suggestion that sabotages its own module namespace must not
        # change the verdict of the next suggestion in the batch.
        saboteur = (
            "import numba\n"
            "numba.njit = None\n"
            "def axpy(a, x, y):\n"
            "    return a * x + y\n"
        )
        victim = corpus.template("python", "python.numba", "axpy").code
        items = [(saboteur, "axpy"), (victim, "axpy")]
        serial = [evaluate_python_suggestion(code, kernel) for code, kernel in items]
        batched = evaluate_python_suggestions(items)
        assert [(r.passed, r.issues) for r in serial] == [
            (r.passed, r.issues) for r in batched
        ]
        assert batched[1].passed  # the victim still JITs and passes

    def test_execution_counter_counts_executed_modules_only(self, corpus):
        axpy = corpus.template("python", "python.numpy", "axpy").code
        before = sandbox_execution_count()
        evaluate_python_suggestions([(axpy, "axpy"), (axpy, "axpy"), ("x = 1\n", "axpy")])
        # Two executed modules; the entry-less item never runs.
        assert sandbox_execution_count() - before == 2

    def test_analyzer_batch_deduplicates_within_the_batch(self, corpus):
        code = corpus.template("python", "python.numpy", "gemm").code
        analyzer = SuggestionAnalyzer(shared_memo=False)
        before = sandbox_execution_count()
        verdicts = analyzer.analyze_batch(
            [code, code, code], language="python", kernel="gemm",
            requested_model="python.numpy",
        )
        assert sandbox_execution_count() - before == 1
        assert all(v == verdicts[0] for v in verdicts)
        assert verdicts[0] is not verdicts[1]  # defensive copies, not aliases


# ---------------------------------------------------------------------------
# Warm-store runs: byte-identical records, zero executions
# ---------------------------------------------------------------------------

class TestWarmStoreRuns:
    def test_serial_warm_run_is_identical_with_zero_executions(self, tmp_path):
        store_dir = tmp_path / "store"
        clear_verdict_memo()
        try:
            with Session(seed=DEFAULT_SEED, verdict_store=store_dir) as cold:
                cold_records = cold.language_results("python").to_records()
                assert cold.sandbox_executions > 0
            clear_verdict_memo()  # a warm *process* starts with an empty memo
            with Session(seed=DEFAULT_SEED, verdict_store=store_dir) as warm:
                assert warm.language_results("python").to_records() == cold_records
                assert warm.sandbox_executions == 0
                assert warm.store_hits > 0
        finally:
            clear_verdict_memo()

    def test_process_backend_run_everything_warm_rerun(self, tmp_path):
        store_dir = tmp_path / "store"
        clear_verdict_memo()
        try:
            with Session(
                seed=DEFAULT_SEED, backend="process", max_workers=2,
                verdict_store=store_dir,
            ) as cold:
                cold.run_everything()
                cold_records = cold.full_results().to_records()
                assert cold.sandbox_executions > 0
            clear_verdict_memo()
            with Session(
                seed=DEFAULT_SEED, backend="process", max_workers=2,
                verdict_store=store_dir,
            ) as warm:
                warm.run_everything()
                assert warm.full_results().to_records() == cold_records
                assert warm.sandbox_executions == 0
                assert warm.store_hits > 0
        finally:
            clear_verdict_memo()

    def test_runner_rejects_store_with_custom_evaluator(self, evaluator, tmp_path):
        from repro.core.runner import EvaluationRunner

        with pytest.raises(ValueError):
            EvaluationRunner(evaluator=evaluator, verdict_store=tmp_path / "s")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCliCache:
    def test_cache_stats_and_clear_roundtrip(self, tmp_path, capsys):
        from repro.harness.cli import main

        store_arg = str(tmp_path / "store")
        assert main(["--verdict-store", store_arg, "table", "5"]) == 0
        assert "verdict store:" in capsys.readouterr().err
        assert main(["--verdict-store", store_arg, "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and store_arg in out
        assert main(["--verdict-store", store_arg, "cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert len(VerdictStore(store_arg)) == 0

    def test_verdict_store_auto_uses_default_location(self, tmp_path, monkeypatch, capsys):
        from repro.harness.cli import main

        monkeypatch.setenv("REPRO_VERDICT_STORE", str(tmp_path / "auto-store"))
        assert main(["--verdict-store", "auto", "cache", "stats"]) == 0
        assert str(tmp_path / "auto-store") in capsys.readouterr().out

    def test_cache_clear_requires_an_explicit_store(self, tmp_path, monkeypatch):
        from repro.harness.cli import main

        monkeypatch.setenv("REPRO_VERDICT_STORE", str(tmp_path / "default-store"))
        VerdictStore(tmp_path / "default-store").put(_key(), _verdict())
        with pytest.raises(SystemExit):
            main(["cache", "clear"])  # forgotten flag must not wipe the default store
        assert len(VerdictStore(tmp_path / "default-store")) == 1
