"""Tests for the Jacobi stencil and the CG solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.base import KernelComplexity
from repro.kernels.cg import CgKernel, conjugate_gradient
from repro.kernels.jacobi import JacobiKernel, jacobi2d_step, jacobi3d_solve, jacobi3d_step
from repro.kernels.sparse import poisson_2d


class TestJacobiStep:
    def test_interior_update_formula(self):
        u = np.zeros((3, 3, 3))
        u[0, 1, 1] = 6.0  # single neighbour contributes 6/6 = 1 to the centre
        result = jacobi3d_step(u)
        assert result[1, 1, 1] == pytest.approx(1.0)

    def test_boundary_preserved(self, rng):
        u = rng.standard_normal((5, 5, 5))
        result = jacobi3d_step(u)
        np.testing.assert_array_equal(result[0], u[0])
        np.testing.assert_array_equal(result[-1], u[-1])
        np.testing.assert_array_equal(result[:, 0, :], u[:, 0, :])

    def test_rhs_term(self):
        u = np.zeros((3, 3, 3))
        f = np.zeros((3, 3, 3))
        f[1, 1, 1] = 6.0
        result = jacobi3d_step(u, f, h=1.0)
        assert result[1, 1, 1] == pytest.approx(1.0)

    def test_small_grid_returns_copy(self):
        u = np.ones((2, 2, 2))
        result = jacobi3d_step(u)
        np.testing.assert_array_equal(result, u)
        assert result is not u

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            jacobi3d_step(np.zeros((3, 3)))

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            jacobi3d_step(np.zeros((3, 3, 3)), np.zeros((4, 4, 4)))

    def test_constant_field_is_fixed_point(self):
        u = np.full((5, 5, 5), 3.25)
        np.testing.assert_allclose(jacobi3d_step(u), u)

    def test_2d_variant(self):
        u = np.zeros((3, 3))
        u[0, 1] = 4.0
        result = jacobi2d_step(u)
        assert result[1, 1] == pytest.approx(1.0)

    def test_2d_requires_2d(self):
        with pytest.raises(ValueError):
            jacobi2d_step(np.zeros((3, 3, 3)))

    @given(n=st.integers(3, 7))
    @settings(max_examples=15, deadline=None)
    def test_property_max_principle(self, n):
        """A Jacobi sweep never creates new extrema in the interior."""
        rng = np.random.default_rng(n)
        u = rng.standard_normal((n, n, n))
        result = jacobi3d_step(u)
        assert result[1:-1, 1:-1, 1:-1].max() <= u.max() + 1e-12
        assert result[1:-1, 1:-1, 1:-1].min() >= u.min() - 1e-12


class TestJacobiSolve:
    def test_smoothing_reduces_update_norm(self, rng):
        u = rng.standard_normal((8, 8, 8))
        _, iterations, norm = jacobi3d_solve(u, max_iterations=50, tol=0.0)
        assert iterations == 50
        _, _, early_norm = jacobi3d_solve(u, max_iterations=5, tol=0.0)
        assert norm <= early_norm

    def test_tolerance_stops_early(self):
        u = np.zeros((6, 6, 6))
        _, iterations, norm = jacobi3d_solve(u, max_iterations=100, tol=1e-12)
        assert iterations == 1
        assert norm == 0.0

    def test_kernel_class_roundtrip(self):
        kernel = JacobiKernel()
        assert kernel.spec.complexity is KernelComplexity.STENCIL
        problem = kernel.make_problem_with_expected(5)
        assert kernel.validate(kernel.reference(problem.inputs), problem).passed

    def test_kernel_minimum_size(self):
        with pytest.raises(ValueError):
            JacobiKernel().generate_problem(2)


class TestConjugateGradient:
    def test_solves_dense_spd_system(self, rng):
        n = 12
        m = rng.standard_normal((n, n))
        a = m @ m.T + n * np.eye(n)
        x_true = rng.standard_normal(n)
        result = conjugate_gradient(a, a @ x_true, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_solves_csr_poisson_system(self, rng):
        matrix = poisson_2d(5)
        x_true = rng.standard_normal(25)
        b = matrix.to_dense() @ x_true
        result = conjugate_gradient(matrix, b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_accepts_matvec_callable(self, rng):
        a = np.diag(np.arange(1.0, 6.0))
        result = conjugate_gradient(lambda v: a @ v, np.ones(5), tol=1e-12)
        np.testing.assert_allclose(result.x, 1.0 / np.arange(1.0, 6.0), rtol=1e-8)

    def test_residual_history_is_recorded_and_decreases(self, rng):
        matrix = poisson_2d(4)
        b = rng.standard_normal(16)
        result = conjugate_gradient(matrix, b, tol=1e-12, record_history=True)
        assert len(result.residual_history) == result.iterations + 1
        assert result.residual_history[-1] < result.residual_history[0]

    def test_iteration_cap(self, rng):
        matrix = poisson_2d(5)
        b = rng.standard_normal(25)
        result = conjugate_gradient(matrix, b, tol=1e-16, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged

    def test_zero_rhs_converges_immediately(self):
        result = conjugate_gradient(np.eye(4), np.zeros(4))
        assert result.converged
        assert result.iterations == 0
        np.testing.assert_array_equal(result.x, np.zeros(4))

    def test_non_spd_operator_stops_gracefully(self):
        a = -np.eye(3)
        result = conjugate_gradient(a, np.ones(3), max_iterations=10)
        assert not result.converged

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            conjugate_gradient(np.eye(3), np.ones((3, 1)))
        with pytest.raises(ValueError):
            conjugate_gradient(np.ones((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            conjugate_gradient(np.eye(3), np.ones(3), x0=np.ones(4))

    def test_initial_guess_is_used(self, rng):
        a = np.diag([1.0, 2.0, 3.0])
        b = np.array([1.0, 4.0, 9.0])
        exact = np.array([1.0, 2.0, 3.0])
        result = conjugate_gradient(a, b, x0=exact.copy(), tol=1e-12)
        assert result.iterations == 0
        np.testing.assert_allclose(result.x, exact)

    def test_kernel_class_roundtrip_square(self):
        kernel = CgKernel()
        problem = kernel.make_problem_with_expected(16)
        assert problem.metadata["structure"] == "poisson2d"
        assert kernel.validate(kernel.reference(problem.inputs), problem).passed

    def test_kernel_class_roundtrip_random(self):
        kernel = CgKernel()
        problem = kernel.make_problem_with_expected(7)
        assert problem.metadata["structure"] == "random_spd"
        assert kernel.validate(kernel.reference(problem.inputs), problem).passed

    def test_kernel_minimum_size(self):
        with pytest.raises(ValueError):
            CgKernel().generate_problem(1)

    @given(n=st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_converges_on_diagonally_dominant_systems(self, n):
        rng = np.random.default_rng(n * 7)
        m = rng.standard_normal((n, n))
        a = m @ m.T + n * np.eye(n)
        x_true = rng.standard_normal(n)
        result = conjugate_gradient(a, a @ x_true, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-7)
