"""Tests for shardable ExperimentSpecs, manifests and mergeable ResultSets.

The load-bearing property (ISSUE 2 acceptance): any partition of the full
grid, evaluated under any backend and merged in any order, yields
``to_records()`` byte-identical to the unsharded serial run — and the CLI
``shard``/``merge`` round trip reproduces ``run`` output exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentSpec,
    Session,
    ShardEntry,
    ShardManifest,
    load_shard_payload,
    merge_shard_parts,
    merge_shard_payloads,
    shard_payload,
)
from repro.codex.config import CodexConfig, DEFAULT_SEED
from repro.core.runner import ResultSet
from repro.harness.cli import main
from repro.harness.io import save_records_json
from repro.models.grid import experiment_grid


class TestExperimentSpec:
    def test_default_spec_enumerates_the_full_grid(self):
        assert ExperimentSpec().cells() == experiment_grid()

    def test_enumeration_is_deterministic(self):
        spec = ExperimentSpec(languages=("cpp", "julia"), kernels=("axpy", "cg"))
        assert spec.cells() == spec.cells()

    def test_filters_restrict_the_grid(self):
        spec = ExperimentSpec(models=("cpp.openmp", "julia.threads"))
        cells = spec.cells()
        assert cells
        assert {cell.model for cell in cells} == {"cpp.openmp", "julia.threads"}

    def test_seed_normalisation_and_validation(self):
        assert ExperimentSpec(seeds=7).seeds == (7,)
        assert ExperimentSpec(seeds=[7, 8]).seeds == (7, 8)
        assert ExperimentSpec(seeds=7).seed == 7
        with pytest.raises(ValueError):
            ExperimentSpec(seeds=())
        with pytest.raises(ValueError):
            ExperimentSpec(seeds=(7, 7))
        with pytest.raises(ValueError):
            ExperimentSpec(seeds=(7, 8)).seed

    def test_unknown_coordinates_rejected(self):
        with pytest.raises(KeyError):
            ExperimentSpec(languages=("rust",))
        with pytest.raises(KeyError):
            ExperimentSpec(kernels=("fft",))
        with pytest.raises(KeyError):
            ExperimentSpec(models=("cpp.tbb",))

    def test_fingerprint_is_the_config_fingerprint(self):
        assert ExperimentSpec().fingerprint() == CodexConfig().fingerprint()
        budget = ExperimentSpec(config=CodexConfig(max_suggestions=3))
        assert budget.fingerprint() != ExperimentSpec().fingerprint()


class TestPartition:
    def test_partition_tiles_the_grid(self):
        spec = ExperimentSpec()
        cells = spec.cells()
        for n in (1, 2, 3, 4, 7, 205):
            shards = spec.partition(n)
            assert len(shards) == n
            rebuilt = [cell for shard in shards for cell in shard.cells()]
            assert rebuilt == cells
            sizes = [len(shard) for shard in shards]
            assert max(sizes) - min(sizes) <= 1

    def test_shard_accessor_matches_partition(self):
        spec = ExperimentSpec()
        for index in range(4):
            assert spec.shard(index, 4) == spec.partition(4)[index]
        with pytest.raises(IndexError):
            spec.shard(4, 4)
        with pytest.raises(ValueError):
            spec.partition(0)

    def test_multi_seed_partition_is_seed_major(self):
        spec = ExperimentSpec(seeds=(7, 8), languages=("julia",))
        shards = spec.partition(2)
        assert [shard.seed for shard in shards] == [7, 7, 8, 8]
        assert [shard.index for shard in shards] == [0, 1, 2, 3]
        for seed in (7, 8):
            covered = [cell for shard in shards if shard.seed == seed for cell in shard.cells()]
            assert covered == spec.cells()

    def test_manifest_of_a_partition_validates(self):
        manifest = ExperimentSpec().manifest(4)
        assert len(manifest.entries) == 4
        assert manifest.total_cells == len(experiment_grid())
        assert manifest.fingerprint == CodexConfig().fingerprint()


class TestShardManifest:
    def _entry(
        self, start, stop, *, seed=7, fingerprint="f" * 16, total=10, index=0, of=2,
        grid="g" * 16,
    ):
        return ShardEntry(
            seed=seed, fingerprint=fingerprint, index=index, of=of,
            start=start, stop=stop, total_cells=total, grid=grid,
        )

    def test_complete_cover_validates(self):
        manifest = ShardManifest.from_entries(
            [self._entry(5, 10, index=1), self._entry(0, 5, index=0)]
        )
        assert manifest.seeds == (7,)

    def test_gap_rejected(self):
        with pytest.raises(ValueError, match="missing cells"):
            ShardManifest.from_entries([self._entry(0, 4), self._entry(5, 10, index=1)])

    def test_missing_tail_rejected(self):
        with pytest.raises(ValueError, match="missing cells"):
            ShardManifest.from_entries([self._entry(0, 5)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            ShardManifest.from_entries([self._entry(0, 6), self._entry(5, 10, index=1)])

    def test_mixed_fingerprints_rejected(self):
        with pytest.raises(ValueError, match="fingerprints"):
            ShardManifest.from_entries(
                [self._entry(0, 5), self._entry(5, 10, fingerprint="g" * 16, index=1)]
            )

    def test_mixed_grid_sizes_rejected(self):
        with pytest.raises(ValueError, match="grid sizes"):
            ShardManifest.from_entries([self._entry(0, 5), self._entry(5, 9, total=9, index=1)])

    def test_mixed_cell_enumerations_rejected(self):
        with pytest.raises(ValueError, match="cell grids"):
            ShardManifest.from_entries(
                [self._entry(0, 5), self._entry(5, 10, grid="h" * 16, index=1)]
            )

    def test_merge_rejects_shards_of_different_specs(self):
        # Same fingerprint, same cell count, tiling slices — but different
        # grids: two machines that drifted on --kernels must not merge.
        axpy = ExperimentSpec(kernels=("axpy",))
        gemv = ExperimentSpec(kernels=("gemv",))
        assert len(axpy.cells()) == len(gemv.cells())
        parts = [
            (axpy.shard(0, 2).entry(), ResultSet(seed=DEFAULT_SEED)),
            (gemv.shard(1, 2).entry(), ResultSet(seed=DEFAULT_SEED)),
        ]
        with pytest.raises(ValueError, match="cell grids"):
            merge_shard_parts(parts)

    def test_empty_manifest_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ShardManifest.from_entries([])

    def test_slice_outside_grid_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ShardManifest.from_entries([self._entry(0, 11)])


class TestMergeDeterminism:
    """Satellite: any partition, merged in any order, under every backend,
    reproduces the unsharded serial run byte-for-byte."""

    def test_resultset_merge_reorders_canonically(self, full_results):
        reference = full_results.to_records()
        spec = ExperimentSpec()
        parts = []
        for shard in spec.partition(3):
            part = ResultSet(seed=DEFAULT_SEED)
            for result in full_results.results[shard.start : shard.stop]:
                part.add(result)
            parts.append(part)
        merged = ResultSet.merge(parts[2], parts[0], parts[1])
        assert merged.to_records() == reference

    def test_merge_rejects_mixed_seeds_and_duplicates(self, full_results):
        with pytest.raises(ValueError, match="seeds"):
            ResultSet.merge(ResultSet(seed=1), ResultSet(seed=2))
        with pytest.raises(ValueError, match="duplicate"):
            ResultSet.merge(full_results, full_results)
        with pytest.raises(ValueError):
            ResultSet.merge()

    @pytest.mark.parametrize("backend,n", [("serial", 3), ("thread", 2), ("process", 4)])
    def test_sharded_run_matches_unsharded_serial(self, full_results, backend, n):
        reference = full_results.to_records()
        spec = ExperimentSpec()
        with Session(seed=DEFAULT_SEED, backend=backend, max_workers=2) as session:
            parts = [(shard.entry(), session.run(shard)) for shard in spec.partition(n)]
        merged = merge_shard_parts(list(reversed(parts)))
        assert merged[DEFAULT_SEED].to_records() == reference

    def test_merge_validates_before_merging(self, full_results):
        spec = ExperimentSpec()
        shards = spec.partition(2)
        part = ResultSet(seed=DEFAULT_SEED)
        for result in full_results.results[: shards[0].stop]:
            part.add(result)
        with pytest.raises(ValueError, match="missing cells"):
            merge_shard_parts([(shards[0].entry(), part)])


class TestShardPayloads:
    def test_payload_roundtrip(self, full_results):
        spec = ExperimentSpec()
        shard = spec.shard(0, 4)
        part = ResultSet(seed=DEFAULT_SEED)
        for result in full_results.results[shard.start : shard.stop]:
            part.add(result)
        payload = json.loads(json.dumps(shard_payload(shard, part)))
        entry, rebuilt = load_shard_payload(payload)
        assert entry == shard.entry()
        assert rebuilt.to_records() == part.to_records()

    def test_payload_rejects_wrong_shapes(self, full_results):
        spec = ExperimentSpec()
        shard = spec.shard(0, 4)
        with pytest.raises(ValueError, match="cells"):
            shard_payload(shard, ResultSet(seed=DEFAULT_SEED))
        with pytest.raises(ValueError, match="seed"):
            shard_payload(shard, ResultSet(seed=DEFAULT_SEED + 1))
        with pytest.raises(ValueError, match="format"):
            load_shard_payload({"format": "something-else"})

    def test_merge_shard_payloads_from_fresh_runs(self, full_results):
        spec = ExperimentSpec(languages=("julia", "python"))
        with Session(seed=DEFAULT_SEED) as session:
            payloads = [
                shard_payload(shard, session.run(shard)) for shard in spec.partition(3)
            ]
            unsharded = session.run(spec)
        merged = merge_shard_payloads(reversed(payloads))
        assert merged[DEFAULT_SEED].to_records() == unsharded.to_records()


class TestCliShardMerge:
    """Acceptance: `repro shard --index i --of n` + `repro merge` over any
    n in {1, 2, 4} produces records byte-identical to the full run."""

    @pytest.fixture(scope="class")
    def reference_json(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reference") / "full.json"
        assert main(["run", "--json", str(path)]) == 0
        return path.read_bytes()

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_shard_merge_roundtrip_byte_identical(self, n, tmp_path, reference_json, capsys):
        parts = []
        for index in range(n):
            part = tmp_path / f"part{index}.json"
            assert main(["shard", "--index", str(index), "--of", str(n), "--out", str(part)]) == 0
            parts.append(str(part))
        merged = tmp_path / "merged.json"
        assert main(["merge", *parts, "--json", str(merged)]) == 0
        out = capsys.readouterr().out
        assert f"merged {n} shard(s) -> 204 cells" in out
        assert merged.read_bytes() == reference_json

    def test_merge_refuses_incomplete_set(self, tmp_path, capsys):
        part = tmp_path / "part0.json"
        assert main(["shard", "--index", "0", "--of", "2", "--out", str(part)]) == 0
        with pytest.raises(ValueError, match="missing cells"):
            main(["merge", str(part)])

    def test_merge_refuses_mixed_fingerprint_like_seeds(self, tmp_path):
        # Shards of different seeds are different runs: the CLI refuses them.
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["--seed", "1", "shard", "--index", "0", "--of", "2", "--out", str(a)]) == 0
        assert main(["--seed", "2", "shard", "--index", "1", "--of", "2", "--out", str(b)]) == 0
        with pytest.raises((SystemExit, ValueError)):
            main(["merge", str(a), str(b)])

    def test_shard_restricted_grid(self, tmp_path, capsys):
        part = tmp_path / "julia.json"
        assert (
            main(["shard", "--index", "0", "--of", "1", "--languages", "julia", "--out", str(part)])
            == 0
        )
        merged = tmp_path / "merged.json"
        assert main(["merge", str(part), "--json", str(merged)]) == 0
        with Session(seed=DEFAULT_SEED) as session:
            expected = session.run(ExperimentSpec(languages=("julia",)))
        assert save_records_json(expected, tmp_path / "expected.json").read_bytes() == \
            merged.read_bytes()
