"""Tests for the CUDA-C static hazard analyzer and its three consumers.

Covers the verdict lattice over adversarial kernels (races, out-of-bounds,
barrier divergence, uninitialized reads), the affine normalizer's edge
expressions (ternary indices, nested loop counters, int-overflow bounds),
the per-launch ``active_race_safe`` coord requirements, the lockstep elision
toggle, and the analysis-layer integration (``static_findings`` on verdicts,
the hazards extraction module, the ``race_injection`` mutation operator).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hazards import extract_cuda_sources, static_findings_for
from repro.analysis.verdict import SuggestionVerdict
from repro.corpus.mutations import apply_mutation
from repro.corpus.snippets import SnippetOrigin
from repro.corpus.store import default_corpus
from repro.sandbox.cuda_c import (
    CudaModule,
    lockstep_stats,
    parse_cuda_source,
    static_elision,
    static_elision_enabled,
)
from repro.sandbox.cuda_c.static import (
    HAZARD,
    SAFE,
    UNKNOWN,
    StaticReport,
    active_race_safe,
    analyze_kernel,
)


def _analyze(source: str, **profile) -> StaticReport:
    definitions = parse_cuda_source(source)
    ((_, definition),) = definitions.items()
    return analyze_kernel(definition, **profile)


AXPY_PROFILE = dict(
    grid=(1, 1, 1), block=(256, 1, 1), buffer_sizes={"x": 64, "y": 64}, scalar_args={"n": 64}
)


class TestVerdictLattice:
    def test_stock_axpy_fully_safe(self):
        report = _analyze(
            """
            __global__ void axpy(int n, double a, double* x, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = a * x[i] + y[i]; }
            }
            """,
            **AXPY_PROFILE,
        )
        assert report.verdict("write-write-race") == SAFE
        assert report.verdict("duplicate-scatter") == SAFE
        assert report.verdict("out-of-bounds") == SAFE
        assert report.verdict("barrier-divergence") == SAFE
        assert report.overall == SAFE
        assert "y" in report.race_safe

    def test_fixed_index_store_is_race_hazard(self):
        report = _analyze(
            """
            __global__ void axpy(int n, double a, double* x, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[0] = a * x[i] + y[0]; }
            }
            """
        )
        assert report.verdict("write-write-race") == HAZARD
        assert "y" not in report.race_safe

    def test_off_by_one_guard_is_oob_hazard_but_race_safe(self):
        report = _analyze(
            """
            __global__ void axpy(int n, double a, double* x, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i <= n) { y[i] = a * x[i] + y[i]; }
            }
            """,
            **AXPY_PROFILE,
        )
        assert report.verdict("out-of-bounds") == HAZARD
        assert report.verdict("write-write-race") == SAFE

    def test_barrier_under_lane_condition_is_hazard(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = 1.0; __syncthreads(); }
            }
            """
        )
        assert report.verdict("barrier-divergence") == HAZARD

    def test_barrier_on_uniform_path_is_safe(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (n > 2) { __syncthreads(); }
                if (i < n) { y[i] = 1.0; }
            }
            """
        )
        assert report.verdict("barrier-divergence") == SAFE

    def test_definitely_uninitialized_read_is_hazard(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                double acc;
                if (i < n) { y[i] = acc; }
            }
            """
        )
        assert report.verdict("uninitialized-read") == HAZARD

    def test_maybe_uninitialized_read_is_unknown(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                double acc;
                if (n > 3) { acc = 1.0; }
                if (i < n) { y[i] = acc; }
            }
            """
        )
        assert report.verdict("uninitialized-read") == UNKNOWN

    def test_guard_pinned_single_writer_is_safe(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i == 0) { y[0] = 1.0; }
            }
            """
        )
        assert report.verdict("write-write-race") == SAFE

    def test_atomic_target_is_unknown(self):
        report = _analyze(
            """
            __global__ void k(int n, double* x, double* out) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { atomicAdd(out, x[i]); }
            }
            """
        )
        assert report.verdict("write-write-race") == UNKNOWN


class TestAffineEdgeExpressions:
    def test_ternary_index_same_lin_both_arms_is_safe(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[(n > 2) ? i : i] = 1.0; }
            }
            """
        )
        assert report.verdict("write-write-race") == SAFE

    def test_ternary_index_different_arms_is_unknown(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[(n > 2) ? i : 0] = 1.0; }
            }
            """
        )
        assert report.verdict("write-write-race") == UNKNOWN

    def test_nested_loop_counter_index_is_unknown_not_hazard(self):
        # Every thread runs the same loops, so the store *does* race — but
        # the analyzer cannot prove lanes collide (loop trip counts are
        # symbolic), and must not claim SAFE either.
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) { y[i * n + j] = 1.0; }
                }
            }
            """
        )
        assert report.verdict("write-write-race") == UNKNOWN

    def test_grid_stride_style_loop_is_unknown(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                for (int j = i; j < n; j += 1) { y[j] = 1.0; }
            }
            """
        )
        assert report.verdict("write-write-race") == UNKNOWN

    def test_int_overflow_bound_is_oob_hazard(self):
        report = _analyze(
            """
            __global__ void k(int n, double* y) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i + 2147483647] = 1.0; }
            }
            """,
            grid=(1, 1, 1),
            block=(4, 1, 1),
            buffer_sizes={"y": 4},
            scalar_args={"n": 4},
        )
        assert report.verdict("out-of-bounds") == HAZARD

    def test_two_dimensional_guarded_store_is_safe(self):
        # gemm shape: the i<m && j<n guard refinement must survive to the
        # store classification (it is snapshotted per access — branch joins
        # deliberately drop refinements from the flowing state).
        report = _analyze(
            """
            __global__ void gemm(int m, int n, int k, double* A, double* B, double* C) {
                int i = blockIdx.y * blockDim.y + threadIdx.y;
                int j = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < m && j < n) {
                    double sum = 0.0;
                    for (int l = 0; l < k; l++) { sum += A[i * k + l] * B[l * n + j]; }
                    C[i * n + j] = sum;
                }
            }
            """
        )
        assert report.verdict("write-write-race") == SAFE
        assert "C" in report.race_safe


class TestActiveRaceSafe:
    SOURCE = """
        __global__ void axpy(int n, double a, double* x, double* y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }
    """

    def test_active_for_one_dimensional_launch(self):
        report = _analyze(self.SOURCE)
        assert active_race_safe(report, (4, 1, 1), (64, 1, 1)) == {"y"}

    def test_inactive_when_unused_coord_has_extent(self):
        # Two lanes differing only in threadIdx.y map to the same y[i]:
        # the 1D injectivity proof does not cover this launch.
        report = _analyze(self.SOURCE)
        assert active_race_safe(report, (4, 1, 1), (64, 2, 1)) == frozenset()


class TestReportPayload:
    def test_findings_round_trip_as_plain_dicts(self):
        report = _analyze(self.__class__.KERNEL, **AXPY_PROFILE)
        payload = report.to_payload()
        assert payload, "expected at least one finding"
        for finding in payload:
            assert set(finding) == {"kind", "verdict", "buffer", "detail", "line"}
            assert finding["verdict"] in (SAFE, HAZARD, UNKNOWN)

    KERNEL = """
        __global__ void axpy(int n, double a, double* x, double* y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }
    """


class TestLockstepElision:
    SOURCE = """
        __global__ void scale(int n, double a, double* y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { for (int t = 0; t < 8; t++) { y[i] = a * y[i]; } }
        }
    """

    def test_toggle_restores_previous_state(self):
        initial = static_elision_enabled()
        with static_elision(not initial):
            assert static_elision_enabled() is (not initial)
        assert static_elision_enabled() is initial

    def test_elided_launch_matches_tracked_launch(self):
        kernel = CudaModule(self.SOURCE).get_kernel("scale")
        rng = np.random.default_rng(7)
        base = rng.standard_normal(64)
        outputs = {}
        for enabled in (True, False):
            y = base.copy()
            with static_elision(enabled):
                kernel.launch((1,), (64,), (64, 1.001, y))
            outputs[enabled] = y.tobytes()
        assert outputs[True] == outputs[False]

    def test_elided_launches_are_counted(self):
        kernel = CudaModule(self.SOURCE).get_kernel("scale")
        before = lockstep_stats().get("launches_static_elided", 0)
        with static_elision(True):
            kernel.launch((1,), (64,), (64, 1.001, np.ones(64)))
        after = lockstep_stats().get("launches_static_elided", 0)
        assert after == before + 1

    def test_static_report_property(self):
        kernel = CudaModule(self.SOURCE).get_kernel("scale")
        report = kernel.static_report
        assert report is not None
        assert "y" in report.race_safe


class TestAnalysisIntegration:
    def test_extract_cuda_sources_finds_rawkernel_bodies(self):
        code = 'k = cp.RawKernel(r"""\n__global__ void f() {}\n""", "f")'
        sources = extract_cuda_sources(code)
        assert len(sources) == 1 and "__global__" in sources[0]

    def test_non_python_suggestions_get_no_findings(self):
        assert static_findings_for("__global__ void f() {}", "cpp", "axpy") == []

    def test_corpus_templates_all_proven_race_safe(self):
        corpus = default_corpus(include_mutations=False)
        checked = 0
        for snippet in corpus:
            if snippet.language != "python" or snippet.origin is not SnippetOrigin.TEMPLATE:
                continue
            if "RawKernel" not in snippet.code and "SourceModule" not in snippet.code:
                continue
            findings = static_findings_for(snippet.code, "python", snippet.kernel)
            races = [f for f in findings if f["kind"] == "write-write-race"]
            assert races, f"no race finding for {snippet.kernel}/{snippet.label_model}"
            assert all(f["verdict"] == SAFE for f in races), (snippet.kernel, races)
            checked += 1
        assert checked >= 8

    def test_verdict_payload_requires_static_findings(self):
        verdict = SuggestionVerdict(is_code=True, static_findings=[{"kind": "x"}])
        payload = verdict.to_payload()
        assert SuggestionVerdict.from_payload(payload).static_findings == [{"kind": "x"}]
        del payload["static_findings"]
        with pytest.raises(KeyError):
            SuggestionVerdict.from_payload(payload)

    def test_verdict_payload_rejects_non_dict_findings(self):
        payload = SuggestionVerdict(is_code=True).to_payload()
        payload["static_findings"] = ["HAZARD"]
        with pytest.raises(TypeError):
            SuggestionVerdict.from_payload(payload)


class TestRaceInjectionMutation:
    def test_applies_to_direct_store_cuda_templates_only(self):
        corpus = default_corpus(include_mutations=False)
        applied = {}
        for snippet in corpus:
            if snippet.origin is not SnippetOrigin.TEMPLATE:
                continue
            mutated = apply_mutation(snippet, "race_injection")
            if mutated is not None:
                applied[(snippet.kernel, snippet.label_model)] = mutated
                assert snippet.language == "python"
                assert not mutated.label_correct
                assert "[0]" in mutated.code
        kernels = {kernel for kernel, _ in applied}
        assert kernels == {"axpy", "gemv", "spmv"}

    def test_mutant_is_flagged_hazard_by_the_analyzer(self):
        corpus = default_corpus(include_mutations=False)
        template = next(
            s
            for s in corpus
            if s.kernel == "axpy" and s.label_model == "python.pycuda"
            and s.origin is SnippetOrigin.TEMPLATE
        )
        mutated = apply_mutation(template, "race_injection")
        findings = static_findings_for(mutated.code, "python", "axpy")
        assert any(
            f["kind"] == "write-write-race" and f["verdict"] == HAZARD for f in findings
        )
