"""Tests for the miniature CUDA-C interpreter (lexer, parser, execution)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sandbox.cuda_c import CudaModule, parse_cuda_source
from repro.sandbox.cuda_c.interpreter import CudaRuntimeError, Dim3
from repro.sandbox.cuda_c.lexer import CudaLexError, tokenize
from repro.sandbox.cuda_c.parser import CudaSyntaxError

AXPY_SRC = """
extern "C" __global__
void axpy(const int n, const double a, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"""

GEMV_SRC = """
__global__ void gemv(const int m, const int n, const double *A, const double *x, double *y)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < m) {
        double sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += A[i * n + j] * x[j];
        }
        y[i] = sum;
    }
}
"""


class TestLexer:
    def test_tokenizes_operators_and_identifiers(self):
        tokens = tokenize("int i = a + b;")
        texts = [t.text for t in tokens]
        assert texts == ["int", "i", "=", "a", "+", "b", ";"]

    def test_comments_are_skipped(self):
        tokens = tokenize("// hello\nint x; /* multi\nline */ double y;")
        texts = [t.text for t in tokens]
        assert "hello" not in texts
        assert "int" in texts and "double" in texts

    def test_numbers_with_suffixes(self):
        tokens = tokenize("x = 6.0f + 1e-3 + 42;")
        kinds = [t.kind for t in tokens if t.kind == "number"]
        assert len(kinds) == 3

    def test_keywords_are_classified(self):
        tokens = tokenize("__global__ void f()")
        assert tokens[0].kind == "keyword"

    def test_unexpected_character_raises(self):
        with pytest.raises(CudaLexError):
            tokenize("int x = `broken`;")


class TestParser:
    def test_parses_kernel_definition(self):
        kernels = parse_cuda_source(AXPY_SRC)
        assert set(kernels) == {"axpy"}
        kernel = kernels["axpy"]
        assert [p.name for p in kernel.params] == ["n", "a", "x", "y"]
        assert kernel.params[2].is_pointer
        assert not kernel.params[0].is_pointer
        assert "__global__" in kernel.qualifiers

    def test_parses_multiple_kernels(self):
        kernels = parse_cuda_source(AXPY_SRC + GEMV_SRC)
        assert set(kernels) == {"axpy", "gemv"}

    def test_syntax_error_raises(self):
        with pytest.raises(CudaSyntaxError):
            parse_cuda_source("__global__ void broken(int n) { int i = ; }")

    def test_unterminated_block_raises(self):
        with pytest.raises(CudaSyntaxError):
            parse_cuda_source("__global__ void f(int n) { if (n > 0) {")

    def test_unsupported_construct_raises(self):
        with pytest.raises(CudaSyntaxError):
            parse_cuda_source("__global__ void f(int n) { goto done; }")

    def test_parses_ternary_expression(self):
        kernels = parse_cuda_source(
            "__global__ void f(int n, double *y) { y[0] = n > 0 ? 1.0 : 2.0; }"
        )
        assert set(kernels) == {"f"}

    def test_ternary_missing_colon_raises(self):
        with pytest.raises(CudaSyntaxError):
            parse_cuda_source("__global__ void f(int n, double *y) { y[0] = n > 0 ? 1.0; }")


class TestDim3:
    def test_from_int(self):
        assert Dim3.from_value(7) == Dim3(7, 1, 1)

    def test_from_tuple(self):
        assert Dim3.from_value((2, 3)) == Dim3(2, 3, 1)
        assert Dim3.from_value((2, 3, 4)).total == 24

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Dim3.from_value((1, 2, 3, 4))


class TestExecution:
    def test_axpy_kernel_matches_numpy(self, rng):
        module = CudaModule(AXPY_SRC)
        kernel = module.get_kernel("axpy")
        n = 50
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        expected = 2.0 * x + y
        kernel.launch(( (n + 255) // 256, ), (256,), (n, 2.0, x, y))
        np.testing.assert_allclose(y, expected)

    def test_guard_prevents_out_of_bounds(self, rng):
        module = CudaModule(AXPY_SRC)
        kernel = module.get_kernel("axpy")
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        # Launch far more threads than elements; the guard must protect them.
        kernel.launch((4,), (64,), (10, 1.0, x, y))

    def test_missing_guard_raises_out_of_bounds(self, rng):
        src = AXPY_SRC.replace("if (i < n) {", "if (i < n + 256) {")
        kernel = CudaModule(src).get_kernel("axpy")
        x = rng.standard_normal(4)
        y = rng.standard_normal(4)
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (256,), (4, 1.0, x, y))

    def test_gemv_kernel_matches_numpy(self, rng):
        kernel = CudaModule(GEMV_SRC).get_kernel("gemv")
        m, n = 9, 7
        a = rng.standard_normal((m, n))
        x = rng.standard_normal(n)
        y = np.zeros(m)
        kernel.launch((1,), (32,), (m, n, a, x, y))
        np.testing.assert_allclose(y, a @ x)

    def test_2d_thread_indexing(self, rng):
        src = """
        __global__ void gemm(const int m, const int n, const int k,
                             const double *A, const double *B, double *C)
        {
            int i = blockIdx.y * blockDim.y + threadIdx.y;
            int j = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < m && j < n) {
                double sum = 0.0;
                for (int l = 0; l < k; l++) {
                    sum += A[i * k + l] * B[l * n + j];
                }
                C[i * n + j] = sum;
            }
        }
        """
        kernel = CudaModule(src).get_kernel("gemm")
        m, k, n = 5, 4, 6
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = np.zeros((m, n))
        kernel.launch((1, 1), (8, 8), (m, n, k, a, b, c))
        np.testing.assert_allclose(c, a @ b)

    def test_wrong_argument_count_raises(self):
        kernel = CudaModule(AXPY_SRC).get_kernel("axpy")
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (1,), (1, 2.0))

    def test_unknown_identifier_raises(self):
        src = "__global__ void f(int n, double *y) { y[0] = missing; }"
        kernel = CudaModule(src).get_kernel("f")
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (1,), (1, np.zeros(1)))

    def test_call_to_undefined_function_raises(self):
        src = "__global__ void f(int n, double *y) { y[0] = helper(n); }"
        kernel = CudaModule(src).get_kernel("f")
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (1,), (1, np.zeros(1)))

    def test_math_functions_available(self):
        src = "__global__ void f(int n, double *y) { y[0] = sqrt(16.0) + fabs(-2.0); }"
        kernel = CudaModule(src).get_kernel("f")
        y = np.zeros(1)
        kernel.launch((1,), (1,), (1, y))
        assert y[0] == pytest.approx(6.0)

    def test_while_loop_and_compound_assignment(self):
        src = """
        __global__ void f(const int n, double *y)
        {
            int i = 0;
            double acc = 0.0;
            while (i < n) {
                acc += 2.0;
                i++;
            }
            y[0] = acc;
        }
        """
        kernel = CudaModule(src).get_kernel("f")
        y = np.zeros(1)
        kernel.launch((1,), (1,), (5, y))
        assert y[0] == pytest.approx(10.0)

    def test_atomic_add(self):
        src = """
        __global__ void count(const int n, double *total)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                atomicAdd(total, 1.0);
            }
        }
        """
        kernel = CudaModule(src).get_kernel("count")
        total = np.zeros(1)
        kernel.launch((2,), (8,), (12, total))
        assert total[0] == pytest.approx(12.0)

    def test_integer_division_semantics(self):
        src = "__global__ void f(const int n, double *y) { int half = n / 2; y[0] = half; }"
        kernel = CudaModule(src).get_kernel("f")
        y = np.zeros(1)
        kernel.launch((1,), (1,), (7, y))
        assert y[0] == 3.0

    def test_step_budget_stops_runaway_loops(self):
        src = "__global__ void f(const int n, double *y) { while (1 < 2) { y[0] += 1.0; } }"
        kernel = CudaModule(src).get_kernel("f")
        kernel.max_thread_steps = 10_000
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (1,), (1, np.zeros(1)))

    def test_unknown_kernel_name(self):
        module = CudaModule(AXPY_SRC)
        with pytest.raises(KeyError):
            module.get_kernel("missing")

    def test_ternary_expression_evaluates(self):
        src = "__global__ void f(const int n, double *y) { y[0] = n > 3 ? n * 2.0 : 0.0 - n; }"
        kernel = CudaModule(src).get_kernel("f")
        y = np.zeros(1)
        kernel.launch((1,), (1,), (5, y))
        assert y[0] == pytest.approx(10.0)
        kernel.launch((1,), (1,), (2, y))
        assert y[0] == pytest.approx(-2.0)

    @given(n=st.integers(1, 64), a=st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_property_axpy_matches_numpy(self, n, a):
        rng = np.random.default_rng(n)
        kernel = CudaModule(AXPY_SRC).get_kernel("axpy")
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        expected = a * x + y
        kernel.launch(((n + 31) // 32,), (32,), (n, a, x, y))
        np.testing.assert_allclose(y, expected, rtol=1e-12, atol=1e-12)


class TestLockstepCompilation:
    def test_stock_kernels_compile_to_lockstep(self):
        for src, name in ((AXPY_SRC, "axpy"), (GEMV_SRC, "gemv")):
            assert CudaModule(src).get_kernel(name).lockstep is not None

    def test_unsupported_construct_stays_scalar_but_runs(self):
        # Member access on a non-builtin is outside the lane-value model:
        # the kernel must stay scalar-only yet execute unchanged.
        src = """
        __global__ void f(const int n, double *y)
        {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = gridDim.y + i; }
        }
        """
        supported = CudaModule(src).get_kernel("f")
        assert supported.lockstep is not None
        unsupported_src = src.replace("gridDim.y", "mystruct.y")
        kernel = CudaModule(unsupported_src).get_kernel("f")
        assert kernel.lockstep is None
        with pytest.raises(CudaRuntimeError):
            kernel.launch((1,), (8,), (4, np.zeros(4)))
