"""Tests for the pluggable cache backends, the cache server, and the
operational surface layered on :class:`~repro.analysis.store.ContentStore`.

Covers the tentpole guarantees of the backend seam:

* the stale-``_known`` regression: an external ``clear()``/compaction can
  no longer permanently suppress re-persistence — any miss forgets the
  digest, so the next ``put`` writes again;
* ``stats()``/``__repr__`` read the traffic counters under ``_lock``;
* read-only mode (``$REPRO_CACHE_READONLY``) serves lookups but never
  writes, and ``clear``/``compact`` refuse;
* ``compact()`` evicts exactly the stale-``ANALYSIS_VERSION``/aged/legacy
  entries and keeps the live generation;
* the shared remote tier: a ``cache-server`` populated by one store warms
  another with a cold local disk (zero sandbox executions, byte-identical
  records), namespaces stay disjoint, corrupt served entries degrade to
  recompute, and an unreachable server degrades to recompute without
  wedging the run (circuit breaker);
* the extended ``cache`` CLI: full stats dict, ``--result-store``
  targeting, ``compact``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis import store as store_module
from repro.analysis.analyzer import clear_verdict_memo
from repro.analysis.store import VerdictStore, default_store_path
from repro.analysis.verdict import SuggestionVerdict
from repro.api import Session
from repro.cache.backends import LocalBackend, RemoteBackend, TieredBackend
from repro.cache.server import CacheServer
from repro.codex.config import DEFAULT_SEED


def _verdict() -> SuggestionVerdict:
    return SuggestionVerdict(
        is_code=True,
        detected_models=("python.numpy",),
        uses_requested_model=True,
        math_correct=True,
        method="executed",
    )


def _key(code: str = "def axpy(a, x, y):\n    return a * x + y\n") -> tuple[str, str, str, str]:
    return (code, "python", "axpy", "python.numpy")


@pytest.fixture()
def server(tmp_path):
    with CacheServer(tmp_path / "served", port=0).start() as srv:
        yield srv


# ---------------------------------------------------------------------------
# The stale-_known regression (the bugfix this PR is named for)
# ---------------------------------------------------------------------------

class TestKnownInvalidation:
    def test_external_clear_cannot_suppress_represistence(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        assert len(store) == 1
        # Another process empties the directory behind this instance's back.
        VerdictStore(tmp_path).clear()
        assert len(store) == 0
        assert store.get(_key()) is None  # the miss must forget the digest...
        store.put(_key(), _verdict())  # ...so this re-persists
        assert len(store) == 1
        assert VerdictStore(tmp_path).get(_key()) == _verdict()

    def test_own_compaction_cannot_suppress_represistence(self, tmp_path, monkeypatch):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        monkeypatch.setattr(store_module, "ANALYSIS_VERSION", store_module.ANALYSIS_VERSION + 1)
        # Everything on disk is now a stale generation; compaction drops it.
        assert store.compact() == {"removed_stale": 1, "removed_aged": 0, "kept": 0}
        store.put(_key(), _verdict())  # compaction cleared _known -> re-persists
        assert len(store) == 1

    def test_corrupt_entry_miss_also_forgets_the_digest(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        [entry] = list(tmp_path.glob("??/*.json"))
        entry.write_text("not json at all")
        assert store.get(_key()) is None  # corrupt -> dropped + forgotten
        store.put(_key(), _verdict())
        assert store.get(_key()) == _verdict()


# ---------------------------------------------------------------------------
# Counter consistency
# ---------------------------------------------------------------------------

class _SpyLock:
    """A lock that counts acquisitions (delegates to a real lock)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._lock.__enter__()

    def __exit__(self, *exc_info):
        return self._lock.__exit__(*exc_info)


class TestLockedCounters:
    def test_stats_reads_counters_under_the_lock(self, tmp_path):
        store = VerdictStore(tmp_path)
        store._lock = _SpyLock()
        store.stats()
        assert store._lock.acquisitions == 1

    def test_repr_reads_counters_under_the_lock(self, tmp_path):
        store = VerdictStore(tmp_path)
        store._lock = _SpyLock()
        repr(store)
        assert store._lock.acquisitions == 1


# ---------------------------------------------------------------------------
# Read-only mode
# ---------------------------------------------------------------------------

class TestReadonly:
    def test_readonly_store_never_writes(self, tmp_path):
        VerdictStore(tmp_path).put(_key(), _verdict())
        ro = VerdictStore(tmp_path, readonly=True)
        assert ro.get(_key()) == _verdict()  # lookups still served
        ro.put(_key("fresh code"), _verdict())
        assert ro.writes == 0
        assert len(ro) == 1  # nothing new on disk
        assert ro.stats()["readonly"] is True

    def test_readonly_from_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_READONLY", "1")
        ro = VerdictStore(tmp_path)
        assert ro.readonly
        ro.put(_key(), _verdict())
        assert len(ro) == 0
        monkeypatch.setenv("REPRO_CACHE_READONLY", "0")
        assert not VerdictStore(tmp_path).readonly

    def test_readonly_refuses_clear_and_compact(self, tmp_path):
        ro = VerdictStore(tmp_path, readonly=True)
        with pytest.raises(RuntimeError):
            ro.clear()
        with pytest.raises(RuntimeError):
            ro.compact()

    def test_readonly_store_does_not_create_the_directory(self, tmp_path):
        missing = tmp_path / "never-created"
        ro = VerdictStore(missing, readonly=True)
        assert not missing.exists()
        assert ro.get(_key()) is None  # plain miss, no error


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

class TestCompact:
    def test_compact_evicts_only_stale_generation_entries(self, tmp_path, monkeypatch):
        monkeypatch.setattr(store_module, "ANALYSIS_VERSION", 1)
        VerdictStore(tmp_path).put(_key("old generation"), _verdict())
        monkeypatch.undo()
        store = VerdictStore(tmp_path)
        store.put(_key("live generation"), _verdict())
        assert len(store) == 2
        assert store.compact() == {"removed_stale": 1, "removed_aged": 0, "kept": 1}
        assert store.get(_key("live generation")) == _verdict()

    def test_compact_evicts_aged_entries(self, tmp_path):
        import os

        store = VerdictStore(tmp_path)
        store.put(_key("ancient"), _verdict())
        store.put(_key("recent"), _verdict())
        now = 1_000_000.0
        ancient = VerdictStore.digest(_key("ancient"))
        os.utime(tmp_path / ancient[:2] / f"{ancient}.json", (now - 5000, now - 5000))
        recent = VerdictStore.digest(_key("recent"))
        os.utime(tmp_path / recent[:2] / f"{recent}.json", (now - 10, now - 10))
        outcome = store.compact(max_age=3600, now=now)
        assert outcome == {"removed_stale": 0, "removed_aged": 1, "kept": 1}
        assert store.get(_key("recent")) == _verdict()
        assert store.get(_key("ancient")) is None

    def test_untagged_legacy_entries_count_as_stale(self, tmp_path):
        store = VerdictStore(tmp_path)
        store.put(_key(), _verdict())
        [entry] = list(tmp_path.glob("??/*.json"))
        payload = json.loads(entry.read_text())
        del payload["analysis"]  # an entry written before the tag existed
        entry.write_text(json.dumps(payload))
        assert store.compact() == {"removed_stale": 1, "removed_aged": 0, "kept": 0}


# ---------------------------------------------------------------------------
# The cache server and the remote backend
# ---------------------------------------------------------------------------

class TestCacheServer:
    def test_remote_backend_round_trip(self, server):
        remote = RemoteBackend(server.url, namespace="verdicts")
        digest = "ab" * 32
        assert remote.get(digest) is None  # 404: a plain miss...
        assert remote.available()  # ...that must not trip the breaker
        assert remote.put(digest, b'{"v": 1}')
        assert remote.get(digest) == b'{"v": 1}'
        assert remote.exists(digest)
        remote.discard(digest)
        assert remote.get(digest) is None
        counters = remote.counters()
        assert counters["kind"] == "remote"
        assert counters["get_hits"] == 1 and counters["puts"] == 1

    def test_namespaces_are_disjoint(self, server):
        digest = "cd" * 32
        RemoteBackend(server.url, namespace="verdicts").put(digest, b'{"ns": "verdicts"}')
        assert RemoteBackend(server.url, namespace="results").get(digest) is None

    def test_server_rejects_malformed_requests(self, server):
        for url in (
            f"{server.url}/v1/verdicts/not-a-digest",
            f"{server.url}/v1/UPPER/{'ab' * 32}",
            f"{server.url}/unversioned",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 400
            excinfo.value.close()

    def test_server_rejects_non_json_bodies(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/verdicts/{'ef' * 32}", data=b"not json", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        excinfo.value.close()

    def test_readonly_server_refuses_writes(self, tmp_path):
        digest = "12" * 32
        with CacheServer(tmp_path / "ro", port=0, readonly=True).start() as srv:
            remote = RemoteBackend(srv.url, namespace="verdicts")
            assert not remote.put(digest, b'{"v": 1}')  # 403 -> skipped write
            assert remote.available()  # a 4xx is the server talking, not down

    def test_server_stats_endpoint(self, server):
        RemoteBackend(server.url, namespace="verdicts").put("ab" * 32, b'{"v": 1}')
        with urllib.request.urlopen(f"{server.url}/v1/stats") as response:
            stats = json.loads(response.read())
        assert stats["namespaces"]["verdicts"]["entries"] == 1
        assert stats["requests"]["puts"] == 1

    def test_unreachable_server_trips_the_circuit_breaker(self):
        remote = RemoteBackend("http://127.0.0.1:9", timeout=0.5, cooldown=60.0)
        assert remote.get("ab" * 32) is None  # refused connection -> miss
        assert not remote.available()  # breaker open: no per-entry stalls
        assert not remote.put("ab" * 32, b"{}")  # short-circuits locally
        assert remote.counters()["errors"] == 1  # the put never went out

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            RemoteBackend("ftp://example.invalid/cache")


# ---------------------------------------------------------------------------
# Tiered stores: warm-from-remote, degradation, self-healing
# ---------------------------------------------------------------------------

class TestTieredStore:
    def test_put_populates_local_and_remote(self, tmp_path, server):
        store = VerdictStore(tmp_path / "local", remote=server.url)
        assert isinstance(store.backend, TieredBackend)
        store.put(_key(), _verdict())
        assert len(store) == 1  # local copy
        digest = VerdictStore.digest(_key())
        assert (server.root / "verdicts" / digest[:2] / f"{digest}.json").exists()

    def test_cold_local_disk_warms_from_the_remote(self, tmp_path, server):
        VerdictStore(tmp_path / "machine-a", remote=server.url).put(_key(), _verdict())
        fresh = VerdictStore(tmp_path / "machine-b", remote=server.url)
        assert fresh.get(_key()) == _verdict()  # served by the remote
        assert len(fresh) == 1  # ...and read through into the local layer
        assert fresh.get(_key()) == _verdict()
        assert fresh.backend.remote.counters()["gets"] == 1  # second hit was local

    def test_readonly_warm_from_remote_does_not_fill_local(self, tmp_path, server):
        VerdictStore(tmp_path / "writer", remote=server.url).put(_key(), _verdict())
        local = tmp_path / "reader"
        local.mkdir()
        ro = VerdictStore(local, remote=server.url, readonly=True)
        assert ro.get(_key()) == _verdict()
        assert len(ro) == 0  # no read-through fill in read-only mode

    def test_corrupt_remote_entry_degrades_to_recompute(self, tmp_path, server):
        from repro.atomicio import write_atomic_bytes

        digest = VerdictStore.digest(_key())
        served = server.root / "verdicts" / digest[:2] / f"{digest}.json"
        served.parent.mkdir(parents=True)
        # Valid JSON, wrong key: the fleet's cache somehow serves garbage.
        write_atomic_bytes(served, b'{"schema": 1, "foreign": true}')
        store = VerdictStore(tmp_path / "local", remote=server.url)
        assert store.get(_key()) is None  # validation rejects it -> miss
        assert len(store) == 0  # the read-through fill was dropped again
        store.put(_key(), _verdict())  # recompute overwrites both layers
        assert store.get(_key()) == _verdict()
        assert json.loads(served.read_bytes())["kernel"] == "axpy"

    def test_remote_down_degrades_to_local_only(self, tmp_path):
        store = VerdictStore(tmp_path / "local", remote="http://127.0.0.1:9")
        store.backend.remote.timeout = 0.5
        store.put(_key(), _verdict())  # remote put fails; local still lands
        assert store.get(_key()) == _verdict()
        assert VerdictStore(tmp_path / "local").get(_key()) == _verdict()

    def test_result_store_uses_its_own_namespace(self, tmp_path, server):
        from repro.dispatch.store import ResultStore

        verdicts = VerdictStore(tmp_path / "v", remote=server.url)
        results = ResultStore(tmp_path / "r", remote=server.url)
        assert verdicts.backend.remote.namespace == "verdicts"
        assert results.backend.remote.namespace == "results"

    def test_coerce_accepts_a_cache_server_url(self, tmp_path, monkeypatch, server):
        from repro.dispatch.store import ResultStore

        monkeypatch.setenv("REPRO_VERDICT_STORE", str(tmp_path / "v"))
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "r"))
        vstore = VerdictStore.coerce(server.url)
        assert vstore.path == default_store_path()
        assert isinstance(vstore.backend, TieredBackend)
        rstore = ResultStore.coerce(server.url)
        assert rstore.path == tmp_path / "r"
        assert rstore.backend.remote.namespace == "results"

    def test_remote_tier_from_the_environment(self, tmp_path, monkeypatch, server):
        monkeypatch.setenv("REPRO_CACHE_URL", str(server.url))
        store = VerdictStore(tmp_path / "local")
        assert isinstance(store.backend, TieredBackend)
        monkeypatch.delenv("REPRO_CACHE_URL")
        assert isinstance(VerdictStore(tmp_path / "local").backend, LocalBackend)


# ---------------------------------------------------------------------------
# End to end: sessions sharing a remote cache
# ---------------------------------------------------------------------------

class TestSessionWarmFromRemote:
    def test_cold_local_store_zero_executions_and_identical_records(
        self, tmp_path, monkeypatch, server
    ):
        monkeypatch.setenv("REPRO_CACHE_URL", str(server.url))
        clear_verdict_memo()
        try:
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "machine-a") as cold:
                cold_records = cold.language_results("python").to_records()
                assert cold.sandbox_executions > 0
            clear_verdict_memo()  # a different machine: empty memo...
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "machine-b") as warm:
                # ...empty local disk, warm shared remote.
                assert warm.language_results("python").to_records() == cold_records
                assert warm.sandbox_executions == 0
                assert warm.store_hits > 0
        finally:
            clear_verdict_memo()

    def test_unreachable_remote_still_completes_correctly(self, tmp_path, monkeypatch):
        clear_verdict_memo()
        try:
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "baseline") as plain:
                expected = plain.language_results("python").to_records()
            clear_verdict_memo()
            monkeypatch.setenv("REPRO_CACHE_URL", "http://127.0.0.1:9")
            with Session(seed=DEFAULT_SEED, verdict_store=tmp_path / "degraded") as degraded:
                store = degraded.verdict_store
                store.backend.remote.timeout = 0.5
                assert degraded.language_results("python").to_records() == expected
                assert degraded.sandbox_executions > 0  # recomputed, not wedged
        finally:
            clear_verdict_memo()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCliCacheExtended:
    def test_cache_stats_prints_the_full_stats_dict(self, tmp_path, capsys):
        from repro.harness.cli import main

        store_arg = str(tmp_path / "store")
        VerdictStore(store_arg).put(_key(), _verdict())
        assert main(["--verdict-store", store_arg, "cache", "stats"]) == 0
        out = capsys.readouterr().out
        for field in ("hits", "misses", "writes", "readonly", "backend"):
            assert field in out, field
        assert "local:" in out

    def test_cache_result_store_stats_clear_compact(self, tmp_path, capsys):
        from repro.api import ExperimentSpec
        from repro.dispatch.store import ResultStore
        from repro.harness.cli import main

        store_dir = tmp_path / "results"
        spec = ExperimentSpec(seeds=(7,), languages=("julia",))
        shard = spec.shard(0, 2)
        with Session(seed=7) as session:
            ResultStore(store_dir).put(shard.entry(), session.run(shard))

        assert main(["cache", "stats", "--result-store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "result store" in out and "entries  1" in out
        assert main(["cache", "compact", "--result-store", str(store_dir)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert len(ResultStore(store_dir)) == 1  # live generation kept
        assert main(["cache", "clear", "--result-store", str(store_dir)]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert len(ResultStore(store_dir)) == 0

    def test_cache_compact_requires_an_explicit_store(self, tmp_path, monkeypatch):
        from repro.harness.cli import main

        monkeypatch.setenv("REPRO_VERDICT_STORE", str(tmp_path / "default-store"))
        VerdictStore(tmp_path / "default-store").put(_key(), _verdict())
        with pytest.raises(SystemExit):
            main(["cache", "compact"])  # forgotten flag must not evict the default store
        assert len(VerdictStore(tmp_path / "default-store")) == 1

    def test_cache_clear_refuses_in_readonly_mode(self, tmp_path, monkeypatch):
        from repro.harness.cli import main

        store_arg = str(tmp_path / "store")
        VerdictStore(store_arg).put(_key(), _verdict())
        monkeypatch.setenv("REPRO_CACHE_READONLY", "1")
        with pytest.raises(SystemExit):
            main(["--verdict-store", store_arg, "cache", "clear"])
        monkeypatch.delenv("REPRO_CACHE_READONLY")
        assert len(VerdictStore(store_arg)) == 1
