"""Tests for the dense kernels: AXPY, GEMV, GEMM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels.axpy import AxpyKernel, axpy, axpy_inplace
from repro.kernels.base import KernelComplexity
from repro.kernels.gemm import GemmKernel, gemm, gemm_blocked
from repro.kernels.gemv import GemvKernel, gemv


class TestAxpyFunction:
    def test_matches_numpy_expression(self, rng):
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)
        np.testing.assert_allclose(axpy(2.5, x, y), 2.5 * x + y)

    def test_does_not_mutate_inputs(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        y_copy = y.copy()
        axpy(1.0, x, y)
        np.testing.assert_array_equal(y, y_copy)

    def test_inplace_variant_mutates_y(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        expected = 3.0 * x + y
        result = axpy_inplace(3.0, x, y)
        assert result is y
        np.testing.assert_allclose(y, expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            axpy(1.0, np.zeros(3), np.zeros(4))

    def test_zero_scalar_returns_y(self, rng):
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        np.testing.assert_allclose(axpy(0.0, x, y), y)

    @given(
        a=st.floats(-10, 10, allow_nan=False),
        x=arrays(np.float64, st.integers(1, 50), elements=st.floats(-1e3, 1e3)),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_reference(self, a, x):
        y = np.ones_like(x)
        np.testing.assert_allclose(axpy(a, x, y), a * x + y, rtol=1e-12, atol=1e-9)


class TestAxpyKernelClass:
    kernel = AxpyKernel()

    def test_spec(self):
        assert self.kernel.spec.name == "axpy"
        assert self.kernel.spec.complexity is KernelComplexity.TRIVIAL

    def test_problem_roundtrip(self):
        problem = self.kernel.generate_problem(32)
        result = self.kernel.reference(problem.inputs)
        assert self.kernel.validate(result, problem).passed

    def test_validation_rejects_wrong_result(self):
        problem = self.kernel.generate_problem(16)
        wrong = problem.expected + 1.0
        assert not self.kernel.validate(wrong, problem).passed

    def test_problem_size_validation(self):
        with pytest.raises(ValueError):
            self.kernel.generate_problem(0)

    def test_matches_token_synonyms(self):
        assert self.kernel.spec.matches_token("daxpy")
        assert self.kernel.spec.matches_token("AXPY")
        assert not self.kernel.spec.matches_token("gemv")


class TestGemv:
    kernel = GemvKernel()

    def test_matches_numpy(self, rng):
        a = rng.standard_normal((7, 5))
        x = rng.standard_normal(5)
        y = rng.standard_normal(7)
        expected = 1.5 * a @ x + 0.5 * y
        np.testing.assert_allclose(gemv(1.5, a, x, 0.5, y), expected)

    def test_beta_zero_ignores_y(self, rng):
        a = rng.standard_normal((4, 3))
        x = rng.standard_normal(3)
        np.testing.assert_allclose(gemv(2.0, a, x), 2.0 * a @ x)

    def test_beta_nonzero_requires_y(self, rng):
        a = rng.standard_normal((4, 3))
        x = rng.standard_normal(3)
        with pytest.raises(ValueError):
            gemv(1.0, a, x, 0.5, None)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            gemv(1.0, rng.standard_normal((4, 3)), rng.standard_normal(4))

    def test_rejects_non_2d_matrix(self, rng):
        with pytest.raises(ValueError):
            gemv(1.0, rng.standard_normal(4), rng.standard_normal(4))

    def test_problem_roundtrip(self):
        problem = self.kernel.make_problem_with_expected(20)
        assert self.kernel.validate(self.kernel.reference(problem.inputs), problem).passed

    def test_complexity_class(self):
        assert self.kernel.spec.complexity is KernelComplexity.SIMPLE

    @given(m=st.integers(1, 12), n=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_shapes(self, m, n):
        rng = np.random.default_rng(m * 100 + n)
        a = rng.standard_normal((m, n))
        x = rng.standard_normal(n)
        result = gemv(1.0, a, x)
        assert result.shape == (m,)
        np.testing.assert_allclose(result, a @ x)


class TestGemm:
    kernel = GemmKernel()

    def test_matches_numpy(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        c = rng.standard_normal((6, 5))
        expected = 2.0 * a @ b + 0.25 * c
        np.testing.assert_allclose(gemm(2.0, a, b, 0.25, c), expected)

    def test_inner_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            gemm(1.0, rng.standard_normal((3, 4)), rng.standard_normal((5, 2)))

    def test_beta_requires_c(self, rng):
        with pytest.raises(ValueError):
            gemm(1.0, rng.standard_normal((3, 4)), rng.standard_normal((4, 2)), 0.5, None)

    def test_wrong_c_shape_raises(self, rng):
        with pytest.raises(ValueError):
            gemm(1.0, rng.standard_normal((3, 4)), rng.standard_normal((4, 2)), 1.0,
                 rng.standard_normal((2, 2)))

    def test_blocked_variant_matches(self, rng):
        a = rng.standard_normal((70, 50))
        b = rng.standard_normal((50, 60))
        c = rng.standard_normal((70, 60))
        np.testing.assert_allclose(
            gemm_blocked(1.2, a, b, 0.3, c, block=16),
            gemm(1.2, a, b, 0.3, c),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_blocked_variant_requires_matching_inner_dims(self, rng):
        with pytest.raises(ValueError):
            gemm_blocked(1.0, rng.standard_normal((4, 3)), rng.standard_normal((4, 3)))

    def test_problem_roundtrip(self):
        problem = self.kernel.make_problem_with_expected(12)
        assert self.kernel.validate(self.kernel.reference(problem.inputs), problem).passed

    def test_complexity_class(self):
        assert self.kernel.spec.complexity is KernelComplexity.MODERATE

    @given(m=st.integers(1, 8), k=st.integers(1, 8), n=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_matmul(self, m, k, n):
        rng = np.random.default_rng(m * 121 + k * 11 + n)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        np.testing.assert_allclose(gemm(1.0, a, b), a @ b, rtol=1e-12, atol=1e-12)
