"""Tests for the shard-level result store and streamed incremental merging.

Mirrors ``tests/test_verdict_store.py`` one layer up: a
:class:`repro.dispatch.store.ResultStore` must round-trip whole shard
payloads through disk and degrade every failure mode — truncation,
corruption, foreign entries, schema bumps, ``ANALYSIS_VERSION`` bumps — to
re-evaluation, never to wrong records; and the streamed
:class:`repro.api.IncrementalMerge` must produce byte-identical merged
records whatever order shards complete in.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import ExperimentSpec, IncrementalMerge, Session
from repro.codex.config import CodexConfig, DEFAULT_SEED
from repro.core.runner import ResultSet
from repro.dispatch import store as result_store_module
from repro.dispatch.store import ResultStore, default_result_store_path


@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(seeds=(DEFAULT_SEED,), languages=("julia",))


@pytest.fixture(scope="module")
def evaluated_shards(spec):
    """Both halves of the julia grid, evaluated once for the module."""
    with Session(seed=DEFAULT_SEED) as session:
        return [(shard, session.run(shard)) for shard in spec.partition(2)]


@pytest.fixture(scope="module")
def unsharded_records(spec):
    with Session(seed=DEFAULT_SEED) as session:
        return session.run(spec).to_records()


# ---------------------------------------------------------------------------
# Round trip and keying
# ---------------------------------------------------------------------------

class TestResultStoreRoundTrip:
    def test_put_get_round_trip(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        store = ResultStore(tmp_path)
        assert store.get(shard.entry()) is None
        store.put(shard.entry(), results)
        loaded = store.get(shard.entry())
        assert loaded.to_records() == results.to_records()
        assert loaded.seed == results.seed
        assert len(store) == 1
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_get_returns_fresh_sets(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        store = ResultStore(tmp_path)
        store.put(shard.entry(), results)
        first = store.get(shard.entry())
        second = store.get(shard.entry())
        assert first is not second
        assert first.to_records() == second.to_records()

    def test_distinct_shard_identities_do_not_collide(self, tmp_path, spec, evaluated_shards):
        import dataclasses

        shard, results = evaluated_shards[0]
        store = ResultStore(tmp_path)
        store.put(shard.entry(), results)
        entry = shard.entry()
        other_slice = spec.partition(2)[1].entry()
        for other in (
            other_slice,
            dataclasses.replace(entry, seed=entry.seed + 1),
            dataclasses.replace(entry, fingerprint="f" * 16),
            dataclasses.replace(entry, grid="g" * 16),
            dataclasses.replace(entry, total_cells=entry.total_cells + 1),
        ):
            assert store.get(other) is None, other

    def test_put_is_idempotent_across_instances(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        second = ResultStore(tmp_path)
        second.put(shard.entry(), results)
        assert second.writes == 0  # existing entry detected, not rewritten
        assert len(second) == 1

    def test_put_rejects_mismatched_payloads(self, tmp_path, evaluated_shards):
        (shard, results), (_, other_results) = evaluated_shards
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.put(shard.entry(), ResultSet(seed=shard.seed))  # wrong count
        short = ResultSet(seed=shard.seed + 1)
        for result in results:
            short.add(result)
        with pytest.raises(ValueError):
            store.put(shard.entry(), short)  # wrong seed

    def test_default_store_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "env-store"))
        assert default_result_store_path() == tmp_path / "env-store"

    def test_coerce(self, tmp_path, monkeypatch):
        assert ResultStore.coerce(None) is None
        assert ResultStore.coerce(False) is None
        store = ResultStore(tmp_path)
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(tmp_path).path == tmp_path
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "auto"))
        assert ResultStore.coerce(True).path == tmp_path / "auto"

    def test_stats_and_clear(self, tmp_path, evaluated_shards):
        store = ResultStore(tmp_path)
        for shard, results in evaluated_shards:
            store.put(shard.entry(), results)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["schema"] == result_store_module.RESULT_STORE_SCHEMA
        assert store.clear() == 2
        assert len(store) == 0
        assert ResultStore(tmp_path).get(evaluated_shards[0][0].entry()) is None


# ---------------------------------------------------------------------------
# Corruption, versioning and races: always degrade to re-evaluation
# ---------------------------------------------------------------------------

class TestResultStoreDegradation:
    def _entry_file(self, tmp_path):
        [entry] = list(tmp_path.glob("??/*.json"))
        return entry

    def test_truncated_entry_is_a_miss_and_dropped(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        entry = self._entry_file(tmp_path)
        entry.write_text(entry.read_text()[:40])
        fresh = ResultStore(tmp_path)
        assert fresh.get(shard.entry()) is None
        assert not entry.exists()  # corrupt entry removed, next put re-evaluates
        fresh.put(shard.entry(), results)
        assert ResultStore(tmp_path).get(shard.entry()).to_records() == results.to_records()

    def test_non_json_garbage_is_a_miss(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        self._entry_file(tmp_path).write_text("\x00\x01 not json")
        assert ResultStore(tmp_path).get(shard.entry()) is None

    def test_entry_for_a_different_shard_is_rejected(self, tmp_path, evaluated_shards):
        # Simulate a digest collision / foreign file: valid JSON, wrong slice.
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        entry = self._entry_file(tmp_path)
        payload = json.loads(entry.read_text())
        payload["entry"]["cell_slice"] = [payload["entry"]["cell_slice"][0] + 1,
                                          payload["entry"]["cell_slice"][1] + 1]
        entry.write_text(json.dumps(payload))
        assert ResultStore(tmp_path).get(shard.entry()) is None

    def test_record_count_mismatch_is_rejected(self, tmp_path, evaluated_shards):
        # A payload that lost records (partial writer) must never feed a
        # short shard into a merge.
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        entry = self._entry_file(tmp_path)
        payload = json.loads(entry.read_text())
        payload["records"] = payload["records"][:-1]
        entry.write_text(json.dumps(payload))
        assert ResultStore(tmp_path).get(shard.entry()) is None

    def test_transient_read_error_is_a_miss_but_keeps_the_entry(
        self, tmp_path, monkeypatch, evaluated_shards
    ):
        from pathlib import Path

        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        entry = self._entry_file(tmp_path)

        def flaky_read_bytes(self, *args, **kwargs):
            raise OSError("Input/output error")

        reader = ResultStore(tmp_path)
        monkeypatch.setattr(Path, "read_bytes", flaky_read_bytes)
        assert reader.get(shard.entry()) is None  # transient failure -> plain miss
        monkeypatch.undo()
        assert entry.exists()  # ... the shared entry was NOT destroyed
        assert reader.get(shard.entry()).to_records() == results.to_records()

    def test_schema_version_bump_invalidates_old_entries(
        self, tmp_path, monkeypatch, evaluated_shards
    ):
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        assert ResultStore(tmp_path).get(shard.entry()) is not None
        monkeypatch.setattr(
            result_store_module,
            "RESULT_STORE_SCHEMA",
            result_store_module.RESULT_STORE_SCHEMA + 1,
        )
        bumped = ResultStore(tmp_path)
        assert bumped.get(shard.entry()) is None  # old entry unreachable -> re-evaluate
        bumped.put(shard.entry(), results)
        assert bumped.get(shard.entry()).to_records() == results.to_records()

    def test_analysis_version_bump_invalidates_old_entries(
        self, tmp_path, monkeypatch, evaluated_shards
    ):
        # Pipeline *behavior* changes must orphan stale shard payloads, the
        # same way they orphan stale verdicts: records computed by an older
        # analyzer must never short-circuit a newer driver.
        shard, results = evaluated_shards[0]
        ResultStore(tmp_path).put(shard.entry(), results)
        monkeypatch.setattr(
            result_store_module, "ANALYSIS_VERSION", result_store_module.ANALYSIS_VERSION + 1
        )
        current = ResultStore(tmp_path)
        assert current.get(shard.entry()) is None
        current.put(shard.entry(), results)
        assert current.get(shard.entry()) is not None
        assert len(current) == 2  # old entry orphaned, not misread

    def test_put_fails_soft_when_the_directory_is_unwritable(
        self, tmp_path, monkeypatch, evaluated_shards
    ):
        from pathlib import Path

        shard, results = evaluated_shards[0]
        store = ResultStore(tmp_path)

        def broken_mkdir(self, *args, **kwargs):
            raise OSError("read-only file system")

        monkeypatch.setattr(Path, "mkdir", broken_mkdir)
        store.put(shard.entry(), results)  # dispatch must not fail on cache IO
        assert store.writes == 0

    def test_racing_writers_on_the_same_shard_never_corrupt(self, tmp_path, evaluated_shards):
        shard, results = evaluated_shards[0]
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def writer() -> None:
            try:
                barrier.wait()
                # A fresh instance defeats the _known shortcut, so both
                # threads really race the same entry file.
                ResultStore(tmp_path).put(shard.entry(), results)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert ResultStore(tmp_path).get(shard.entry()).to_records() == results.to_records()
        assert not list(tmp_path.glob("??/.*.tmp"))  # no leaked temp files


# ---------------------------------------------------------------------------
# Streamed partial merges: any completion order, one canonical result
# ---------------------------------------------------------------------------

class TestIncrementalMerge:
    def _parts(self, spec, n=4):
        with Session(seed=DEFAULT_SEED) as session:
            return [(shard.entry(), session.run(shard)) for shard in spec.partition(n)]

    def test_merge_order_invariance(self, spec, unsharded_records):
        parts = self._parts(spec)
        orders = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [2, 0, 3, 1],
            [1, 3, 0, 2],
        ]
        for order in orders:
            merge = IncrementalMerge()
            for position in order:
                merge.add(*parts[position])
            assert merge.is_complete()
            merged = merge.merged()[DEFAULT_SEED]
            assert merged.to_records() == unsharded_records, order

    def test_partial_view_is_canonical_at_every_step(self, spec, unsharded_records):
        parts = self._parts(spec)
        merge = IncrementalMerge()
        done: list[tuple[int, int]] = []
        for entry, results in reversed(parts):
            merge.add(entry, results)
            done.append((entry.start, entry.stop))
            partial = merge.partial()[DEFAULT_SEED]
            expected = [
                record
                for (start, stop) in sorted(done)
                for record in unsharded_records[start:stop]
            ]
            assert partial.to_records() == expected
        assert merge.cells_merged == len(unsharded_records)

    def test_merged_refuses_incomplete_sets(self, spec):
        parts = self._parts(spec)
        merge = IncrementalMerge()
        merge.add(*parts[0])
        merge.add(*parts[2])
        assert not merge.is_complete()
        with pytest.raises(ValueError):
            merge.merged()
        assert len(merge) == 2

    def test_duplicate_shard_rejected_at_add_time(self, spec):
        parts = self._parts(spec)
        merge = IncrementalMerge()
        merge.add(*parts[0])
        with pytest.raises(ValueError):
            merge.add(*parts[0])

    def test_foreign_fingerprint_rejected_at_add_time(self, spec):
        import dataclasses

        parts = self._parts(spec)
        merge = IncrementalMerge()
        merge.add(*parts[0])
        entry, results = parts[1]
        with pytest.raises(ValueError, match="fingerprint"):
            merge.add(dataclasses.replace(entry, fingerprint="f" * 16), results)
        with pytest.raises(ValueError, match="grid"):
            merge.add(dataclasses.replace(entry, grid="g" * 16), results)
        with pytest.raises(ValueError, match="declares"):
            merge.add(entry, ResultSet(seed=entry.seed))

    def test_multi_seed_streams_merge_per_seed(self):
        spec = ExperimentSpec(
            seeds=(7, 11), languages=("julia",), kernels=("axpy",), config=CodexConfig()
        )
        with Session() as session:
            parts = [(shard.entry(), session.run(shard)) for shard in spec.partition(2)]
            expected = {
                seed: results.to_records() for seed, results in session.run(spec).items()
            }
        merge = IncrementalMerge()
        for entry, results in reversed(parts):
            merge.add(entry, results)
        merged = merge.merged()
        assert set(merged) == {7, 11}
        for seed in (7, 11):
            assert merged[seed].to_records() == expected[seed]
