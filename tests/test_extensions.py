"""Tests for the opt-in extended grid (repro.extensions).

Covers the extension contract of docs/extending.md:

* install/uninstall are idempotent inverses restoring exact stock state;
* stock cells' records are byte-identical with the extension installed
  (the cell_seed_sequence contract survives grid growth);
* the new families' templates pass the sandbox oracle and their mutants
  fail it;
* the static analyzer's geometry profiles cover the new families
  non-vacuously (mutants are HAZARD, correct code is not) and an
  unregistered family raises instead of silently reporting zero hazards.
"""

from __future__ import annotations

import pytest

from repro.analysis.hazards import register_profile, static_findings_for, unregister_profile
from repro.api import Session
from repro.corpus.mutations import MUTATION_OPERATORS
from repro.corpus.snippets import CodeSnippet
from repro.corpus.store import build_default_corpus
from repro.corpus.templates import TEMPLATE_INDEX
from repro.corpus.templates.python_extended import TEMPLATES as EXTENDED_TEMPLATES
from repro.extensions import (
    EXTENSION_KERNELS,
    EXTENSION_MODEL_UID,
    extended_grid_installed,
    install_extended_grid,
    uninstall_extended_grid,
)
from repro.kernels.registry import KERNEL_NAMES, STOCK_KERNEL_NAMES, kernel_names
from repro.models.grid import experiment_grid
from repro.models.programming_models import PROGRAMMING_MODELS, STOCK_MODEL_UIDS
from repro.sandbox.executor import evaluate_python_suggestion


@pytest.fixture
def extended_grid():
    """Install the extended grid for one test, always uninstalling after."""
    install_extended_grid()
    try:
        yield
    finally:
        uninstall_extended_grid()


def _snippet(model_short: str, kernel: str) -> CodeSnippet:
    uid = "python.kokkos" if model_short == "kokkos" else f"python.{model_short}"
    return CodeSnippet(
        code=EXTENDED_TEMPLATES[(model_short, kernel)],
        language="python",
        kernel=kernel,
        label_model=uid,
        label_correct=True,
    )


class TestInstallUninstall:
    def test_install_grows_and_uninstall_restores(self):
        stock_cells = len(experiment_grid())
        stock_models = len(PROGRAMMING_MODELS)
        stock_templates = len(TEMPLATE_INDEX)
        assert not extended_grid_installed()
        install_extended_grid()
        try:
            assert extended_grid_installed()
            assert len(PROGRAMMING_MODELS) == stock_models + 1
            assert EXTENSION_MODEL_UID in PROGRAMMING_MODELS
            assert tuple(kernel_names()) == STOCK_KERNEL_NAMES + EXTENSION_KERNELS
            assert len(TEMPLATE_INDEX) == stock_templates + len(EXTENDED_TEMPLATES)
            assert len(experiment_grid()) > stock_cells
        finally:
            uninstall_extended_grid()
        assert not extended_grid_installed()
        assert len(experiment_grid()) == stock_cells
        assert len(PROGRAMMING_MODELS) == stock_models
        assert tuple(kernel_names()) == STOCK_KERNEL_NAMES == KERNEL_NAMES
        assert len(TEMPLATE_INDEX) == stock_templates

    def test_install_is_idempotent(self, extended_grid):
        before = len(experiment_grid())
        install_extended_grid()
        assert len(experiment_grid()) == before

    def test_uninstall_without_install_is_harmless(self):
        uninstall_extended_grid()
        assert tuple(kernel_names()) == STOCK_KERNEL_NAMES

    def test_new_kernels_are_python_only(self, extended_grid):
        assert "scan" in kernel_names("python")
        assert "scan" not in kernel_names("cpp")
        assert "histogram" not in kernel_names("fortran")


class TestStockInvariance:
    def test_stock_corpus_is_subsequence_of_extended(self):
        """Installing the extension only *adds* corpus snippets — every stock
        snippet survives unchanged and in its original relative order."""
        stock = [(s.language, s.kernel, s.label_model, s.code) for s in build_default_corpus()]
        install_extended_grid()
        try:
            extended = [
                (s.language, s.kernel, s.label_model, s.code) for s in build_default_corpus()
            ]
        finally:
            uninstall_extended_grid()
        assert len(extended) > len(stock)
        it = iter(extended)
        assert all(any(e == s for e in it) for s in stock)

    def test_stock_records_identical_with_extension_installed(self):
        """The cell_seed_sequence contract: growing the grid never perturbs
        a stock cell's suggestion stream, so its records match exactly."""
        with Session(backend="serial") as session:
            stock = session.language_results("python").to_records()
        install_extended_grid()
        try:
            with Session(backend="serial") as session:
                extended = session.language_results("python").to_records()
        finally:
            uninstall_extended_grid()
        stock_like = [
            r for r in extended
            if r["kernel"] in STOCK_KERNEL_NAMES and r["model"] in STOCK_MODEL_UIDS
        ]
        assert stock_like == stock


class TestExtendedCells:
    def test_extended_python_run_covers_new_cells(self, extended_grid):
        with Session(backend="serial") as session:
            results = session.language_results("python")
        kernels_seen = {r.cell.kernel for r in results}
        models_seen = {r.cell.model for r in results}
        assert set(EXTENSION_KERNELS) <= kernels_seen
        assert EXTENSION_MODEL_UID in models_seen

    def test_all_extended_templates_pass_the_oracle(self, extended_grid):
        for (model, kernel), code in sorted(EXTENDED_TEMPLATES.items()):
            result = evaluate_python_suggestion(code, kernel)
            assert result.passed, (model, kernel, result.issues)


class TestParallelMutations:
    EXPECTED = {
        "reduction_order": {("cupy", "scan"), ("kokkos", "scan"), ("numba", "scan"),
                            ("numpy", "scan"), ("pycuda", "scan")},
        "drop_atomic": {("cupy", "histogram"), ("kokkos", "histogram"),
                        ("pycuda", "histogram")},
        "bounds_off_by_one": {("cupy", "scan"), ("cupy", "histogram"),
                              ("pycuda", "scan"), ("pycuda", "histogram")},
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_operator_applies_exactly_where_expected(self, extended_grid, name):
        applied = set()
        for model, kernel in sorted(EXTENDED_TEMPLATES):
            mutated = MUTATION_OPERATORS[name].apply(_snippet(model, kernel))
            if mutated is not None:
                assert mutated.code != EXTENDED_TEMPLATES[(model, kernel)]
                assert mutated.label_correct is False
                applied.add((model, kernel))
        assert applied == self.EXPECTED[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_mutants_fail_the_oracle(self, extended_grid, name):
        for model, kernel in sorted(self.EXPECTED[name]):
            mutated = MUTATION_OPERATORS[name].apply(_snippet(model, kernel))
            result = evaluate_python_suggestion(mutated.code, kernel)
            assert not result.passed, (name, model, kernel)

    def test_operators_skip_stock_kernels(self):
        axpy = CodeSnippet(
            code="import numpy as np\n\ndef axpy(a, x, y):\n    return a * x + y\n",
            language="python",
            kernel="axpy",
            label_model="python.numpy",
            label_correct=True,
        )
        for name in self.EXPECTED:
            assert MUTATION_OPERATORS[name].apply(axpy) is None


class TestStaticHazardCoverage:
    CUDA_MODELS = ("cupy", "pycuda")

    def _hazards(self, code: str, kernel: str) -> list[dict]:
        findings = static_findings_for(code, "python", kernel)
        return [f for f in findings if f["verdict"] == "HAZARD"]

    def test_correct_templates_have_no_hazards(self, extended_grid):
        for model in self.CUDA_MODELS:
            for kernel in EXTENSION_KERNELS:
                code = EXTENDED_TEMPLATES[(model, kernel)]
                assert self._hazards(code, kernel) == [], (model, kernel)

    def test_scan_race_mutant_is_hazard(self, extended_grid):
        for model in self.CUDA_MODELS:
            mutated = MUTATION_OPERATORS["race_injection"].apply(_snippet(model, "scan"))
            kinds = {f["kind"] for f in self._hazards(mutated.code, "scan")}
            assert "write-write-race" in kinds, model

    def test_bounds_mutants_are_hazard(self, extended_grid):
        for model in self.CUDA_MODELS:
            for kernel in EXTENSION_KERNELS:
                mutated = MUTATION_OPERATORS["bounds_off_by_one"].apply(
                    _snippet(model, kernel)
                )
                kinds = {f["kind"] for f in self._hazards(mutated.code, kernel)}
                assert "out-of-bounds" in kinds, (model, kernel)

    def test_unregistered_family_raises_instead_of_zero_findings(self):
        code = EXTENDED_TEMPLATES[("cupy", "scan")]
        with pytest.raises(KeyError):
            static_findings_for(code, "python", "fft")

    def test_profile_registration_round_trip(self):
        code = EXTENDED_TEMPLATES[("cupy", "scan")]
        register_profile(
            "fft",
            {
                "require_all": ["threads = 256"],
                "require_any": [],
                "grid": (1, 1, 1),
                "block": (256, 1, 1),
                "buffer_sizes": {"x": 64, "out": 64},
                "scalar_args": {"n": 64},
            },
        )
        try:
            assert isinstance(static_findings_for(code, "python", "fft"), list)
        finally:
            unregister_profile("fft")
        with pytest.raises(KeyError):
            static_findings_for(code, "python", "fft")
