"""Tests for the language/model registry, the experiment grid and the priors."""

from __future__ import annotations

import pytest

from repro.kernels.registry import KERNEL_NAMES
from repro.models.grid import ExperimentCell, cells_for_language, experiment_grid, table1_rows
from repro.models.keywords import CUDA_COMMUNITY_KEYWORDS, has_postfix_variant, postfix_keyword
from repro.models.languages import get_language, language_names
from repro.models.programming_models import (
    PROGRAMMING_MODELS,
    ExecutionTarget,
    get_model,
    model_names,
    models_for_language,
)
from repro.popularity.githut import GITHUT_2023_Q1, github_share, relative_code_volume
from repro.popularity.maturity import (
    MaturityModel,
    language_popularity,
    model_maturity,
    scientific_affinity,
)
from repro.popularity.tiobe import TIOBE_2023_APRIL, tiobe_rank, tiobe_rating


class TestLanguages:
    def test_four_languages_in_paper_order(self):
        assert language_names() == ("cpp", "fortran", "python", "julia")

    def test_aliases_resolve(self):
        assert get_language("C++").name == "cpp"
        assert get_language("f90").name == "fortran"
        assert get_language("jl").name == "julia"

    def test_unknown_language(self):
        with pytest.raises(KeyError):
            get_language("rust")

    def test_postfix_keywords_match_paper(self):
        assert postfix_keyword("cpp") == "function"
        assert postfix_keyword("fortran") == "subroutine"
        assert postfix_keyword("python") == "def"
        assert postfix_keyword("julia") == ""

    def test_julia_has_no_postfix_variant(self):
        assert not has_postfix_variant("julia")
        assert has_postfix_variant("cpp")

    def test_prompt_filename_and_comment(self):
        lang = get_language("fortran")
        assert lang.prompt_filename("axpy") == "axpy.f90"
        assert lang.comment("hello") == "! hello"

    def test_cuda_community_keywords(self):
        assert "kernel" in CUDA_COMMUNITY_KEYWORDS
        assert "__global__" in CUDA_COMMUNITY_KEYWORDS


class TestProgrammingModels:
    def test_counts_per_language_match_table1(self):
        assert len(models_for_language("cpp")) == 8
        assert len(models_for_language("fortran")) == 3
        assert len(models_for_language("python")) == 4
        assert len(models_for_language("julia")) == 4
        assert len(PROGRAMMING_MODELS) == 19

    def test_uids_are_language_prefixed(self):
        for uid, model in PROGRAMMING_MODELS.items():
            assert uid.startswith(model.language + ".")
            assert model.short_name == uid.split(".", 1)[1]

    def test_get_model_accepts_space_form(self):
        assert get_model("cpp openmp").uid == "cpp.openmp"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("cpp.mpi")

    def test_detection_markers_present(self):
        for model in PROGRAMMING_MODELS.values():
            assert model.detection_markers, f"{model.uid} has no detection markers"

    def test_gpu_models_target_gpu(self):
        assert get_model("cpp.cuda").target is ExecutionTarget.GPU
        assert get_model("cpp.openmp").target is ExecutionTarget.CPU
        assert get_model("cpp.kokkos").target is ExecutionTarget.BOTH

    def test_model_names_filter(self):
        assert set(model_names("fortran")) == {
            "fortran.openmp",
            "fortran.openmp_offload",
            "fortran.openacc",
        }

    def test_language_display(self):
        assert get_model("julia.cuda").language_display() == "Julia"


class TestExperimentGrid:
    def test_full_grid_size(self):
        # C++: 8 models x 6 kernels x 2 variants = 96; Fortran 36; Python 48; Julia 24.
        assert len(experiment_grid()) == 96 + 36 + 48 + 24

    def test_cells_for_language_variants(self):
        cpp = cells_for_language("cpp")
        assert sum(c.use_postfix for c in cpp) == len(cpp) // 2
        julia = cells_for_language("julia")
        assert all(not c.use_postfix for c in julia)

    def test_postfix_variant_rejected_for_julia(self):
        with pytest.raises(ValueError):
            cells_for_language("julia", include_postfix=True)

    def test_cell_properties(self):
        cell = ExperimentCell(language="cpp", model="cpp.openmp", kernel="axpy", use_postfix=True)
        assert cell.postfix == "function"
        assert cell.cell_id == "cpp.openmp:axpy+kw"
        assert "OpenMP" in cell.describe()

    def test_kernel_filter(self):
        cells = cells_for_language("python", kernels=["axpy"])
        assert all(c.kernel == "axpy" for c in cells)
        assert len(cells) == 4 * 2

    def test_every_cell_kernel_is_known(self):
        assert {c.kernel for c in experiment_grid()} == set(KERNEL_NAMES)

    def test_table1_rows(self):
        rows = list(table1_rows())
        assert ("C++", "OpenMP", "offload, function") not in rows  # plain OpenMP has no offload tag
        assert ("C++", "OpenMP offload", "offload, function") in rows
        assert ("Julia", "Threads", "") in rows
        assert len(rows) == 19


class TestPopularityPriors:
    def test_githut_ordering(self):
        assert github_share("python") > github_share("cpp") > github_share("fortran")
        assert github_share("fortran") > 0
        assert github_share("rust") == 0.0

    def test_relative_code_volume_normalised(self):
        assert relative_code_volume("python") == 1.0
        assert 0 < relative_code_volume("julia") < 0.1

    def test_tiobe_ordering(self):
        assert tiobe_rank("python") < tiobe_rank("cpp") < tiobe_rank("fortran") < tiobe_rank("julia")
        assert tiobe_rating("unknown") == 0.0
        assert tiobe_rank("unknown") == 999

    def test_snapshots_cover_all_languages(self):
        assert set(GITHUT_2023_Q1) == set(TIOBE_2023_APRIL) == {"cpp", "fortran", "python", "julia"}

    def test_model_maturity_bounds_and_ordering(self):
        for uid in PROGRAMMING_MODELS:
            assert 0.0 <= model_maturity(uid) <= 1.0
        assert model_maturity("cpp.openmp") > model_maturity("cpp.hip")
        assert model_maturity("python.numpy") > model_maturity("python.numba")
        assert model_maturity("julia.cuda") > model_maturity("julia.amdgpu")

    def test_model_maturity_unknown(self):
        with pytest.raises(KeyError):
            model_maturity("cpp.unknown")

    def test_language_popularity_ordering(self):
        assert language_popularity("python") > language_popularity("cpp")
        assert language_popularity("cpp") > language_popularity("fortran")

    def test_scientific_affinity_favours_domain_languages(self):
        assert scientific_affinity("fortran") > scientific_affinity("cpp")
        assert scientific_affinity("julia") > scientific_affinity("python")

    def test_effective_availability_bounds(self):
        model = MaturityModel()
        for uid, pm in PROGRAMMING_MODELS.items():
            value = model.effective_availability(pm.language, uid)
            assert 0.0 <= value <= 1.0

    def test_effective_availability_override(self):
        model = MaturityModel(overrides={"cpp.hip": 0.99})
        assert model.effective_availability("cpp", "cpp.hip") == pytest.approx(0.99)

    def test_ranking_orders_by_availability(self):
        model = MaturityModel()
        ranking = model.ranking("cpp")
        assert ranking[0][0] == "cpp.openmp"
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)
