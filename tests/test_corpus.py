"""Tests for the code corpus: templates, snippets, mutations and the store."""

from __future__ import annotations

import pytest

from repro.corpus.mutations import MUTATION_OPERATORS, apply_mutation, available_mutations
from repro.corpus.snippets import CodeSnippet, SnippetOrigin
from repro.corpus.store import CorpusStore, build_default_corpus
from repro.corpus.templates import TEMPLATE_INDEX, get_template, has_template, iter_templates
from repro.kernels.registry import KERNEL_NAMES
from repro.models.programming_models import PROGRAMMING_MODELS


class TestTemplates:
    def test_every_model_kernel_cell_has_a_template(self):
        for uid, model in PROGRAMMING_MODELS.items():
            for kernel in KERNEL_NAMES:
                assert has_template(model.language, model.short_name, kernel), (uid, kernel)

    def test_template_count(self):
        assert len(TEMPLATE_INDEX) == len(PROGRAMMING_MODELS) * len(KERNEL_NAMES)

    def test_templates_are_nonempty_code(self):
        for language, model, kernel, code in iter_templates():
            assert len(code.strip()) > 40, (language, model, kernel)

    def test_get_template_unknown_cell(self):
        with pytest.raises(KeyError):
            get_template("cpp", "mpi", "axpy")

    def test_directive_templates_carry_their_markers(self):
        assert "#pragma omp parallel for" in get_template("cpp", "openmp", "axpy")
        assert "#pragma omp target" in get_template("cpp", "openmp_offload", "gemm")
        assert "#pragma acc" in get_template("cpp", "openacc", "spmv")
        assert "!$omp" in get_template("fortran", "openmp", "cg")
        assert "!$acc" in get_template("fortran", "openacc", "jacobi")

    def test_gpu_templates_carry_their_markers(self):
        assert "__global__" in get_template("cpp", "cuda", "axpy")
        assert "hipLaunchKernelGGL" in get_template("cpp", "hip", "gemv")
        assert "thrust::" in get_template("cpp", "thrust", "gemm")
        assert "sycl::" in get_template("cpp", "sycl", "cg")
        assert "Kokkos::parallel_for" in get_template("cpp", "kokkos", "jacobi")

    def test_python_templates_import_their_stack(self):
        assert "import numpy" in get_template("python", "numpy", "cg")
        assert "from numba import" in get_template("python", "numba", "spmv")
        assert "import cupy" in get_template("python", "cupy", "axpy")
        assert "SourceModule" in get_template("python", "pycuda", "gemm")

    def test_julia_templates_use_their_packages(self):
        assert "Threads.@threads" in get_template("julia", "threads", "gemv")
        assert "@cuda" in get_template("julia", "cuda", "axpy")
        assert "@roc" in get_template("julia", "amdgpu", "spmv")
        assert "@kernel" in get_template("julia", "kernelabstractions", "jacobi")

    def test_fortran_templates_are_subroutines(self):
        for kernel in KERNEL_NAMES:
            code = get_template("fortran", "openmp", kernel)
            assert "subroutine" in code and "end subroutine" in code


class TestSnippets:
    def _snippet(self, code: str = "int x = 1;") -> CodeSnippet:
        return CodeSnippet(
            code=code, language="cpp", kernel="axpy", label_model="cpp.openmp", label_correct=True
        )

    def test_is_code_true_for_code(self):
        assert self._snippet().is_code

    def test_is_code_false_for_comments_only(self):
        snippet = CodeSnippet(
            code="// just a comment\n// another\n",
            language="cpp",
            kernel="axpy",
            label_model="none",
            label_correct=False,
        )
        assert not snippet.is_code

    def test_is_code_false_for_empty(self):
        snippet = self._snippet(code="   \n  ")
        assert not snippet.is_code

    def test_line_count_ignores_blank_lines(self):
        snippet = self._snippet(code="a\n\nb\n")
        assert snippet.line_count == 2

    def test_digest_is_stable_and_code_dependent(self):
        a = self._snippet("x = 1;")
        b = self._snippet("x = 1;")
        c = self._snippet("x = 2;")
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_with_code_preserves_metadata(self):
        snippet = self._snippet()
        mutated = snippet.with_code("y = 2;", mutation="test", label_correct=False,
                                    origin=SnippetOrigin.MUTATION)
        assert mutated.language == snippet.language
        assert mutated.mutation == "test"
        assert not mutated.label_correct
        assert mutated.origin is SnippetOrigin.MUTATION


class TestMutations:
    def _template_snippet(self, language="cpp", model="openmp", kernel="axpy") -> CodeSnippet:
        return CodeSnippet(
            code=get_template(language, model, kernel),
            language=language,
            kernel=kernel,
            label_model=f"{language}.{model}",
            label_correct=True,
            metadata={"model_short": model},
        )

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            apply_mutation(self._template_snippet(), "explode")

    def test_wrong_operator_flips_a_sign(self):
        snippet = self._template_snippet()
        mutated = apply_mutation(snippet, "wrong_operator")
        assert mutated is not None
        assert mutated.code != snippet.code
        assert not mutated.label_correct
        assert "- y[i]" in mutated.code

    def test_off_by_one_changes_loop_start(self):
        mutated = apply_mutation(self._template_snippet(), "off_by_one")
        assert mutated is not None
        assert "for (int i = 1;" in mutated.code

    def test_off_by_one_fortran(self):
        mutated = apply_mutation(self._template_snippet("fortran", "openmp", "gemv"), "off_by_one")
        assert mutated is not None
        assert "do i = 0," in mutated.code

    def test_off_by_one_julia(self):
        mutated = apply_mutation(self._template_snippet("julia", "threads", "gemv"), "off_by_one")
        assert mutated is not None
        assert "in 0:" in mutated.code

    def test_undefined_helper_inserts_unknown_call(self):
        mutated = apply_mutation(self._template_snippet(), "undefined_helper")
        assert mutated is not None
        assert "axpy_compute_element(" in mutated.code

    def test_drop_parallelism_removes_directives(self):
        mutated = apply_mutation(self._template_snippet(), "drop_parallelism")
        assert mutated is not None
        assert "#pragma omp" not in mutated.code
        assert mutated.label_model == "serial"

    def test_drop_parallelism_python_becomes_numpy(self):
        mutated = apply_mutation(self._template_snippet("python", "numba", "gemv"), "drop_parallelism")
        assert mutated is not None
        assert "numba" not in mutated.code
        assert "prange" not in mutated.code
        assert mutated.label_model == "python.numpy"

    def test_drop_parallelism_julia_threads(self):
        mutated = apply_mutation(self._template_snippet("julia", "threads", "axpy"), "drop_parallelism")
        assert mutated is not None
        assert "@threads" not in mutated.code

    def test_truncate_cuts_lines(self):
        snippet = self._template_snippet("cpp", "cuda", "gemm")
        mutated = apply_mutation(snippet, "truncate")
        assert mutated is not None
        assert mutated.line_count < snippet.line_count

    def test_comment_only_is_not_code(self):
        mutated = apply_mutation(self._template_snippet(), "comment_only")
        assert mutated is not None
        assert not mutated.is_code
        assert mutated.origin is SnippetOrigin.NON_CODE

    def test_available_mutations_nonempty_for_templates(self):
        names = available_mutations(self._template_snippet())
        assert "wrong_operator" in names
        assert "comment_only" in names

    def test_all_operators_have_positive_weights(self):
        for op in MUTATION_OPERATORS.values():
            assert op.weight > 0
            assert op.description

    def test_mutations_never_return_unchanged_code(self):
        snippet = self._template_snippet("cpp", "sycl", "gemv")
        for name in available_mutations(snippet):
            mutated = apply_mutation(snippet, name)
            assert mutated.code != snippet.code


class TestCorpusStore:
    def test_default_corpus_contains_all_templates(self, corpus):
        stats = corpus.stats()
        assert stats["origin:template"] == len(TEMPLATE_INDEX)
        assert stats["total"] > 500

    def test_template_lookup(self, corpus):
        snippet = corpus.template("cpp", "cpp.openmp", "axpy")
        assert snippet is not None
        assert snippet.label_correct
        assert snippet.origin is SnippetOrigin.TEMPLATE

    def test_candidates_cover_all_models_of_language(self, corpus):
        candidates = corpus.candidates("cpp", "axpy")
        models = {c.label_model for c in candidates if c.label_model.startswith("cpp.")}
        assert len(models) == 8

    def test_candidates_for_model_correct_only(self, corpus):
        only_correct = corpus.candidates_for_model("cpp", "cpp.cuda", "gemm", correct_only=True)
        assert all(c.label_correct for c in only_correct)
        assert len(only_correct) >= 1

    def test_other_model_snippets_exclude_requested(self, corpus):
        others = corpus.other_model_snippets("python", "python.numpy", "axpy")
        assert others
        assert all(o.label_model != "python.numpy" for o in others)
        assert all(o.label_model not in ("serial", "none") for o in others)

    def test_store_without_mutations(self):
        store = build_default_corpus(include_mutations=False)
        assert store.stats()["total"] == len(TEMPLATE_INDEX)

    def test_manual_store_operations(self):
        store = CorpusStore()
        assert len(store) == 0
        snippet = CodeSnippet(
            code="x = 1", language="python", kernel="axpy",
            label_model="python.numpy", label_correct=False,
        )
        store.add(snippet)
        store.extend([snippet])
        assert len(store) == 2
        assert list(iter(store))
