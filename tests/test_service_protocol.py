"""Protocol-conformance suite for the evaluation service.

Drives a real :class:`~repro.service.server.EvaluationServer` over a real
TCP socket — no handler shortcuts — and pins the wire behaviour the
protocol doc promises: the versioned handshake (mismatch → typed error),
the JSON-RPC 2.0 error codes for malformed input, verbatim request-id
echo, and the exact notification framing — the latter byte-for-byte
against a golden NDJSON transcript.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path

import pytest

from repro.service import protocol
from repro.service.server import ServerThread

GOLDEN = Path(__file__).parent / "golden" / "service_transcript.ndjson"


@pytest.fixture(scope="module")
def server():
    # One worker so "still running/queued" states are deterministic.
    with ServerThread(workers=1) as handle:
        yield handle


class RawConnection:
    """A socket speaking raw NDJSON lines — including malformed ones."""

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.file = self.sock.makefile("rb")

    def send_bytes(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send(self, message: dict) -> None:
        self.send_bytes(protocol.encode(message))

    def read(self) -> dict:
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def read_line(self) -> bytes:
        return self.file.readline()

    def request(self, method: str, params: dict | None = None, id=1) -> dict:
        """One request/response round trip (skipping any event lines)."""
        self.send(protocol.request(method, params, id))
        while True:
            message = self.read()
            if "id" in message:
                return message

    def hello(self) -> dict:
        return self.request(
            "hello",
            {"protocol_version": protocol.PROTOCOL_VERSION, "client": "conformance"},
            id="hello-1",
        )

    def close(self) -> None:
        self.file.close()
        self.sock.close()


@pytest.fixture
def conn(server):
    connection = RawConnection(server.port)
    yield connection
    connection.close()


TINY_SPEC = {"seed": 7, "languages": ["julia"], "kernels": ["axpy"]}


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------

class TestHandshake:
    def test_hello_negotiates_version_and_session(self, conn):
        reply = conn.hello()
        assert reply["id"] == "hello-1"
        result = reply["result"]
        assert result["protocol_version"] == protocol.PROTOCOL_VERSION
        assert result["server"] == protocol.SERVER_NAME
        assert result["session_id"].startswith("s-")

    def test_version_mismatch_is_a_typed_error(self, conn):
        reply = conn.request(
            "hello", {"protocol_version": "0.9", "client": "old-client"}, id=5
        )
        assert reply["id"] == 5
        error = reply["error"]
        assert error["code"] == protocol.ERR_VERSION_MISMATCH
        assert error["data"] == {"server": protocol.PROTOCOL_VERSION, "client": "0.9"}
        # The connection survives a refused handshake: retry with the right
        # version on the same socket.
        assert "result" in conn.hello()

    def test_hello_without_version_is_invalid_params(self, conn):
        reply = conn.request("hello", {"client": "versionless"}, id=6)
        assert reply["error"]["code"] == protocol.INVALID_PARAMS

    def test_methods_before_hello_are_refused(self, conn):
        for method, params in (
            ("submit", {"spec": TINY_SPEC}),
            ("status", {"experiment_id": "exp-000001"}),
            ("shutdown", {}),
        ):
            reply = conn.request(method, params, id=method)
            assert reply["id"] == method
            assert reply["error"]["code"] == protocol.ERR_HANDSHAKE_REQUIRED

    def test_second_hello_is_refused(self, conn):
        conn.hello()
        reply = conn.request(
            "hello",
            {"protocol_version": protocol.PROTOCOL_VERSION, "client": "again"},
            id=2,
        )
        assert reply["error"]["code"] == protocol.ERR_HANDSHAKE_REQUIRED


# ---------------------------------------------------------------------------
# Envelope failures: the reserved JSON-RPC error codes
# ---------------------------------------------------------------------------

class TestEnvelopeErrors:
    def test_malformed_json_is_parse_error(self, conn):
        conn.send_bytes(b'{"jsonrpc": "2.0", "method": oops\n')
        reply = conn.read()
        assert reply["error"]["code"] == protocol.PARSE_ERROR
        assert reply["id"] is None

    def test_non_object_line_is_invalid_request(self, conn):
        conn.send_bytes(b"[1, 2, 3]\n")
        reply = conn.read()
        assert reply["error"]["code"] == protocol.INVALID_REQUEST
        assert reply["id"] is None

    def test_missing_jsonrpc_version_is_invalid_request(self, conn):
        conn.send_bytes(b'{"method": "hello", "id": 9}\n')
        reply = conn.read()
        assert reply["error"]["code"] == protocol.INVALID_REQUEST
        assert reply["id"] == 9

    def test_non_string_method_is_invalid_request(self, conn):
        conn.send_bytes(b'{"jsonrpc": "2.0", "method": 42, "id": 10}\n')
        reply = conn.read()
        assert reply["error"]["code"] == protocol.INVALID_REQUEST

    def test_unknown_method_is_method_not_found(self, conn):
        conn.hello()
        reply = conn.request("teleport", {}, id=11)
        assert reply["error"]["code"] == protocol.METHOD_NOT_FOUND
        assert "teleport" in reply["error"]["message"]

    def test_non_object_params_is_invalid_params(self, conn):
        conn.send_bytes(b'{"jsonrpc": "2.0", "method": "hello", "params": [1], "id": 12}\n')
        reply = conn.read()
        assert reply["error"]["code"] == protocol.INVALID_PARAMS

    def test_parse_error_does_not_kill_the_connection(self, conn):
        conn.send_bytes(b"not json at all\n")
        assert conn.read()["error"]["code"] == protocol.PARSE_ERROR
        assert "result" in conn.hello()


# ---------------------------------------------------------------------------
# Invalid submit params
# ---------------------------------------------------------------------------

class TestSubmitValidation:
    @pytest.mark.parametrize(
        "params",
        [
            {},  # no spec at all
            {"spec": "julia"},  # spec not an object
            {"spec": {"languages": "julia"}},  # not a list
            {"spec": {"languages": ["klingon"]}},  # unknown language
            {"spec": {"seeds": [1, 2]}},  # multi-seed
            {"spec": {"seeds": "7"}},  # seeds not a list
            {"spec": {"grid": "full"}},  # unknown field
            {"spec": TINY_SPEC, "shards": 0},  # non-positive shards
            {"spec": TINY_SPEC, "shards": "4"},  # non-int shards
            {"spec": {"seed": 7, "fingerprint": "deadbeef"}},  # config mismatch
        ],
        ids=[
            "no-spec", "spec-not-object", "languages-not-list", "unknown-language",
            "multi-seed", "seeds-not-list", "unknown-field", "zero-shards",
            "string-shards", "fingerprint-mismatch",
        ],
    )
    def test_bad_submit_is_invalid_params(self, conn, params):
        conn.hello()
        reply = conn.request("submit", params, id=20)
        assert reply["error"]["code"] == protocol.INVALID_PARAMS


# ---------------------------------------------------------------------------
# Request-id echo and experiment lifecycle errors
# ---------------------------------------------------------------------------

class TestRequestResponse:
    @pytest.mark.parametrize("request_id", ["abc-123", 0, 2**53, None])
    def test_request_id_is_echoed_verbatim(self, conn, request_id):
        conn.send(
            protocol.request(
                "hello",
                {"protocol_version": protocol.PROTOCOL_VERSION, "client": "echo"},
                request_id,
            )
        )
        reply = conn.read()
        assert "id" in reply
        assert reply["id"] == request_id

    def test_unknown_experiment_is_typed(self, conn):
        conn.hello()
        for method in ("status", "cancel", "result"):
            reply = conn.request(method, {"experiment_id": "exp-999999"}, id=method)
            assert reply["error"]["code"] == protocol.ERR_UNKNOWN_EXPERIMENT

    def test_result_before_terminal_state_is_refused(self, conn):
        conn.hello()
        # The module server has one worker: keep it busy so the second
        # experiment is deterministically queued when `result` arrives.
        first = conn.request("submit", {"spec": {"languages": ["julia"]}}, id=30)
        queued = conn.request("submit", {"spec": TINY_SPEC}, id=31)
        experiment = queued["result"]["experiment_id"]
        reply = conn.request("result", {"experiment_id": experiment}, id=32)
        assert reply["error"]["code"] == protocol.ERR_NOT_FINISHED
        assert reply["error"]["data"]["state"] == "queued"
        for response in (queued, first):
            conn.request(
                "cancel", {"experiment_id": response["result"]["experiment_id"]}, id=33
            )

    def test_notifications_have_no_id_and_responses_no_method(self, conn):
        conn.hello()
        submitted = conn.request("submit", {"spec": TINY_SPEC}, id=40)
        assert submitted["result"]["cells"] == 4
        experiment = submitted["result"]["experiment_id"]
        saw_events = set()
        while True:
            message = conn.read()
            assert message["jsonrpc"] == protocol.JSONRPC_VERSION
            assert "id" not in message, "unsolicited response in the event stream"
            assert ("result" in message) is False and ("error" in message) is False
            saw_events.add(message["method"])
            assert message["params"]["experiment_id"] == experiment
            if message["method"] == "state":
                break
        assert saw_events == {"progress", "shard", "state"}


# ---------------------------------------------------------------------------
# The golden transcript: notification framing, byte for byte
# ---------------------------------------------------------------------------

class TestGoldenTranscript:
    def test_transcript_is_byte_identical(self):
        """A fresh server's full hello/submit/stream/result interaction
        serialises to exactly the committed NDJSON transcript.

        This is the wire-format regression gate: any change to message
        framing, key order, field sets, id allocation or evaluation output
        shows up here as a byte diff — and must come with a protocol
        version bump and a regenerated golden file.
        """
        # A dedicated server: deterministic s-000001 / exp-000001 counters.
        with ServerThread() as handle:
            conn = RawConnection(handle.port)
            try:
                received = bytearray()

                def read_until(predicate):
                    while True:
                        line = conn.read_line()
                        assert line, "unexpected EOF"
                        received.extend(line)
                        if predicate(json.loads(line)):
                            return

                conn.send(
                    protocol.request(
                        "hello",
                        {
                            "protocol_version": protocol.PROTOCOL_VERSION,
                            "client": "conformance-suite",
                        },
                        1,
                    )
                )
                read_until(lambda m: m.get("id") == 1)
                conn.send(protocol.request("submit", {"spec": TINY_SPEC, "shards": 2}, 2))
                read_until(lambda m: m.get("id") == 2)
                read_until(lambda m: m.get("method") == "state")
                conn.send(protocol.request("result", {"experiment_id": "exp-000001"}, 3))
                read_until(lambda m: m.get("id") == 3)
            finally:
                conn.close()
        assert bytes(received) == GOLDEN.read_bytes()

    def test_transcript_lines_are_canonical_encoding(self):
        """Every golden line is its own parse-and-re-encode fixed point."""
        for line in GOLDEN.read_bytes().splitlines():
            assert protocol.encode(json.loads(line)) == line + b"\n"
