"""Workload / problem-suite generators used by examples and benchmarks.

A :class:`ProblemSuite` bundles deterministic problem instances for each
kernel at a set of characteristic sizes, so benchmarks and the sandbox
evaluation draw the same data for the reference implementation and for every
candidate suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.kernels.base import Problem
from repro.kernels.registry import KERNEL_NAMES, get_kernel

__all__ = ["ProblemSuite", "default_sizes", "make_problem"]

#: Default per-kernel problem sizes used by the evaluation harness.  The
#: sizes are intentionally small: correctness checking, not throughput, is
#: what the paper's metric measures.
_DEFAULT_SIZES: dict[str, tuple[int, ...]] = {
    "axpy": (16, 256, 4096),
    "gemv": (8, 32, 128),
    "gemm": (4, 16, 64),
    "spmv": (16, 64, 256),
    "jacobi": (4, 8, 12),
    "cg": (9, 25, 64),
}


def default_sizes(kernel_name: str) -> tuple[int, ...]:
    """Return the default size sweep for a kernel."""
    key = kernel_name.strip().lower()
    if key not in _DEFAULT_SIZES:
        raise KeyError(f"unknown kernel {kernel_name!r}")
    return _DEFAULT_SIZES[key]


def make_problem(kernel_name: str, size: int, *, seed: int = 20230414) -> Problem:
    """Create one deterministic problem instance for ``kernel_name``."""
    kernel = get_kernel(kernel_name)
    rng = np.random.default_rng([seed, hash(kernel_name) & 0xFFFF, size])
    return kernel.make_problem_with_expected(size, rng=rng)


@dataclass
class ProblemSuite:
    """A reproducible collection of problems per kernel.

    Parameters
    ----------
    seed:
        Base seed; every (kernel, size) pair derives an independent stream.
    sizes:
        Optional override of the per-kernel size sweeps.
    """

    seed: int = 20230414
    sizes: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def sizes_for(self, kernel_name: str) -> tuple[int, ...]:
        return tuple(self.sizes.get(kernel_name, default_sizes(kernel_name)))

    def problems_for(self, kernel_name: str) -> list[Problem]:
        """All problem instances for one kernel."""
        return [
            make_problem(kernel_name, size, seed=self.seed)
            for size in self.sizes_for(kernel_name)
        ]

    def smallest_problem(self, kernel_name: str) -> Problem:
        """The smallest (fastest to validate) problem for one kernel."""
        size = min(self.sizes_for(kernel_name))
        return make_problem(kernel_name, size, seed=self.seed)

    def iter_all(self) -> Iterator[tuple[str, Problem]]:
        """Iterate ``(kernel_name, problem)`` over every kernel and size."""
        for name in KERNEL_NAMES:
            for problem in self.problems_for(name):
                yield name, problem
