"""Registry of the evaluated kernels.

The registry fixes the canonical kernel order used by every table and figure
in the paper: AXPY, GEMV, GEMM, SpMV, Jacobi, CG (increasing complexity).

The registry is extensible: :func:`register_kernel` appends an extension
family after the paper's six (see :mod:`repro.extensions` and
``docs/extending.md``).  The paper kernels always come first and keep their
order, so the stock grid enumeration — and with it every stock cell's random
stream — is unaffected by registration.  Dynamic consumers should call
:func:`kernel_names` / :func:`kernels_for_language` rather than importing
:data:`KERNEL_NAMES` by value; the module-level tuple is rebound on every
(un)registration for interactive use, but by-value importers (the
paper-reference modules, intentionally) keep the stock six.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kernels.axpy import AxpyKernel
from repro.kernels.base import Kernel
from repro.kernels.cg import CgKernel
from repro.kernels.gemm import GemmKernel
from repro.kernels.gemv import GemvKernel
from repro.kernels.jacobi import JacobiKernel
from repro.kernels.spmv import SpmvKernel

__all__ = [
    "KERNEL_NAMES",
    "STOCK_KERNEL_NAMES",
    "all_kernels",
    "get_kernel",
    "kernel_complexity_order",
    "find_kernel",
    "kernel_names",
    "kernels_for_language",
    "register_kernel",
    "unregister_kernel",
]

_KERNEL_CLASSES = (
    AxpyKernel,
    GemvKernel,
    GemmKernel,
    SpmvKernel,
    JacobiKernel,
    CgKernel,
)

_REGISTRY: "OrderedDict[str, Kernel]" = OrderedDict(
    (cls.spec.name, cls()) for cls in _KERNEL_CLASSES
)

#: The paper's six kernels, frozen — never affected by registration.
STOCK_KERNEL_NAMES: tuple[str, ...] = tuple(_REGISTRY.keys())

#: Canonical kernel order (matches the columns of the paper's tables).
#: Rebound when extension kernels are (un)registered; prefer
#: :func:`kernel_names` in code that must see the live registry.
KERNEL_NAMES: tuple[str, ...] = STOCK_KERNEL_NAMES


def kernel_names(language: str | None = None) -> tuple[str, ...]:
    """Live canonical kernel order, optionally restricted to a language.

    Stock kernels first (paper order), then extension kernels in
    registration order.  With ``language`` given, kernels whose spec names a
    language set excluding it are dropped — the mechanism that keeps
    python-only extension families out of the C++/Fortran/Julia grids.
    """
    if language is None:
        return tuple(_REGISTRY.keys())
    return tuple(
        name for name, kernel in _REGISTRY.items() if kernel.spec.supports_language(language)
    )


def kernels_for_language(language: str) -> tuple[Kernel, ...]:
    """Kernel singletons in canonical order for one language's grid."""
    return tuple(
        kernel for kernel in _REGISTRY.values() if kernel.spec.supports_language(language)
    )


def register_kernel(kernel: Kernel) -> None:
    """Append an extension kernel to the registry (idempotent).

    Re-registering the same name with a different spec is an error —
    silently replacing a kernel would re-key every cache built on kernel
    identity.  Stock kernels cannot be replaced.
    """
    global KERNEL_NAMES
    name = kernel.spec.name
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing.spec == kernel.spec:
            return
        raise ValueError(f"kernel {name!r} is already registered with a different spec")
    _REGISTRY[name] = kernel
    KERNEL_NAMES = tuple(_REGISTRY.keys())


def unregister_kernel(name: str) -> None:
    """Remove an extension kernel (idempotent; stock kernels refuse)."""
    global KERNEL_NAMES
    if name in STOCK_KERNEL_NAMES:
        raise ValueError(f"cannot unregister stock kernel {name!r}")
    _REGISTRY.pop(name, None)
    KERNEL_NAMES = tuple(_REGISTRY.keys())


def all_kernels() -> tuple[Kernel, ...]:
    """Return all kernel singletons in canonical (complexity) order."""
    return tuple(_REGISTRY.values())


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by canonical name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known kernels: {', '.join(_REGISTRY)}"
        ) from None


def find_kernel(token: str) -> Kernel | None:
    """Find a kernel by name or synonym; return None when nothing matches."""
    token = token.strip().lower()
    if token in _REGISTRY:
        return _REGISTRY[token]
    for kernel in _REGISTRY.values():
        if kernel.spec.matches_token(token):
            return kernel
    return None


def kernel_complexity_order() -> tuple[str, ...]:
    """Kernel names sorted by increasing complexity class."""
    return tuple(
        k.spec.name for k in sorted(_REGISTRY.values(), key=lambda k: int(k.spec.complexity))
    )
