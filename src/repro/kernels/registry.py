"""Registry of the six evaluated kernels.

The registry fixes the canonical kernel order used by every table and figure
in the paper: AXPY, GEMV, GEMM, SpMV, Jacobi, CG (increasing complexity).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kernels.axpy import AxpyKernel
from repro.kernels.base import Kernel
from repro.kernels.cg import CgKernel
from repro.kernels.gemm import GemmKernel
from repro.kernels.gemv import GemvKernel
from repro.kernels.jacobi import JacobiKernel
from repro.kernels.spmv import SpmvKernel

__all__ = ["KERNEL_NAMES", "all_kernels", "get_kernel", "kernel_complexity_order", "find_kernel"]

_KERNEL_CLASSES = (
    AxpyKernel,
    GemvKernel,
    GemmKernel,
    SpmvKernel,
    JacobiKernel,
    CgKernel,
)

_REGISTRY: "OrderedDict[str, Kernel]" = OrderedDict(
    (cls.spec.name, cls()) for cls in _KERNEL_CLASSES
)

#: Canonical kernel order (matches the columns of the paper's tables).
KERNEL_NAMES: tuple[str, ...] = tuple(_REGISTRY.keys())


def all_kernels() -> tuple[Kernel, ...]:
    """Return all kernel singletons in canonical (complexity) order."""
    return tuple(_REGISTRY.values())


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by canonical name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known kernels: {', '.join(KERNEL_NAMES)}"
        ) from None


def find_kernel(token: str) -> Kernel | None:
    """Find a kernel by name or synonym; return None when nothing matches."""
    token = token.strip().lower()
    if token in _REGISTRY:
        return _REGISTRY[token]
    for kernel in _REGISTRY.values():
        if kernel.spec.matches_token(token):
            return kernel
    return None


def kernel_complexity_order() -> tuple[str, ...]:
    """Kernel names sorted by increasing complexity class."""
    return tuple(
        k.spec.name for k in sorted(_REGISTRY.values(), key=lambda k: int(k.spec.complexity))
    )
