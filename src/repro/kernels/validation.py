"""Numerical validation helpers shared by every kernel.

All comparisons are tolerance-aware and shape-aware: a candidate output is
accepted only when it has the same shape as the oracle and is element-wise
close under combined absolute/relative tolerances.  This is the numerical
backbone of the "correct code" judgement the paper's rubric relies on for
the executable (Python) suggestions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels.base import ValidationResult

__all__ = [
    "allclose",
    "relative_error",
    "max_abs_error",
    "compare_outputs",
]


def _as_array(value: Any) -> np.ndarray | None:
    """Best effort conversion of ``value`` to a float ndarray.

    Returns ``None`` when the value cannot be interpreted numerically
    (e.g. it is a string, None, or a ragged container).
    """
    if value is None:
        return None
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return None
        return np.asarray(value, dtype=np.float64)
    if isinstance(value, (int, float, complex, np.generic)):
        return np.asarray(value, dtype=np.float64)
    if isinstance(value, (list, tuple)):
        try:
            arr = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError):
            return None
        return arr
    return None


def max_abs_error(candidate: np.ndarray, expected: np.ndarray) -> float:
    """Maximum absolute elementwise error between two same-shape arrays."""
    diff = np.abs(np.asarray(candidate, dtype=np.float64) - np.asarray(expected, dtype=np.float64))
    if diff.size == 0:
        return 0.0
    return float(np.max(diff))


def relative_error(candidate: np.ndarray, expected: np.ndarray) -> float:
    """L2 relative error ``||c - e|| / max(||e||, eps)``."""
    c = np.asarray(candidate, dtype=np.float64).ravel()
    e = np.asarray(expected, dtype=np.float64).ravel()
    if c.shape != e.shape:
        return float("inf")
    denom = max(float(np.linalg.norm(e)), np.finfo(np.float64).eps)
    return float(np.linalg.norm(c - e) / denom)


def allclose(candidate: Any, expected: Any, *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
    """Tolerance comparison that never raises on shape/dtype mismatches."""
    return compare_outputs(candidate, expected, rtol=rtol, atol=atol).passed


def compare_outputs(
    candidate: Any,
    expected: Any,
    *,
    rtol: float = 1e-10,
    atol: float = 1e-12,
) -> ValidationResult:
    """Compare a candidate output against the oracle output.

    The comparison is defensive: any shape mismatch, non-numeric output,
    NaN/Inf contamination or tolerance violation yields ``passed=False`` with
    a human-readable message, rather than raising.
    """
    exp = _as_array(expected)
    cand = _as_array(candidate)
    if exp is None:
        raise ValueError("expected output is not numeric; oracle is malformed")
    if cand is None:
        return ValidationResult(
            passed=False,
            max_abs_error=float("inf"),
            max_rel_error=float("inf"),
            message=f"candidate output is not numeric (type {type(candidate).__name__})",
        )
    if cand.shape != exp.shape:
        # Allow (n,) vs (n,1) style trivial mismatches only when squeezing fixes it.
        if cand.squeeze().shape == exp.squeeze().shape:
            cand = cand.squeeze()
            exp = exp.squeeze()
        else:
            return ValidationResult(
                passed=False,
                max_abs_error=float("inf"),
                max_rel_error=float("inf"),
                message=f"shape mismatch: candidate {cand.shape} vs expected {exp.shape}",
            )
    if not np.all(np.isfinite(cand)):
        return ValidationResult(
            passed=False,
            max_abs_error=float("inf"),
            max_rel_error=float("inf"),
            message="candidate output contains NaN or Inf",
        )
    abs_err = max_abs_error(cand, exp)
    rel_err = relative_error(cand, exp)
    tol = atol + rtol * float(np.max(np.abs(exp))) if exp.size else atol
    passed = bool(np.allclose(cand, exp, rtol=rtol, atol=atol))
    message = "ok" if passed else f"max abs error {abs_err:.3e} exceeds tolerance {tol:.3e}"
    return ValidationResult(
        passed=passed,
        max_abs_error=abs_err,
        max_rel_error=rel_err,
        message=message,
    )
