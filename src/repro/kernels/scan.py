"""Prefix-sum (inclusive scan) kernel: ``out[i] = sum(x[0..i])``.

An extension family beyond the paper's six kernels (see
:mod:`repro.extensions` and ``docs/extending.md``).  Scan is the canonical
parallel-reduction pattern: a correct parallel implementation must respect
the accumulation order, which makes it the natural target for the
``reduction_order`` mutation operator.  Registered for the Python grid only.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["scan", "ScanKernel"]


def scan(x: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum of a 1-D array (the numpy oracle)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"x must be one-dimensional, got shape {x.shape}")
    return np.cumsum(x)


class ScanKernel(Kernel):
    """Problem generator and oracle for the inclusive prefix sum."""

    spec = KernelSpec(
        name="scan",
        display_name="Scan",
        complexity=KernelComplexity.SIMPLE,
        statement="out[i] = sum(x[0..i])",
        num_subkernels=1,
        flops_per_element=1.0,
        synonyms=("prefix sum", "prefix-sum", "cumsum", "cumulative sum", "inclusive scan"),
        languages=("python",),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        x = rng.standard_normal(size)
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"x": x},
            metadata={"flops": float(size)},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return scan(inputs["x"])
