"""Conjugate gradients (CG): the paper's "multikernel" algorithm.

CG solves ``A x = b`` for a symmetric positive-definite matrix by combining
several primitives per iteration — SpMV/GEMV, dot products and AXPY updates.
The paper repeatedly singles CG out as the hardest generation target
("generating high-quality multistep or multikernel codes (e.g., CG) can be
difficult"), which is why it anchors the low end of every per-kernel figure.

The implementation here works on dense arrays, :class:`CsrMatrix` instances,
or any object exposing a ``matvec``/``__matmul__`` operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng
from repro.kernels.sparse import CsrMatrix, poisson_2d

__all__ = ["CgResult", "conjugate_gradient", "CgKernel"]


@dataclass(frozen=True)
class CgResult:
    """Solution and convergence record of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: tuple[float, ...] = ()


def _make_operator(a: Any) -> Callable[[np.ndarray], np.ndarray]:
    """Turn a dense array, CsrMatrix or callable into a matvec closure."""
    if isinstance(a, CsrMatrix):
        return a.matvec
    if callable(a) and not isinstance(a, np.ndarray):
        return a
    dense = np.asarray(a, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("A must be a square matrix or a matvec callable")
    return lambda v: dense @ v


def conjugate_gradient(
    a: Any,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int | None = None,
    record_history: bool = False,
) -> CgResult:
    """Solve ``A x = b`` with the (unpreconditioned) conjugate gradient method.

    Parameters
    ----------
    a:
        SPD operator: dense ndarray, :class:`CsrMatrix`, or matvec callable.
    b:
        Right-hand side vector.
    x0:
        Initial guess (zero vector by default).
    tol:
        Convergence threshold on the relative residual ``||r|| / ||b||``.
    max_iterations:
        Iteration cap; defaults to ``10 * len(b)`` which is ample for the
        well-conditioned Poisson systems used in the evaluation.
    record_history:
        When True the per-iteration residual norms are recorded in the result.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise ValueError("b must be a vector")
    n = b.shape[0]
    matvec = _make_operator(a)
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValueError("x0 must have the same shape as b")
    if max_iterations is None:
        max_iterations = max(10 * n, 50)

    r = b - matvec(x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    scale = b_norm if b_norm > 0.0 else 1.0
    history: list[float] = []
    residual_norm = float(np.sqrt(rs_old))
    if record_history:
        history.append(residual_norm)
    converged = residual_norm / scale <= tol
    iterations = 0

    while not converged and iterations < max_iterations:
        ap = matvec(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            # Operator is not SPD (or breakdown); stop rather than diverge.
            break
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        residual_norm = float(np.sqrt(rs_new))
        if record_history:
            history.append(residual_norm)
        iterations += 1
        if residual_norm / scale <= tol:
            converged = True
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    return CgResult(
        x=x,
        iterations=iterations,
        residual_norm=residual_norm,
        converged=converged,
        residual_history=tuple(history),
    )


class CgKernel(Kernel):
    """Problem generator and oracle for the CG solve."""

    spec = KernelSpec(
        name="cg",
        display_name="CG",
        complexity=KernelComplexity.MULTIKERNEL,
        statement="solve A x = b for SPD A via conjugate gradients",
        num_subkernels=4,
        flops_per_element=10.0,
        synonyms=("conjugate gradient", "conjugate gradients", "pcg", "cg solver"),
    )

    # CG is iterative; accept solutions at the solver tolerance rather than
    # machine precision.
    rtol = 1e-6
    atol = 1e-8

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        """Generate an SPD system.

        Perfect squares use the 2-D Poisson operator (the realistic CG
        workload); other sizes use a random diagonally-dominant SPD matrix.
        """
        if size < 2:
            raise ValueError("size must be >= 2")
        rng = default_rng(rng, seed=size)
        grid = int(round(size ** 0.5))
        if grid * grid == size and grid >= 2:
            matrix: Any = poisson_2d(grid)
            dense = matrix.to_dense()
            structure = "poisson2d"
        else:
            m = rng.standard_normal((size, size))
            dense = m @ m.T + size * np.eye(size)
            matrix = dense
            structure = "random_spd"
        x_true = rng.standard_normal(size)
        b = dense @ x_true
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"A": matrix, "A_dense": dense, "b": b, "tol": 1e-10},
            metadata={"structure": structure, "x_true": x_true},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        result = conjugate_gradient(
            inputs["A"], inputs["b"], tol=float(inputs.get("tol", 1e-10))
        )
        return result.x
