"""Jacobi kernel: 3-D 7-point Jacobi stencil sweep and iteration.

The paper evaluates "3D Jacobi stencil computations".  A single sweep updates
each interior point with the average of its six neighbours (optionally with a
right-hand side term, which turns the sweep into one Jacobi iteration for the
3-D Poisson equation).  The iterative driver repeats sweeps until the update
norm drops below a tolerance.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["jacobi3d_step", "jacobi3d_solve", "jacobi2d_step", "JacobiKernel"]


def jacobi3d_step(u: np.ndarray, f: np.ndarray | None = None, h: float = 1.0) -> np.ndarray:
    """One 7-point Jacobi sweep on a 3-D grid with fixed (Dirichlet) boundary.

    Interior update::

        u_new[i,j,k] = (u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]
                        + u[i,j,k-1] + u[i,j,k+1] + h^2 * f[i,j,k]) / 6

    Boundary values are copied unchanged.  When ``f`` is omitted a zero
    right-hand side is assumed (pure smoothing sweep).
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 3:
        raise ValueError("u must be a 3-D array")
    if min(u.shape) < 3:
        # Nothing interior to update.
        return u.copy()
    if f is None:
        f = np.zeros_like(u)
    else:
        f = np.asarray(f, dtype=np.float64)
        if f.shape != u.shape:
            raise ValueError("f must have the same shape as u")
    out = u.copy()
    out[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        + h * h * f[1:-1, 1:-1, 1:-1]
    ) / 6.0
    return out


def jacobi2d_step(u: np.ndarray, f: np.ndarray | None = None, h: float = 1.0) -> np.ndarray:
    """One 5-point Jacobi sweep on a 2-D grid (used by tests and examples)."""
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 2:
        raise ValueError("u must be a 2-D array")
    if min(u.shape) < 3:
        return u.copy()
    if f is None:
        f = np.zeros_like(u)
    else:
        f = np.asarray(f, dtype=np.float64)
        if f.shape != u.shape:
            raise ValueError("f must have the same shape as u")
    out = u.copy()
    out[1:-1, 1:-1] = (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] + h * h * f[1:-1, 1:-1]
    ) / 4.0
    return out


def jacobi3d_solve(
    u0: np.ndarray,
    f: np.ndarray | None = None,
    *,
    h: float = 1.0,
    max_iterations: int = 100,
    tol: float = 0.0,
) -> tuple[np.ndarray, int, float]:
    """Run Jacobi sweeps until convergence or ``max_iterations``.

    Returns ``(u, iterations, last_update_norm)`` where the update norm is
    the max-norm of the difference between consecutive iterates.
    """
    u = np.asarray(u0, dtype=np.float64).copy()
    last_norm = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        u_new = jacobi3d_step(u, f, h)
        last_norm = float(np.max(np.abs(u_new - u))) if u.size else 0.0
        u = u_new
        if tol > 0.0 and last_norm <= tol:
            break
    return u, iterations, last_norm


class JacobiKernel(Kernel):
    """Problem generator and oracle for the 3-D Jacobi sweep.

    The evaluated quantity is a fixed number of sweeps (default 1) starting
    from a random field with Dirichlet boundaries, which is what a generated
    "Jacobi stencil" kernel is expected to compute.
    """

    spec = KernelSpec(
        name="jacobi",
        display_name="Jacobi",
        complexity=KernelComplexity.STENCIL,
        statement="u_new[i,j,k] = mean of 6 neighbours (+ h^2 f) on a 3-D grid",
        num_subkernels=2,
        flops_per_element=7.0,
        synonyms=("jacobi stencil", "3d jacobi", "jacobi iteration", "stencil"),
    )

    #: Number of sweeps a candidate implementation is asked to perform.
    sweeps: int = 1

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 3:
            raise ValueError("size must be >= 3 for a 3-D stencil")
        rng = default_rng(rng, seed=size)
        u = rng.standard_normal((size, size, size))
        f = rng.standard_normal((size, size, size))
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"u": u, "f": f, "h": 1.0, "sweeps": self.sweeps},
            metadata={"flops": 7.0 * (size - 2) ** 3 * self.sweeps},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        u = np.asarray(inputs["u"], dtype=np.float64)
        f = inputs.get("f")
        h = float(inputs.get("h", 1.0))
        sweeps = int(inputs.get("sweeps", 1))
        for _ in range(sweeps):
            u = jacobi3d_step(u, f, h)
        return u
