"""Sparse matrix substrate built from scratch (no scipy dependency).

The SpMV and CG kernels operate on sparse matrices.  To keep the substrate
self-contained we implement Compressed Sparse Row (CSR) and Coordinate (COO)
formats with the operations the kernels need:

* construction from dense arrays, from triplets, and from structured-grid
  Laplacian stencils (the realistic SpMV/CG workload the paper's kernels
  target),
* vectorised sparse matrix-vector products,
* conversion back to dense for validation,
* basic algebra helpers (diagonal extraction, symmetry check).

The matvec uses ``np.add.reduceat`` over the CSR row pointer, which is the
standard trick for a fully vectorised CSR SpMV in numpy (no Python-level loop
over rows) — following the HPC-Python guidance of avoiding interpreted inner
loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CooMatrix", "CsrMatrix", "poisson_1d", "poisson_2d", "poisson_3d"]


@dataclass
class CooMatrix:
    """Coordinate (triplet) format sparse matrix."""

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ValueError("rows, cols and data must have the same length")
        n_rows, n_cols = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= n_rows:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= n_cols:
                raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def to_csr(self) -> "CsrMatrix":
        """Convert to CSR, summing duplicate entries."""
        n_rows, n_cols = self.shape
        if self.nnz == 0:
            return CsrMatrix(
                indptr=np.zeros(n_rows + 1, dtype=np.int64),
                indices=np.zeros(0, dtype=np.int64),
                data=np.zeros(0, dtype=np.float64),
                shape=self.shape,
            )
        # Sort by (row, col) so duplicates are adjacent and columns are ordered.
        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        cols = self.cols[order]
        data = self.data[order]
        # Collapse duplicates.
        key_change = np.empty(rows.size, dtype=bool)
        key_change[0] = True
        key_change[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_ids = np.cumsum(key_change) - 1
        unique_rows = rows[key_change]
        unique_cols = cols[key_change]
        summed = np.zeros(int(group_ids[-1]) + 1, dtype=np.float64)
        np.add.at(summed, group_ids, data)
        counts = np.bincount(unique_rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrMatrix(indptr=indptr, indices=unique_cols, data=summed, shape=self.shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense


@dataclass
class CsrMatrix:
    """Compressed Sparse Row matrix with vectorised matvec."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(f"indptr must have length n_rows+1 = {n_rows + 1}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data must have the same length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column index out of bounds")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CsrMatrix":
        """Build a CSR matrix from a dense 2-D array, dropping |a_ij| <= tol."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        rows, cols = np.nonzero(mask)
        data = dense[rows, cols]
        counts = np.bincount(rows, minlength=dense.shape[0])
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=cols.astype(np.int64), data=data, shape=dense.shape)

    @classmethod
    def from_triplets(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> "CsrMatrix":
        return CooMatrix(rows=rows, cols=cols, data=data, shape=shape).to_csr()

    @classmethod
    def identity(cls, n: int) -> "CsrMatrix":
        return cls(
            indptr=np.arange(n + 1, dtype=np.int64),
            indices=np.arange(n, dtype=np.int64),
            data=np.ones(n, dtype=np.float64),
            shape=(n, n),
        )

    @classmethod
    def random(
        cls,
        n_rows: int,
        n_cols: int,
        density: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> "CsrMatrix":
        """Random sparse matrix with approximately ``density`` fill."""
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        rng = rng if rng is not None else np.random.default_rng(0)
        nnz = max(1, int(round(density * n_rows * n_cols)))
        flat = rng.choice(n_rows * n_cols, size=min(nnz, n_rows * n_cols), replace=False)
        rows, cols = np.divmod(flat, n_cols)
        data = rng.standard_normal(rows.size)
        return cls.from_triplets(rows, cols, data, (n_rows, n_cols))

    # -- properties ---------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries in each row."""
        return np.diff(self.indptr)

    # -- operations ---------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``y = A @ x`` (fully vectorised)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        if self.nnz == 0:
            return np.zeros(self.n_rows, dtype=np.float64)
        products = self.data * x[self.indices]
        y = np.zeros(self.n_rows, dtype=np.float64)
        # reduceat needs strictly valid segment starts; empty rows are handled
        # by masking them out and writing only the non-empty results.
        row_counts = np.diff(self.indptr)
        nonempty = row_counts > 0
        if np.all(nonempty):
            y = np.add.reduceat(products, self.indptr[:-1])
        else:
            starts = self.indptr[:-1][nonempty]
            y[nonempty] = np.add.reduceat(products, starts)
        return y

    def matvec_loop(self, x: np.ndarray) -> np.ndarray:
        """Row-by-row reference matvec (used in tests as an independent oracle)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.n_rows, dtype=np.float64)
        for i in range(self.n_rows):
            start, end = self.indptr[i], self.indptr[i + 1]
            y[i] = np.dot(self.data[start:end], x[self.indices[start:end]])
        return y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=np.float64)
        for i in range(n):
            start, end = self.indptr[i], self.indptr[i + 1]
            cols = self.indices[start:end]
            hit = np.nonzero(cols == i)[0]
            if hit.size:
                diag[i] = self.data[start:end][hit].sum()
        return diag

    def transpose(self) -> "CsrMatrix":
        """Return the transpose as a new CSR matrix."""
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        return CsrMatrix.from_triplets(self.indices, rows, self.data, (self.n_cols, self.n_rows))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        dense[rows, self.indices] = self.data
        return dense

    def is_symmetric(self, *, tol: float = 1e-12) -> bool:
        """Cheap symmetry check via dense comparison (intended for small matrices)."""
        if self.n_rows != self.n_cols:
            return False
        dense = self.to_dense()
        return bool(np.allclose(dense, dense.T, atol=tol))

    def scale_rows(self, scale: np.ndarray) -> "CsrMatrix":
        """Return ``diag(scale) @ A`` as a new CSR matrix."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.n_rows,):
            raise ValueError("scale must have one entry per row")
        row_of = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        return CsrMatrix(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            data=self.data * scale[row_of],
            shape=self.shape,
        )


# ---------------------------------------------------------------------------
# Structured-grid Laplacian generators: the canonical SpMV / CG workloads.
# ---------------------------------------------------------------------------

def poisson_1d(n: int) -> CsrMatrix:
    """Tridiagonal 1-D Poisson operator (2 on the diagonal, -1 off-diagonal)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    main = np.full(n, 2.0)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    data = [main]
    if n > 1:
        off = np.full(n - 1, -1.0)
        rows += [np.arange(n - 1), np.arange(1, n)]
        cols += [np.arange(1, n), np.arange(n - 1)]
        data += [off, off]
    return CsrMatrix.from_triplets(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(data), (n, n)
    )


def _kron_sum_identity(a_dense: np.ndarray, n_repeat: int) -> np.ndarray:
    """Helper for building Kronecker-sum Laplacians densely (small grids only)."""
    eye = np.eye(n_repeat)
    return np.kron(a_dense, eye)


def poisson_2d(nx: int, ny: int | None = None) -> CsrMatrix:
    """5-point 2-D Poisson operator on an ``nx`` x ``ny`` grid (SPD)."""
    ny = nx if ny is None else ny
    ax = poisson_1d(nx).to_dense()
    ay = poisson_1d(ny).to_dense()
    dense = np.kron(ax, np.eye(ny)) + np.kron(np.eye(nx), ay)
    return CsrMatrix.from_dense(dense)


def poisson_3d(nx: int, ny: int | None = None, nz: int | None = None) -> CsrMatrix:
    """7-point 3-D Poisson operator on an ``nx`` x ``ny`` x ``nz`` grid (SPD).

    This is the operator form of the paper's Jacobi 3D stencil and the
    canonical SPD system for the CG kernel.  Built densely via Kronecker sums
    and converted to CSR, so it is intended for moderate grid sizes (the
    evaluation uses grids up to ~20^3).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    ax = poisson_1d(nx).to_dense()
    ay = poisson_1d(ny).to_dense()
    az = poisson_1d(nz).to_dense()
    eye_y = np.eye(ny)
    eye_z = np.eye(nz)
    eye_x = np.eye(nx)
    dense = (
        np.kron(np.kron(ax, eye_y), eye_z)
        + np.kron(np.kron(eye_x, ay), eye_z)
        + np.kron(np.kron(eye_x, eye_y), az)
    )
    return CsrMatrix.from_dense(dense)
