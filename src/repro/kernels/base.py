"""Base abstractions for the HPC kernel substrate.

The paper evaluates six numerical kernels of increasing complexity.  Every
kernel in :mod:`repro.kernels` implements the :class:`Kernel` interface:

* a :class:`KernelSpec` describing the kernel (name, complexity class,
  mathematical statement, number of constituent loops / sub-kernels), and
* methods to generate random but well-conditioned problem instances, compute
  a reference solution with vectorised numpy, and validate a candidate
  output against that reference.

The complexity taxonomy mirrors the ordering used throughout the paper's
discussion (Section 4.5): AXPY is the simplest single-loop kernel, CG is a
"multikernel" algorithm composed of several BLAS-1/BLAS-2 building blocks.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = [
    "KernelComplexity",
    "KernelSpec",
    "Problem",
    "ValidationResult",
    "Kernel",
]


class KernelComplexity(enum.IntEnum):
    """Complexity classes for the evaluated kernels.

    The integer values define a total order used both by the experiment
    aggregation (per-kernel averages are reported in this order) and by the
    simulated suggestion engine, whose quality priors degrade with kernel
    complexity — the mechanism the paper identifies as "the more complex the
    kernel, the fewer quality results are obtained".
    """

    #: Single loop, BLAS-1 style, constant arithmetic intensity (AXPY).
    TRIVIAL = 1
    #: Two nested loops / BLAS-2 (GEMV).
    SIMPLE = 2
    #: Three nested loops / BLAS-3 (GEMM).
    MODERATE = 3
    #: Irregular memory access over a compressed sparse format (SpMV).
    IRREGULAR = 4
    #: Structured-grid stencil sweep with halo handling (Jacobi).
    STENCIL = 5
    #: Multi-kernel iterative algorithm composed of several primitives (CG).
    MULTIKERNEL = 6


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a kernel.

    Attributes
    ----------
    name:
        Canonical lowercase identifier (``"axpy"``, ``"gemv"``, ...).  This is
        the token used in prompts and in the corpus metadata.
    display_name:
        Name as printed in the paper's tables (``"AXPY"``, ``"Jacobi"``...).
    complexity:
        Complexity class; drives both reporting order and generator priors.
    statement:
        One-line mathematical statement of the kernel.
    num_subkernels:
        Number of distinct computational primitives a full implementation
        requires (1 for AXPY, 4+ for CG).  Used by the prior model: the paper
        observes that "multistep or multikernel codes (e.g. CG)" are the
        hardest to generate.
    flops_per_element:
        Approximate floating point operations per output element, used by the
        benchmark harness to report achieved FLOP rates.
    synonyms:
        Alternative names that may appear in prompts or corpus snippets
        (e.g. ``"daxpy"``, ``"matvec"``, ``"conjugate gradient"``).
    languages:
        Languages whose experiment grids include this kernel; ``None``
        (the default, and the value for every paper kernel) means all
        languages.  Extension families registered for a subset of
        languages leave the other languages' grids untouched.
    """

    name: str
    display_name: str
    complexity: KernelComplexity
    statement: str
    num_subkernels: int = 1
    flops_per_element: float = 2.0
    synonyms: tuple[str, ...] = ()
    languages: tuple[str, ...] | None = None

    def supports_language(self, language: str) -> bool:
        """True when this kernel belongs to ``language``'s grid."""
        return self.languages is None or language in self.languages

    def matches_token(self, token: str) -> bool:
        """Return True when ``token`` names this kernel (case-insensitive)."""
        t = token.strip().lower()
        if not t:
            return False
        if t == self.name or t == self.display_name.lower():
            return True
        return any(t == s.lower() for s in self.synonyms)


@dataclass
class Problem:
    """A concrete problem instance for a kernel.

    ``inputs`` maps argument names to numpy arrays or scalars; ``expected``
    holds the oracle output computed by the reference implementation;
    ``size`` is the characteristic problem size (vector length, matrix order,
    grid edge ...) used by benchmarks for reporting.
    """

    kernel: str
    size: int
    inputs: dict[str, Any] = field(default_factory=dict)
    expected: Any = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def copy_inputs(self) -> dict[str, Any]:
        """Return a deep copy of the inputs safe to hand to untrusted code.

        Arrays are copied so that an (incorrect) candidate implementation
        mutating its arguments cannot corrupt the oracle data.
        """
        out: dict[str, Any] = {}
        for key, value in self.inputs.items():
            if isinstance(value, np.ndarray):
                out[key] = value.copy()
            else:
                out[key] = value
        return out


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating a candidate output against the oracle."""

    passed: bool
    max_abs_error: float
    max_rel_error: float
    message: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.passed


class Kernel(abc.ABC):
    """Abstract base class for the evaluated kernels."""

    #: Subclasses must provide their static spec.
    spec: KernelSpec

    #: Default relative tolerance for validation.  Iterative kernels override
    #: this with a looser value.
    rtol: float = 1e-10
    #: Default absolute tolerance for validation.
    atol: float = 1e-12

    # -- problem generation -------------------------------------------------
    @abc.abstractmethod
    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        """Generate a random, well-conditioned problem of characteristic ``size``."""

    # -- reference implementation ------------------------------------------
    @abc.abstractmethod
    def reference(self, inputs: Mapping[str, Any]) -> Any:
        """Compute the oracle output for ``inputs`` using vectorised numpy."""

    # -- validation ---------------------------------------------------------
    def validate(self, candidate: Any, problem: Problem) -> ValidationResult:
        """Compare ``candidate`` against the problem's expected output."""
        from repro.kernels.validation import compare_outputs

        return compare_outputs(candidate, problem.expected, rtol=self.rtol, atol=self.atol)

    # -- convenience --------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def complexity(self) -> KernelComplexity:
        return self.spec.complexity

    def make_problem_with_expected(
        self, size: int, *, rng: np.random.Generator | None = None
    ) -> Problem:
        """Generate a problem and fill in its oracle output."""
        problem = self.generate_problem(size, rng=rng)
        if problem.expected is None:
            problem.expected = self.reference(problem.inputs)
        return problem

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec.name!r} complexity={self.spec.complexity.name}>"


def default_rng(rng: np.random.Generator | None, seed: int = 0) -> np.random.Generator:
    """Return ``rng`` or a fresh deterministic generator seeded with ``seed``."""
    if rng is None:
        return np.random.default_rng(seed)
    return rng
