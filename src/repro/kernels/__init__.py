"""Numerical kernel substrate.

This sub-package implements, from scratch and in vectorised numpy, the six
kernels evaluated by the paper together with their problem generators and
numerical oracles:

* :class:`~repro.kernels.axpy.AxpyKernel` — ``y = a * x + y``
* :class:`~repro.kernels.gemv.GemvKernel` — ``y = alpha * A @ x + beta * y``
* :class:`~repro.kernels.gemm.GemmKernel` — ``C = alpha * A @ B + beta * C``
* :class:`~repro.kernels.spmv.SpmvKernel` — CSR sparse matrix-vector product
* :class:`~repro.kernels.jacobi.JacobiKernel` — 3D 7-point Jacobi stencil
* :class:`~repro.kernels.cg.CgKernel` — conjugate gradients on an SPD system

Each kernel exposes a :class:`~repro.kernels.base.KernelSpec` describing its
name, complexity class and arithmetic intensity; the complexity ordering
(AXPY < GEMV < GEMM < SpMV < Jacobi < CG) is the one the paper uses when it
argues that "the more complex the kernel, the fewer quality results are
obtained".
"""

from __future__ import annotations

from repro.kernels.base import (
    Kernel,
    KernelComplexity,
    KernelSpec,
    Problem,
    ValidationResult,
)
from repro.kernels.axpy import AxpyKernel, axpy
from repro.kernels.gemv import GemvKernel, gemv
from repro.kernels.gemm import GemmKernel, gemm
from repro.kernels.spmv import SpmvKernel, spmv
from repro.kernels.jacobi import JacobiKernel, jacobi3d_step, jacobi3d_solve
from repro.kernels.cg import CgKernel, conjugate_gradient, CgResult
from repro.kernels.sparse import CsrMatrix, CooMatrix
from repro.kernels.registry import (
    KERNEL_NAMES,
    all_kernels,
    get_kernel,
    kernel_complexity_order,
)
from repro.kernels.validation import allclose, relative_error

__all__ = [
    "Kernel",
    "KernelComplexity",
    "KernelSpec",
    "Problem",
    "ValidationResult",
    "AxpyKernel",
    "GemvKernel",
    "GemmKernel",
    "SpmvKernel",
    "JacobiKernel",
    "CgKernel",
    "CgResult",
    "CsrMatrix",
    "CooMatrix",
    "axpy",
    "gemv",
    "gemm",
    "spmv",
    "jacobi3d_step",
    "jacobi3d_solve",
    "conjugate_gradient",
    "KERNEL_NAMES",
    "all_kernels",
    "get_kernel",
    "kernel_complexity_order",
    "allclose",
    "relative_error",
]
