"""GEMV kernel: ``y <- alpha * A @ x + beta * y`` (BLAS-2).

Two nested loops, dense row-major access.  The paper classifies GEMV as the
second simplest kernel after AXPY.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["gemv", "GemvKernel"]


def gemv(
    alpha: float,
    a: np.ndarray,
    x: np.ndarray,
    beta: float = 0.0,
    y: np.ndarray | None = None,
) -> np.ndarray:
    """General matrix-vector product ``alpha * A @ x + beta * y``.

    ``y`` may be omitted when ``beta`` is zero.
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("A must be 2-D")
    if x.shape != (a.shape[1],):
        raise ValueError(f"x must have shape ({a.shape[1]},), got {x.shape}")
    result = alpha * (a @ x)
    if beta != 0.0:
        if y is None:
            raise ValueError("y must be provided when beta != 0")
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (a.shape[0],):
            raise ValueError(f"y must have shape ({a.shape[0]},), got {y.shape}")
        result = result + beta * y
    return result


class GemvKernel(Kernel):
    """Problem generator and oracle for GEMV."""

    spec = KernelSpec(
        name="gemv",
        display_name="GEMV",
        complexity=KernelComplexity.SIMPLE,
        statement="y = alpha * A @ x + beta * y",
        num_subkernels=1,
        flops_per_element=2.0,
        synonyms=("dgemv", "matrix vector multiply", "matvec", "matrix-vector multiplication"),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        n_rows = size
        n_cols = max(1, size // 2 + size % 2) if size > 2 else size
        a = rng.standard_normal((n_rows, n_cols))
        x = rng.standard_normal(n_cols)
        y = rng.standard_normal(n_rows)
        alpha = float(rng.uniform(0.5, 2.0))
        beta = float(rng.uniform(0.0, 1.0))
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"alpha": alpha, "A": a, "x": x, "beta": beta, "y": y},
            metadata={"flops": 2.0 * n_rows * n_cols},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return gemv(inputs["alpha"], inputs["A"], inputs["x"], inputs["beta"], inputs["y"])
