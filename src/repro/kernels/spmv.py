"""SpMV kernel: ``y = A @ x`` for a CSR sparse matrix.

The first "irregular" kernel in the paper's complexity ordering: the memory
access pattern depends on the sparsity structure, which is why SpMV prompts
start to show sharply lower proficiency scores for most programming models.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng
from repro.kernels.sparse import CsrMatrix, poisson_2d

__all__ = ["spmv", "SpmvKernel"]


def spmv(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector product on a :class:`CsrMatrix`."""
    if not isinstance(matrix, CsrMatrix):
        raise TypeError("matrix must be a CsrMatrix")
    return matrix.matvec(x)


def spmv_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
    n_rows: int | None = None,
) -> np.ndarray:
    """SpMV expressed directly on the raw CSR arrays.

    This is the call signature most generated kernels use (row pointer,
    column index and value arrays), so the sandbox exposes it as the oracle
    interface for candidate SpMV implementations.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n_rows = int(indptr.size - 1) if n_rows is None else int(n_rows)
    matrix = CsrMatrix(
        indptr=indptr,
        indices=np.asarray(indices, dtype=np.int64),
        data=np.asarray(data, dtype=np.float64),
        shape=(n_rows, int(np.asarray(x).shape[0])),
    )
    return matrix.matvec(np.asarray(x, dtype=np.float64))


class SpmvKernel(Kernel):
    """Problem generator and oracle for CSR SpMV."""

    spec = KernelSpec(
        name="spmv",
        display_name="SpMV",
        complexity=KernelComplexity.IRREGULAR,
        statement="y = A @ x with A stored in CSR format",
        num_subkernels=1,
        flops_per_element=2.0,
        synonyms=(
            "sparse matrix vector multiply",
            "sparse matvec",
            "csr matvec",
            "sparse matrix-vector multiplication",
        ),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        """Generate a structured (2-D Poisson) or random sparse problem.

        For sizes that are perfect squares we use the 5-point Poisson
        operator on a sqrt(size) x sqrt(size) grid, which matches the
        realistic workload; otherwise we fall back to a random sparse matrix
        with ~5% fill.
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        grid = int(round(size ** 0.5))
        if grid * grid == size and grid >= 2:
            matrix = poisson_2d(grid)
            structure = "poisson2d"
        else:
            density = min(1.0, max(0.05, 4.0 / max(size, 1)))
            matrix = CsrMatrix.random(size, size, density, rng=rng)
            structure = "random"
        x = rng.standard_normal(matrix.n_cols)
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={
                "matrix": matrix,
                "indptr": matrix.indptr,
                "indices": matrix.indices,
                "data": matrix.data,
                "x": x,
            },
            metadata={"nnz": matrix.nnz, "structure": structure, "flops": 2.0 * matrix.nnz},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return spmv(inputs["matrix"], inputs["x"])
