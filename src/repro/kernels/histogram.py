"""Histogram kernel: per-bin counts from precomputed bin indices.

An extension family beyond the paper's six kernels (see
:mod:`repro.extensions` and ``docs/extending.md``).  The GPU formulation is
a duplicate scatter — many threads increment the same bin — so correct
implementations need ``atomicAdd``, which the lockstep hazard machinery
models natively; dropping the atomic is the lost-update bug the
``drop_atomic`` mutation operator injects.  Registered for the Python grid
only.

The bin indices are an explicit ``int32`` input (the same access shape as
SpMV's ``col_idx``) rather than derived from float data inside the kernel,
which keeps the CUDA-C templates free of float-to-int casts.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["histogram", "HistogramKernel"]


def histogram(bins: np.ndarray, nbins: int) -> np.ndarray:
    """Count occurrences of each bin index (float64 counts, the GPU dtype)."""
    bins = np.asarray(bins)
    if bins.ndim != 1:
        raise ValueError(f"bins must be one-dimensional, got shape {bins.shape}")
    if nbins < 1:
        raise ValueError("nbins must be >= 1")
    if bins.size and (bins.min() < 0 or bins.max() >= nbins):
        raise ValueError("bin indices must lie in [0, nbins)")
    return np.bincount(bins, minlength=nbins).astype(np.float64)


class HistogramKernel(Kernel):
    """Problem generator and oracle for the atomic histogram."""

    spec = KernelSpec(
        name="histogram",
        display_name="Histogram",
        complexity=KernelComplexity.IRREGULAR,
        statement="hist[bins[i]] += 1",
        num_subkernels=1,
        flops_per_element=1.0,
        synonyms=("binning", "bincount", "atomic histogram"),
        languages=("python",),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        nbins = max(2, min(size, 8))
        bins = rng.integers(0, nbins, size=size).astype(np.int32)
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"bins": bins, "nbins": nbins},
            metadata={"flops": float(size)},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return histogram(inputs["bins"], inputs["nbins"])
