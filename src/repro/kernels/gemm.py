"""GEMM kernel: ``C <- alpha * A @ B + beta * C`` (BLAS-3).

Triple loop nest; the paper groups it with the "dense matrix cases" where the
`function` postfix keyword noticeably improves C++ suggestion quality.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["gemm", "GemmKernel"]


def gemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float = 0.0,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """General matrix-matrix product ``alpha * A @ B + beta * C``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("A and B must be 2-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    result = alpha * (a @ b)
    if beta != 0.0:
        if c is None:
            raise ValueError("C must be provided when beta != 0")
        c = np.asarray(c, dtype=np.float64)
        if c.shape != (a.shape[0], b.shape[1]):
            raise ValueError(f"C must have shape {(a.shape[0], b.shape[1])}, got {c.shape}")
        result = result + beta * c
    return result


def gemm_blocked(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float = 0.0,
    c: np.ndarray | None = None,
    *,
    block: int = 64,
) -> np.ndarray:
    """Cache-blocked GEMM used by the benchmark harness for comparison.

    Panels of ``block`` columns/rows are multiplied with numpy's ``@``; the
    outer blocking loop stays in Python but touches at most
    ``ceil(n / block)**2`` iterations, so the cost is dominated by BLAS calls.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.float64)
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            acc = out[i0:i1, j0:j1]
            for k0 in range(0, k, block):
                k1 = min(k0 + block, k)
                acc += a[i0:i1, k0:k1] @ b[k0:k1, j0:j1]
    out *= alpha
    if beta != 0.0:
        if c is None:
            raise ValueError("C must be provided when beta != 0")
        out += beta * np.asarray(c, dtype=np.float64)
    return out


class GemmKernel(Kernel):
    """Problem generator and oracle for GEMM."""

    spec = KernelSpec(
        name="gemm",
        display_name="GEMM",
        complexity=KernelComplexity.MODERATE,
        statement="C = alpha * A @ B + beta * C",
        num_subkernels=1,
        flops_per_element=2.0,
        synonyms=("dgemm", "matrix multiply", "matmul", "matrix-matrix multiplication"),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        m = size
        k = max(1, size - 1) if size > 2 else size
        n = max(1, size // 2 + size % 2) if size > 2 else size
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        alpha = float(rng.uniform(0.5, 2.0))
        beta = float(rng.uniform(0.0, 1.0))
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"alpha": alpha, "A": a, "B": b, "beta": beta, "C": c},
            metadata={"flops": 2.0 * m * n * k},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return gemm(inputs["alpha"], inputs["A"], inputs["B"], inputs["beta"], inputs["C"])
