"""AXPY kernel: ``y <- a * x + y`` (BLAS-1).

The simplest kernel in the paper's suite — a single loop with unit stride,
which is why it consistently receives the best proficiency scores across all
languages and programming models in the evaluation.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.kernels.base import Kernel, KernelComplexity, KernelSpec, Problem, default_rng

__all__ = ["axpy", "AxpyKernel"]


def axpy(a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Return ``a * x + y`` without mutating the inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"x and y must have the same shape, got {x.shape} and {y.shape}")
    return a * x + y


def axpy_inplace(a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """In-place AXPY: ``y += a * x`` (returns ``y`` for convenience)."""
    if x.shape != y.shape:
        raise ValueError(f"x and y must have the same shape, got {x.shape} and {y.shape}")
    y += a * x
    return y


class AxpyKernel(Kernel):
    """Problem generator and oracle for AXPY."""

    spec = KernelSpec(
        name="axpy",
        display_name="AXPY",
        complexity=KernelComplexity.TRIVIAL,
        statement="y = a * x + y",
        num_subkernels=1,
        flops_per_element=2.0,
        synonyms=("daxpy", "saxpy", "vector update", "scaled vector addition"),
    )

    def generate_problem(self, size: int, *, rng: np.random.Generator | None = None) -> Problem:
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = default_rng(rng, seed=size)
        a = float(rng.uniform(0.5, 2.0))
        x = rng.standard_normal(size)
        y = rng.standard_normal(size)
        problem = Problem(
            kernel=self.spec.name,
            size=size,
            inputs={"a": a, "x": x, "y": y},
            metadata={"flops": 2.0 * size},
        )
        problem.expected = self.reference(problem.inputs)
        return problem

    def reference(self, inputs: Mapping[str, Any]) -> np.ndarray:
        return axpy(inputs["a"], inputs["x"], inputs["y"])
