"""Opt-in grid extensions: scan/histogram families and the PyKokkos column.

The stock registries reproduce the paper's grid exactly as imported — 19
models x 6 kernels across four languages.  This module grows that grid
*without* perturbing it: :func:`install_extended_grid` registers

* the two extension kernel families (``scan``, ``histogram`` — Python-only,
  see :mod:`repro.kernels.scan` / :mod:`repro.kernels.histogram`),
* the ``python.kokkos`` programming model (executed by the
  :mod:`repro.sandbox.fake_kokkos` runtime),
* the correct templates for every new cell
  (:mod:`repro.corpus.templates.python_extended`), and
* a maturity prior for the new model,

all strictly *after* the stock entries, so the stock enumeration order — and
with it the per-cell random stream of every stock cell (the
``cell_seed_sequence`` contract) — is byte-identical to an uninstalled
process.  :func:`uninstall_extended_grid` reverses everything; both are
idempotent.

Everything content-keyed or marker-gated (sandbox oracle tasks, static
geometry profiles, the fake pykokkos module, detection markers) is installed
unconditionally by its home module because it cannot affect stock behavior;
only the pieces that change *grid enumeration* live behind this installer.

See ``docs/extending.md`` for the full recipe this module is the worked
example of.
"""

from __future__ import annotations

from repro.corpus.store import clear_default_corpus_cache
from repro.corpus.templates import register_templates, unregister_templates
from repro.corpus.templates.python_extended import TEMPLATES as _EXTENDED_TEMPLATES
from repro.kernels.histogram import HistogramKernel
from repro.kernels.registry import register_kernel, unregister_kernel
from repro.kernels.scan import ScanKernel
from repro.models import grid
from repro.models.programming_models import (
    ExecutionTarget,
    ProgrammingModel,
    register_model,
    unregister_model,
)
from repro.popularity.maturity import MODEL_MATURITY

__all__ = [
    "EXTENSION_KERNELS",
    "EXTENSION_MODEL_UID",
    "install_extended_grid",
    "uninstall_extended_grid",
    "extended_grid_installed",
]

#: Kernel families this installer adds.
EXTENSION_KERNELS: tuple[str, ...] = ("scan", "histogram")

#: The fourth Python programming-model column.
EXTENSION_MODEL_UID = "python.kokkos"

#: Availability of public PyKokkos example code at the study date: the
#: package was announced in 2021 and its public corpus is a small fraction
#: of even cpp.kokkos's (0.40) — comparable to the youngest stock entries.
_KOKKOS_MATURITY = 0.20

_KOKKOS_MODEL = ProgrammingModel(
    uid=EXTENSION_MODEL_UID,
    display_name="PyKokkos",
    language="python",
    prompt_phrase="PyKokkos",
    target=ExecutionTarget.BOTH,
    introduced=2021,
    detection_markers=("import pykokkos", "pk.parallel_for", "pk.workunit", "pykokkos"),
    required_markers=("pykokkos",),
    notes="Python bindings for the Kokkos performance-portability model",
    tags=("abstraction", "library"),
)


def _clear_grid_caches() -> None:
    """Invalidate every cache keyed on grid enumeration or corpus content."""
    grid._canonical_cell_positions.cache_clear()
    clear_default_corpus_cache()


def extended_grid_installed() -> bool:
    """Whether :func:`install_extended_grid` is currently in effect."""
    from repro.models.programming_models import PROGRAMMING_MODELS

    return EXTENSION_MODEL_UID in PROGRAMMING_MODELS


def install_extended_grid() -> None:
    """Register the extended grid (idempotent).

    After this call the Python grid has 4 models x 8 kernels (plus the
    keyword variants); the other languages are untouched, as is every stock
    cell's random stream.
    """
    register_kernel(ScanKernel())
    register_kernel(HistogramKernel())
    register_model(_KOKKOS_MODEL)
    MODEL_MATURITY.setdefault(EXTENSION_MODEL_UID, _KOKKOS_MATURITY)
    register_templates("python", _EXTENDED_TEMPLATES)
    _clear_grid_caches()


def uninstall_extended_grid() -> None:
    """Remove everything :func:`install_extended_grid` registered (idempotent)."""
    unregister_templates("python", _EXTENDED_TEMPLATES.keys())
    MODEL_MATURITY.pop(EXTENSION_MODEL_UID, None)
    unregister_model(EXTENSION_MODEL_UID)
    for kernel in EXTENSION_KERNELS:
        unregister_kernel(kernel)
    _clear_grid_caches()
