"""Shared worker-side runner pooling for the dispatch layer.

Both the :class:`~repro.dispatch.driver.ShardDriver` (inline and
file-queue-local execution) and :func:`~repro.dispatch.queue.drain_queue`
(the ``dispatch-worker`` loop) evaluate shards on lazily-created serial
:class:`~repro.core.runner.EvaluationRunner`s keyed on
``(seed, config fingerprint)``; this module is the single implementation of
that lifecycle so the two paths can never drift apart.
"""

from __future__ import annotations

from typing import Callable

from repro.core.runner import EvaluationRunner

__all__ = ["RunnerPool"]


class RunnerPool:
    """Lazily-created serial runners keyed ``(seed, config fingerprint)``,
    all sharing one verdict store and progress callback, closed together."""

    def __init__(self, *, verdict_store=None, progress: Callable | None = None) -> None:
        self.verdict_store = verdict_store
        self.progress = progress
        self._runners: dict[tuple[int, str], EvaluationRunner] = {}

    def runner(self, seed: int, config) -> EvaluationRunner:
        key = (seed, config.fingerprint())
        runner = self._runners.get(key)
        if runner is None:
            runner = self._runners[key] = EvaluationRunner(
                config=config,
                seed=seed,
                progress=self.progress,
                verdict_store=self.verdict_store,
            )
        return runner

    def close(self) -> None:
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()

    def __enter__(self) -> "RunnerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
