"""Shared worker-side machinery for the dispatch layer.

Both the :class:`~repro.dispatch.driver.ShardDriver` (inline and
file-queue-local execution) and :func:`~repro.dispatch.queue.drain_queue`
(the ``dispatch-worker`` loop) evaluate shards on lazily-created serial
:class:`~repro.core.runner.EvaluationRunner`s keyed on
``(seed, config fingerprint)``, and both must survive a shard whose
evaluation raises: this module is the single implementation of the runner
lifecycle (:class:`RunnerPool`), the crash-containment wrapper
(:func:`run_shard_contained`) and the structured failure record every
retry/quarantine decision is based on, so the worker paths can never drift
apart.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable

from repro.core.runner import EvaluationRunner, ResultSet
from repro.dispatch import faults

__all__ = [
    "FAILURE_FORMAT",
    "RunnerPool",
    "evaluate_with_retries",
    "failure_record",
    "run_shard_contained",
    "shard_label",
]

#: Format tag of one structured failure record (see :func:`failure_record`).
FAILURE_FORMAT = "repro.dispatch-failure/v1"


def shard_label(shard) -> str:
    """Stable human-readable shard identity: ``s<seed>-<start>-<stop>``.

    The prefix of the file queue's task names, so a fault plan's ``match``
    string targets the same shard whichever backend evaluates it.
    """
    entry = shard.entry()
    return f"s{entry.seed}-{entry.start:05d}-{entry.stop:05d}"


def failure_record(
    error: BaseException | str,
    *,
    label: str = "",
    phase: str = "evaluate",
    attempt: int | None = None,
    message: str | None = None,
) -> dict:
    """One structured failure: what broke, where, on which attempt.

    ``error`` is either the caught exception (type, message and a bounded
    traceback are captured) or a symbolic kind string for failures that
    have no exception object — ``"LeaseExpired"`` (a claim went stale),
    ``"ShardTimeout"`` (a hung subprocess was killed), ``"WorkerDied"``
    (a subprocess exited without reporting).  These records ride along
    wherever a failure is persisted: the queue's attempts sidecars, the
    ``failed/`` dead-letter payloads, and
    :class:`~repro.dispatch.driver.ShardQuarantine` entries in the report.
    """
    if isinstance(error, BaseException):
        kind = type(error).__name__
        detail = str(error)
        trace = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )[-4000:]
    else:
        kind = str(error)
        detail = message or ""
        trace = None
    return {
        "format": FAILURE_FORMAT,
        "error": kind,
        "message": detail,
        "traceback": trace,
        "phase": phase,
        "shard": label,
        "attempt": attempt,
        "time": time.time(),
    }


def run_shard_contained(
    runner: EvaluationRunner, shard, *, label: str, attempt: int = 1
) -> tuple[ResultSet | None, dict | None, float]:
    """Evaluate one shard, containing any crash as a failure record.

    Returns ``(results, failure, seconds)`` where exactly one of
    ``results``/``failure`` is set.  The ``worker.evaluate`` fault point
    fires first (context: ``label``), so chaos plans can crash, hang or
    kill precisely this evaluation; a genuine exception from the
    evaluation pipeline takes the same containment path.  Nothing here
    retries — the caller owns the attempt budget and the quarantine
    decision.
    """
    start = time.perf_counter()
    try:
        faults.fire("worker.evaluate", label)
        results = runner.run_cells(shard.cells())
    except Exception as exc:
        failure = failure_record(exc, label=label, attempt=attempt)
        return None, failure, time.perf_counter() - start
    return results, None, time.perf_counter() - start


def evaluate_with_retries(
    runner: EvaluationRunner,
    shard,
    *,
    label: str,
    max_attempts: int,
    backoff_base: float = 0.05,
    backoff_cap: float = 0.5,
) -> tuple[ResultSet | None, list[dict], float]:
    """Evaluate one shard with the dispatch layer's full attempt budget.

    The retry loop both the inline driver backend and the evaluation
    service run: up to ``max_attempts`` contained attempts
    (:func:`run_shard_contained`), jittered exponential backoff between
    them (:func:`repro.dispatch.faults.backoff_delay`), and a complete
    failure history for the quarantine record.

    Returns ``(results, failures, seconds)``: ``results`` is ``None`` when
    every attempt failed (caller quarantines, with ``failures[-1]`` as the
    terminal record); ``seconds`` is the wall clock of the last attempt.
    """
    failures: list[dict] = []
    seconds = 0.0
    for attempt in range(1, max_attempts + 1):
        results, failure, seconds = run_shard_contained(
            runner, shard, label=label, attempt=attempt
        )
        if failure is None:
            return results, failures, seconds
        failures.append(failure)
        if attempt < max_attempts:
            time.sleep(faults.backoff_delay(attempt - 1, base=backoff_base, cap=backoff_cap))
    return None, failures, seconds


class RunnerPool:
    """Lazily-created serial runners keyed ``(seed, config fingerprint)``,
    all sharing one verdict store and progress callback, closed together."""

    def __init__(self, *, verdict_store=None, progress: Callable | None = None) -> None:
        self.verdict_store = verdict_store
        self.progress = progress
        self._runners: dict[tuple[int, str], EvaluationRunner] = {}

    def runner(self, seed: int, config) -> EvaluationRunner:
        key = (seed, config.fingerprint())
        runner = self._runners.get(key)
        if runner is None:
            runner = self._runners[key] = EvaluationRunner(
                config=config,
                seed=seed,
                progress=self.progress,
                verdict_store=self.verdict_store,
            )
        return runner

    def close(self) -> None:
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()

    def __enter__(self) -> "RunnerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
