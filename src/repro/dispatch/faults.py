"""Deterministic fault injection for the dispatch layer.

Fault tolerance that is never exercised is fault tolerance that does not
work, so the dispatch code carries **named fault points** — call sites that
ask this module "does anything go wrong here?" before or while doing their
real work.  In production the answer is always no and the check is one
``None`` comparison; in the chaos tests (and the CI chaos-smoke job) a
**fault plan** arms specific points with specific failures, deterministically:

=========  ==================================================================
action     effect at the fault point
=========  ==================================================================
``crash``  raise :class:`InjectedCrash` — an "ordinary" worker exception,
           exercising crash containment and the retry/quarantine machinery
``die``    ``os._exit(17)`` — a hard worker death (no exception handling,
           no cleanup), exercising lease expiry and subprocess reaping
``hang``   ``time.sleep(arg)`` — a wedged worker, exercising per-shard
           timeouts and heartbeat-lease takeover
``corrupt``  returned to the call site, which then writes deliberately
           garbled bytes instead of its payload — exercising the
           validate-on-read / degrade-to-recompute paths
``skew``   returned to the clock call site as ``arg`` seconds added to
           "now" — a worker whose clock runs fast sees every claim as
           stale, exercising the claim/requeue race protocol
=========  ==================================================================

A fault fires when its ``point`` matches, its ``match`` substring (if any)
is found in the call-site context string (e.g. the task name — this is how
one specific shard becomes the poison shard), and its ``times`` budget (if
any) is not yet spent.  Counting is per-process and thread-safe, so "crash
the first attempt, succeed on retry" is expressible and reproducible.

Plans are installed through the API (:func:`install`, :func:`reset`) or the
``REPRO_FAULTS`` environment variable — a JSON list such as::

    REPRO_FAULTS='[{"point": "worker.evaluate", "action": "crash",
                    "match": "-00000-", "times": 2}]'

The env seam is what lets chaos CI inject faults into real subprocess
workers: children inherit the variable and arm the same plan.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

__all__ = [
    "FAULTS_ENV",
    "Fault",
    "InjectedCrash",
    "backoff_delay",
    "clock_skew",
    "fire",
    "install",
    "reset",
]

#: Environment variable carrying a JSON fault plan (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Actions a fault point knows how to apply (see module docstring).
ACTIONS: tuple[str, ...] = ("crash", "die", "hang", "corrupt", "skew")


class InjectedCrash(RuntimeError):
    """The exception an armed ``crash`` fault raises at its point."""


class Fault:
    """One armed fault: where it fires, what it does, and how often."""

    def __init__(
        self,
        point: str,
        action: str,
        *,
        arg: float = 0.0,
        times: int | None = None,
        match: str = "",
    ) -> None:
        if action not in ACTIONS:
            raise ValueError(f"unknown fault action {action!r}; choose from {ACTIONS}")
        if times is not None and times < 1:
            raise ValueError(f"fault times must be >= 1, got {times}")
        self.point = point
        self.action = action
        self.arg = float(arg)
        self.times = times
        self.match = match
        self.fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fault({self.point!r}, {self.action!r}, arg={self.arg}, "
            f"times={self.times}, match={self.match!r}, fired={self.fired})"
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "Fault":
        return cls(
            str(payload["point"]),
            str(payload["action"]),
            arg=float(payload.get("arg", 0.0)),
            times=None if payload.get("times") is None else int(payload["times"]),
            match=str(payload.get("match", "")),
        )


# The active plan.  ``None`` + env-not-checked is the cold state; the fast
# path through fire() is a single ``is None`` test once the env is known
# to be empty.
_plan: list[Fault] | None = None
_env_checked = False
_lock = threading.Lock()


def install(faults: list[Fault] | list[dict]) -> None:
    """Arm a fault plan for this process (replacing any previous plan)."""
    global _plan, _env_checked
    with _lock:
        _plan = [f if isinstance(f, Fault) else Fault.from_payload(f) for f in faults]
        _env_checked = True


def reset() -> None:
    """Disarm everything; the next :func:`fire` re-reads ``REPRO_FAULTS``."""
    global _plan, _env_checked
    with _lock:
        _plan = None
        _env_checked = False


def _active() -> list[Fault] | None:
    global _plan, _env_checked
    if _env_checked:
        return _plan
    with _lock:
        if not _env_checked:
            spec = os.environ.get(FAULTS_ENV)
            if spec:
                _plan = [Fault.from_payload(entry) for entry in json.loads(spec)]
            _env_checked = True
    return _plan


def fire(point: str, context: str = "") -> Fault | None:
    """Apply any armed fault at ``point`` (see module docstring).

    ``crash``/``die``/``hang`` are applied here (raise / exit / sleep);
    ``corrupt`` and ``skew`` are returned for the call site to interpret.
    Returns the fault that fired (after applying it), or ``None`` — the
    overwhelmingly common case, costing one comparison.
    """
    plan = _active()
    if plan is None:
        return None
    fault = None
    with _lock:
        for candidate in plan:
            if candidate.point != point:
                continue
            if candidate.match and candidate.match not in context:
                continue
            if candidate.times is not None and candidate.fired >= candidate.times:
                continue
            candidate.fired += 1
            fault = candidate
            break
    if fault is None:
        return None
    if fault.action == "crash":
        raise InjectedCrash(f"injected crash at {point} ({context or 'no context'})")
    if fault.action == "die":
        os._exit(17)
    if fault.action == "hang":
        time.sleep(fault.arg)
    return fault


def clock_skew(context: str = "") -> float:
    """Seconds to add to "now" in staleness arithmetic (``skew`` faults).

    The queue's lease checks compute claim age through this, so a chaos
    test can make one side believe every lease expired long ago without
    touching real clocks or sleeping.
    """
    fault = fire("queue.clock", context)
    return fault.arg if fault is not None and fault.action == "skew" else 0.0


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    rng: random.Random | None = None,
) -> float:
    """Full-jitter exponential backoff: uniform in ``[0, min(cap, base·2ⁿ)]``.

    Fixed-interval polling synchronises idle workers into stat storms on
    the shared queue directory; jittered exponential backoff is the
    standard cure.  ``rng`` is injectable so tests stay deterministic.
    """
    upper = min(cap, base * (2.0 ** min(63, max(0, attempt))))
    return (rng or random).uniform(0.0, upper)
