"""Resumable shard dispatch: partition a spec, farm it out, merge the stream.

A :class:`ShardDriver` turns a declarative
:class:`~repro.api.spec.ExperimentSpec` into a crash-safe distributed run:

1. **Partition** — the spec is cut into ``shards`` contiguous
   :class:`~repro.api.spec.Shard`s per seed (PR 2's manifest machinery).
2. **Resume check** — every shard is first looked up in the
   :class:`~repro.dispatch.store.ResultStore`; hits are *skipped* entirely,
   so a driver killed mid-run re-executes nothing it already finished.
3. **Dispatch** — misses go to one of three pluggable worker backends:
   ``inline`` (evaluate in this process), ``process`` (a subprocess pool),
   or ``file-queue`` (a shared directory any host can drain with
   ``repro-hpc-codex dispatch-worker`` — see :mod:`repro.dispatch.queue`).
4. **Stream** — shard payloads are folded into an
   :class:`~repro.api.spec.IncrementalMerge` the moment they complete, and
   ``progress`` / ``on_shard`` callbacks fire in **submission order** — the
   same ordering contract :class:`~repro.core.runner.EvaluationRunner`
   gives per-cell progress, extended to shards.
5. **Validate** — the final merge goes through
   :class:`~repro.api.spec.ShardManifest`, so a complete dispatch is
   byte-identical to an unsharded ``run --json`` and an incomplete one can
   never masquerade as complete.

Every executed shard is written back to the store before its callbacks
fire, so the crash window never loses more than the shard in flight.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.store import VerdictStore
from repro.api.spec import (
    ExperimentSpec,
    IncrementalMerge,
    Shard,
    ShardEntry,
    load_shard_payload,
    shard_payload,
)
from repro.core.runner import EvaluationRunner, ResultSet
from repro.dispatch.queue import FileQueue
from repro.dispatch.runners import RunnerPool
from repro.dispatch.store import ResultStore

__all__ = ["DISPATCH_BACKENDS", "DispatchReport", "ShardDriver", "ShardOutcome"]

#: Worker backends understood by :class:`ShardDriver`.
DISPATCH_BACKENDS: tuple[str, ...] = ("inline", "process", "file-queue")

#: How long a file-queue claim may sit without a result before a resuming
#: driver offers the shard to other workers again (a crashed worker's claim
#: must not wedge the run forever).
STALE_CLAIM_SECONDS = 300.0


@dataclass(frozen=True)
class ShardOutcome:
    """One completed shard: where its records came from and what they cost."""

    entry: ShardEntry
    results: ResultSet
    #: ``"store"`` (resume hit), ``"inline"``, ``"process"``, or
    #: ``"file-queue"`` (evaluated locally through the queue) /
    #: ``"remote"`` (another worker drained it).
    source: str
    seconds: float

    @property
    def cached(self) -> bool:
        """True when the shard was served from the result store (skipped)."""
        return self.source == "store"


@dataclass
class DispatchReport:
    """What a :meth:`ShardDriver.run` accomplished.

    ``outcomes`` lists every *completed* shard in submission order; when
    ``complete`` is false (the driver hit ``max_shards`` — the crash-test
    throttle) the remaining shards are still pending and ``results`` holds
    the manifest-unvalidated partial merge.
    """

    spec: ExperimentSpec
    #: Per-seed slice count the spec was partitioned into.
    shards: int
    outcomes: list[ShardOutcome] = field(default_factory=list)
    results: dict[int, ResultSet] = field(default_factory=dict)
    complete: bool = False
    #: Suggestion modules executed by this driver's local workers.
    sandbox_executions: int = 0
    #: Persistent verdict-store hits observed by this driver's local workers.
    verdict_store_hits: int = 0

    @property
    def shards_total(self) -> int:
        return len(self.spec.seeds) * self.shards

    @property
    def executed(self) -> list[ShardOutcome]:
        """Shards this driver evaluated locally (any backend)."""
        return [o for o in self.outcomes if o.source in ("inline", "process", "file-queue")]

    @property
    def remote(self) -> list[ShardOutcome]:
        """Shards another worker drained from the file queue."""
        return [outcome for outcome in self.outcomes if outcome.source == "remote"]

    @property
    def skipped(self) -> list[ShardOutcome]:
        """Shards served straight from the result store (zero re-execution)."""
        return [outcome for outcome in self.outcomes if outcome.cached]

    def result(self) -> ResultSet:
        """The merged records of a complete single-seed dispatch."""
        if not self.complete:
            raise ValueError(
                f"dispatch is incomplete ({len(self.outcomes)}/{self.shards_total} "
                "shards done); re-run against the same result store to resume"
            )
        if len(self.results) != 1:
            raise ValueError(f"dispatch covers seeds {sorted(self.results)}; use .results")
        return next(iter(self.results.values()))

    def summary(self) -> str:
        """One status line: totals, split by provenance."""
        state = "complete" if self.complete else f"PARTIAL {len(self.outcomes)}/{self.shards_total}"
        line = (
            f"dispatch {state}: {self.shards_total} shard(s), "
            f"executed={len(self.executed)} skipped={len(self.skipped)}"
        )
        if self.remote:
            line += f" remote={len(self.remote)}"
        return line


def _evaluate_shard_in_subprocess(
    spec: ExperimentSpec, index: int, of: int, store_path: str | None
) -> tuple[list[dict], int, int, float]:
    """Process-backend worker: evaluate one shard, return its records.

    Returns ``(records, sandbox executions, verdict-store hits, seconds)``
    — the counter deltas let the parent driver aggregate across the pool
    exactly as :class:`EvaluationRunner`'s chunk workers do, and the
    worker-measured seconds are the shard's own evaluation cost (the parent
    cannot separate queueing from computing).
    """
    shard = spec.shard(index, of)
    store = None if store_path is None else VerdictStore(store_path)
    start = time.perf_counter()
    with EvaluationRunner(config=spec.config, seed=shard.seed, verdict_store=store) as runner:
        results = runner.run_cells(shard.cells())
        seconds = time.perf_counter() - start
        return results.to_records(), runner.sandbox_executions, runner.store_hits, seconds


class ShardDriver:
    """Dispatch a spec's shards to workers, resumably (module docstring).

    Parameters
    ----------
    spec:
        The run to evaluate.
    shards:
        Contiguous slices per seed (``spec.partition(shards)``).
    backend:
        ``"inline"`` (default), ``"process"`` or ``"file-queue"``.
    result_store:
        Where completed shard payloads survive the process:  a
        :class:`~repro.dispatch.store.ResultStore`, a path, ``True`` for
        the default location, or ``None`` (dispatch still works, nothing is
        resumable).
    verdict_store:
        Optional persistent verdict cache handed to every local worker
        (suggestion-level resume, orthogonal to the shard-level store).
    max_workers:
        Subprocess-pool width for the ``process`` backend.
    queue:
        Queue directory (or :class:`~repro.dispatch.queue.FileQueue`) for
        the ``file-queue`` backend.
    progress:
        Per-cell callback, fired in submission order: live during inline
        evaluation, per completed shard otherwise (store hits and remote
        shards deliver :class:`~repro.core.runner.RecordResult`s).
    on_shard:
        Per-shard callback receiving each :class:`ShardOutcome` in
        submission order — the hook an incremental table/figure renderer
        attaches to.
    max_shards:
        Stop after locally executing this many shards (the deterministic
        stand-in for ``kill -9`` in crash/resume tests and CI).  The run
        reports ``complete=False``; re-running resumes from the store.
    runner_factory:
        Advanced hook (used by :meth:`repro.api.Session.dispatch`) supplying
        pooled runners for inline evaluation, ``(seed, config) -> runner``.
    poll_interval:
        File-queue polling cadence while waiting on other workers.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        shards: int = 4,
        backend: str = "inline",
        result_store: ResultStore | str | Path | bool | None = None,
        verdict_store: VerdictStore | str | Path | bool | None = None,
        max_workers: int | None = None,
        queue: FileQueue | str | Path | None = None,
        progress: Callable | None = None,
        on_shard: Callable[[ShardOutcome], None] | None = None,
        max_shards: int | None = None,
        runner_factory: Callable[[int, object], EvaluationRunner] | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        if backend not in DISPATCH_BACKENDS:
            raise ValueError(f"unknown dispatch backend {backend!r}; choose from {DISPATCH_BACKENDS}")
        if shards < 1:
            raise ValueError(f"cannot dispatch {shards} shards")
        if backend == "file-queue" and queue is None:
            raise ValueError("the file-queue backend needs a queue directory (queue=...)")
        if max_shards is not None and max_shards < 0:
            raise ValueError(f"max_shards must be >= 0, got {max_shards}")
        self.spec = spec
        self.shards = shards
        self.backend = backend
        self.result_store = ResultStore.coerce(result_store)
        self.verdict_store = VerdictStore.coerce(verdict_store)
        self.max_workers = max_workers
        self.queue = queue if isinstance(queue, FileQueue) or queue is None else FileQueue(queue)
        self.progress = progress
        self.on_shard = on_shard
        self.max_shards = max_shards
        self.poll_interval = poll_interval
        self._runner_factory = runner_factory
        self._own_runners = RunnerPool(verdict_store=self.verdict_store, progress=progress)
        #: Earliest time the next stale-claim sweep is allowed (requeue_stale
        #: walks and stats the whole claims directory — potentially on NFS —
        #: so the wait loops throttle it instead of sweeping every poll).
        self._next_stale_sweep = 0.0

    # -- driving ---------------------------------------------------------------
    def run(self) -> DispatchReport:
        """Dispatch every shard not already in the store; merge the stream."""
        report = DispatchReport(spec=self.spec, shards=self.shards)
        merge = IncrementalMerge()
        plan = self.spec.partition(self.shards)
        cached: dict[int, ResultSet] = {}
        for shard in plan:
            if self.result_store is not None:
                hit = self.result_store.get(shard.entry())
                if hit is not None:
                    cached[shard.index] = hit
        pending = [shard for shard in plan if shard.index not in cached]
        budget = len(pending) if self.max_shards is None else min(self.max_shards, len(pending))
        try:
            runners = {
                "inline": self._drive_inline,
                "process": self._drive_process,
                "file-queue": self._drive_queue,
            }
            for outcome in runners[self.backend](plan, cached, budget, report):
                self._complete_shard(outcome, merge, report)
        finally:
            self._close_runners()
        report.complete = len(report.outcomes) == report.shards_total
        report.results = merge.merged() if report.complete else merge.partial()
        return report

    def _complete_shard(
        self, outcome: ShardOutcome, merge: IncrementalMerge, report: DispatchReport
    ) -> None:
        """Persist, merge and announce one completed shard (in order)."""
        if self.result_store is not None and not outcome.cached:
            self.result_store.put(outcome.entry, outcome.results)
        merge.add(outcome.entry, outcome.results)
        if self.progress is not None and outcome.source not in ("inline", "file-queue"):
            # Locally-executed shards ("inline", and "file-queue" claims this
            # driver evaluated itself) already streamed per-cell progress
            # live through their runner; every other source delivers the
            # shard's cells here, still in submission order.
            for result in outcome.results:
                self.progress(result)
        report.outcomes.append(outcome)
        if self.on_shard is not None:
            self.on_shard(outcome)

    # -- inline backend --------------------------------------------------------
    def _drive_inline(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[ShardOutcome]:
        for shard in plan:
            if shard.index in cached:
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                continue
            if budget <= 0:
                # Budget spent (crash simulation): skip the shard but keep
                # serving later store hits, so the report and partial merge
                # reflect everything that is actually done.
                continue
            budget -= 1
            runner = self._runner(shard.seed)
            executions, hits = runner.sandbox_executions, runner.store_hits
            start = time.perf_counter()
            results = runner.run_cells(shard.cells())
            seconds = time.perf_counter() - start
            report.sandbox_executions += runner.sandbox_executions - executions
            report.verdict_store_hits += runner.store_hits - hits
            yield ShardOutcome(shard.entry(), results, "inline", seconds)

    def _runner(self, seed: int) -> EvaluationRunner:
        if self._runner_factory is not None:
            return self._runner_factory(seed, self.spec.config)
        return self._own_runners.runner(seed, self.spec.config)

    def _close_runners(self) -> None:
        self._own_runners.close()

    # -- process backend -------------------------------------------------------
    def _drive_process(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[ShardOutcome]:
        to_execute = [shard for shard in plan if shard.index not in cached][:budget]
        if not to_execute:
            # Fully warm (or zero budget): serve store hits without paying
            # for a pool nothing would run on.
            for shard in plan:
                if shard.index not in cached:
                    return
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
            return
        store_path = None if self.verdict_store is None else str(self.verdict_store.path)
        # Same hardware-based sizing policy as EvaluationRunner's pools,
        # additionally capped by the actual shard count.
        workers = self.max_workers or min(8, os.cpu_count() or 1, len(to_execute))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _evaluate_shard_in_subprocess,
                    shard.spec,
                    shard.index,
                    shard.of,
                    store_path,
                ): shard
                for shard in to_execute
            }
            completed_order = as_completed(futures)
            ready: dict[int, ShardOutcome] = {}

            def drain_until(index: int) -> None:
                # Pull pool results in *completion* order and persist each
                # one to the store the moment it lands — while the driver
                # waits on an early slow shard, later finished shards are
                # already crash-safe on disk.  Only the yield below (and
                # therefore callbacks and the merge) follows submission
                # order.
                while index not in ready:
                    future = next(completed_order)
                    done = futures[future]
                    records, executions, hits, seconds = future.result()
                    report.sandbox_executions += executions
                    report.verdict_store_hits += hits
                    results = ResultSet.from_payload(records, seed=done.seed)
                    if self.result_store is not None:
                        self.result_store.put(done.entry(), results)
                    ready[done.index] = ShardOutcome(done.entry(), results, "process", seconds)

            indexes = {shard.index for shard in to_execute}
            for shard in plan:
                if shard.index in cached:
                    yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                    continue
                if shard.index not in indexes:
                    # Budget-excluded shard: skip it but keep serving any
                    # later store hits, so the report and partial merge
                    # reflect everything that is actually done.
                    continue
                drain_until(shard.index)
                yield ready.pop(shard.index)

    # -- file-queue backend ----------------------------------------------------
    def _drive_queue(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[ShardOutcome]:
        queue = self.queue
        queue.requeue_stale(STALE_CLAIM_SECONDS)
        pending = [shard for shard in plan if shard.index not in cached]
        for shard in pending:
            queue.publish(shard)
        for shard in plan:
            if shard.index in cached:
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                continue
            outcome = self._resolve_queued_shard(shard, budget, report)
            if outcome is None:
                # Unresolvable under the spent budget: skip it but keep
                # serving later store hits and already-published results.
                continue
            if outcome.source == "file-queue":
                budget -= 1
            yield outcome

    def _resolve_queued_shard(
        self, shard: Shard, budget: int, report: DispatchReport
    ) -> ShardOutcome | None:
        """Wait for one queued shard: consume its result, or claim and
        evaluate it ourselves; ``None`` when the execution budget is spent
        and nobody else is producing it."""
        name = self.queue.task_name(shard)
        entry = shard.entry()
        start = time.perf_counter()
        while True:
            payload = self.queue.result(name)
            if payload is not None:
                try:
                    found, results = load_shard_payload(payload)
                    if found != entry:
                        raise ValueError(f"result for {name} describes a different shard")
                except (ValueError, KeyError, TypeError):
                    # A corrupt or foreign result can only cost a
                    # re-evaluation, never enter the merge: drop it, release
                    # the claim that produced it, and put the shard back on
                    # offer.
                    try:
                        (self.queue.results_dir / f"{name}.json").unlink()
                    except OSError:  # pragma: no cover - concurrent cleanup
                        pass
                    self.queue.release(name)
                    self.queue.publish(shard)
                    continue
                return ShardOutcome(entry, results, "remote", time.perf_counter() - start)
            if budget > 0:
                descriptor = self.queue.claim(name)
                if descriptor is not None:
                    runner = self._runner(shard.seed)
                    executions, hits = runner.sandbox_executions, runner.store_hits
                    results = runner.run_cells(shard.cells())
                    report.sandbox_executions += runner.sandbox_executions - executions
                    report.verdict_store_hits += runner.store_hits - hits
                    self.queue.complete(name, shard_payload(shard, results))
                    return ShardOutcome(entry, results, "file-queue", time.perf_counter() - start)
                # Another worker holds the claim: poll for its result,
                # reclaiming if the claim goes stale (worker crashed).
                self._sweep_stale_claims()
                time.sleep(self.poll_interval)
                continue
            # Budget spent (crash simulation): only already-running remote
            # work could still complete this shard; don't wait for it.
            if name not in self.queue.pending() and self._claimed(name):
                self._sweep_stale_claims()
                time.sleep(self.poll_interval)
                continue
            return None

    def _sweep_stale_claims(self) -> None:
        """Throttled ``requeue_stale``: at most one directory sweep per
        ``STALE_CLAIM_SECONDS / 10`` while the wait loops poll."""
        now = time.monotonic()
        if now >= self._next_stale_sweep:
            self.queue.requeue_stale(STALE_CLAIM_SECONDS)
            self._next_stale_sweep = now + max(1.0, STALE_CLAIM_SECONDS / 10)

    def _claimed(self, name: str) -> bool:
        return (self.queue.claims_dir / f"{name}.json").exists()
