"""Resumable shard dispatch: partition a spec, farm it out, merge the stream.

A :class:`ShardDriver` turns a declarative
:class:`~repro.api.spec.ExperimentSpec` into a crash-safe distributed run:

1. **Partition** — the spec is cut into ``shards`` contiguous
   :class:`~repro.api.spec.Shard`s per seed (PR 2's manifest machinery).
2. **Resume check** — every shard is first looked up in the
   :class:`~repro.dispatch.store.ResultStore`; hits are *skipped* entirely,
   so a driver killed mid-run re-executes nothing it already finished.
3. **Dispatch** — misses go to one of three pluggable worker backends:
   ``inline`` (evaluate in this process), ``process`` (a subprocess pool),
   or ``file-queue`` (a shared directory any host can drain with
   ``repro-hpc-codex dispatch-worker`` — see :mod:`repro.dispatch.queue`).
4. **Stream** — shard payloads are folded into an
   :class:`~repro.api.spec.IncrementalMerge` the moment they complete, and
   ``progress`` / ``on_shard`` callbacks fire in **submission order** — the
   same ordering contract :class:`~repro.core.runner.EvaluationRunner`
   gives per-cell progress, extended to shards.
5. **Validate** — the final merge goes through
   :class:`~repro.api.spec.ShardManifest`, so a complete dispatch is
   byte-identical to an unsharded ``run --json`` and an incomplete one can
   never masquerade as complete.

Failure is a first-class terminal state, not an accident: every local shard
evaluation runs under crash containment (an exception becomes a structured
failure record, never a dead driver), failed shards are retried up to
``max_attempts`` with backoff, and a shard that keeps failing is
**quarantined** — reported as a :class:`ShardQuarantine` (and, on the file
queue, dead-lettered to ``failed/``) so one poison shard can never livelock
a dispatch.  The ``process`` backend enforces an optional per-shard
``shard_timeout``: a hung subprocess is killed and the shard re-offered.
File-queue claims are heartbeat-renewed leases (see
:class:`~repro.dispatch.queue.HeartbeatLease`), so a long-running shard
with a live worker is never double-executed while a dead worker's shard is
reclaimed after a few missed beats.  The end state of a dispatch is always
*byte-identical merge or explicit quarantine* — never wrong records.

Every executed shard is written back to the store before its callbacks
fire, so the crash window never loses more than the shard in flight.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable, Iterator, Union

from repro.analysis.store import VerdictStore
from repro.api.spec import (
    ExperimentSpec,
    IncrementalMerge,
    Shard,
    ShardEntry,
    load_shard_payload,
    shard_payload,
)
from repro.core.runner import EvaluationRunner, ResultSet
from repro.dispatch import faults
from repro.dispatch.queue import DEFAULT_MAX_ATTEMPTS, FileQueue, HeartbeatLease
from repro.dispatch.runners import (
    RunnerPool,
    evaluate_with_retries,
    failure_record,
    run_shard_contained,
    shard_label,
)
from repro.dispatch.store import ResultStore

__all__ = [
    "DISPATCH_BACKENDS",
    "DispatchReport",
    "ShardDriver",
    "ShardOutcome",
    "ShardQuarantine",
]

#: Worker backends understood by :class:`ShardDriver`.
DISPATCH_BACKENDS: tuple[str, ...] = ("inline", "process", "file-queue")


@dataclass(frozen=True)
class ShardOutcome:
    """One completed shard: where its records came from and what they cost."""

    entry: ShardEntry
    results: ResultSet
    #: ``"store"`` (resume hit), ``"inline"``, ``"process"``, or
    #: ``"file-queue"`` (evaluated locally through the queue) /
    #: ``"remote"`` (another worker drained it).
    source: str
    seconds: float

    @property
    def cached(self) -> bool:
        """True when the shard was served from the result store (skipped)."""
        return self.source == "store"


@dataclass(frozen=True)
class ShardQuarantine:
    """One poisoned shard: it exhausted its attempts and was set aside.

    ``failure`` is the last structured failure record
    (:func:`~repro.dispatch.runners.failure_record`) — what broke on the
    final attempt.  Quarantined shards never enter a merge; they make the
    dispatch explicitly incomplete instead.
    """

    entry: ShardEntry
    attempts: int
    failure: dict

    def describe(self) -> str:
        """One line for operator output: which slice, how it died."""
        return (
            f"shard [{self.entry.start:05d},{self.entry.stop:05d}) seed {self.entry.seed}: "
            f"{self.failure.get('error', 'unknown')} after {self.attempts} attempt(s) — "
            f"{self.failure.get('message', '')}".rstrip(" —")
        )


@dataclass
class DispatchReport:
    """What a :meth:`ShardDriver.run` accomplished.

    ``outcomes`` lists every *completed* shard in submission order;
    ``quarantined`` lists shards that exhausted their attempt budget.
    When ``complete`` is false, ``pending`` shards were neither merged nor
    quarantined (the driver hit ``max_shards`` — the crash-test throttle)
    and ``results`` holds the manifest-unvalidated partial merge.
    """

    spec: ExperimentSpec
    #: Per-seed slice count the spec was partitioned into.
    shards: int
    outcomes: list[ShardOutcome] = field(default_factory=list)
    quarantined: list[ShardQuarantine] = field(default_factory=list)
    results: dict[int, ResultSet] = field(default_factory=dict)
    complete: bool = False
    #: Suggestion modules executed by this driver's local workers.
    sandbox_executions: int = 0
    #: Persistent verdict-store hits observed by this driver's local workers.
    verdict_store_hits: int = 0

    @property
    def shards_total(self) -> int:
        return len(self.spec.seeds) * self.shards

    @property
    def pending(self) -> int:
        """Shards neither completed nor quarantined (still dispatchable)."""
        return self.shards_total - len(self.outcomes) - len(self.quarantined)

    @property
    def executed(self) -> list[ShardOutcome]:
        """Shards this driver evaluated locally (any backend)."""
        return [o for o in self.outcomes if o.source in ("inline", "process", "file-queue")]

    @property
    def remote(self) -> list[ShardOutcome]:
        """Shards another worker drained from the file queue."""
        return [outcome for outcome in self.outcomes if outcome.source == "remote"]

    @property
    def skipped(self) -> list[ShardOutcome]:
        """Shards served straight from the result store (zero re-execution)."""
        return [outcome for outcome in self.outcomes if outcome.cached]

    def result(self) -> ResultSet:
        """The merged records of a complete single-seed dispatch."""
        if not self.complete:
            detail = f"{len(self.outcomes)}/{self.shards_total} shards done"
            if self.quarantined:
                detail += f", {len(self.quarantined)} quarantined"
            raise ValueError(
                f"dispatch is incomplete ({detail}); use .results for the "
                "partial merge, or re-run against the same result store to resume"
            )
        if len(self.results) != 1:
            raise ValueError(f"dispatch covers seeds {sorted(self.results)}; use .results")
        return next(iter(self.results.values()))

    def summary(self) -> str:
        """One status line: totals, split by provenance."""
        if self.complete:
            state = "complete"
        elif self.quarantined and self.pending == 0:
            state = f"DEGRADED {len(self.outcomes)}/{self.shards_total}"
        else:
            state = f"PARTIAL {len(self.outcomes)}/{self.shards_total}"
        line = (
            f"dispatch {state}: {self.shards_total} shard(s), "
            f"executed={len(self.executed)} skipped={len(self.skipped)}"
        )
        if self.remote:
            line += f" remote={len(self.remote)}"
        if self.quarantined:
            line += f" quarantined={len(self.quarantined)}"
        return line


def _process_shard_worker(conn, spec: ExperimentSpec, index: int, of: int, store_path) -> None:
    """Process-backend worker: evaluate one shard, report through the pipe.

    Sends ``("ok", records, sandbox executions, verdict-store hits,
    seconds)`` — the counter deltas let the parent driver aggregate across
    the pool exactly as :class:`EvaluationRunner`'s chunk workers do, and
    the worker-measured seconds are the shard's own evaluation cost (the
    parent cannot separate queueing from computing) — or
    ``("error", failure record)`` when evaluation raises.  A worker that
    dies without sending anything (hard crash, injected ``die``, kill on
    timeout) is detected by the parent through the closed pipe.
    """
    try:
        shard = spec.shard(index, of)
        store = None if store_path is None else VerdictStore(store_path)
        with EvaluationRunner(config=spec.config, seed=shard.seed, verdict_store=store) as runner:
            results, failure, seconds = run_shard_contained(
                runner, shard, label=shard_label(shard)
            )
            if failure is not None:
                conn.send(("error", failure))
            else:
                conn.send(
                    (
                        "ok",
                        results.to_records(),
                        runner.sandbox_executions,
                        runner.store_hits,
                        seconds,
                    )
                )
    except Exception as exc:  # containment of setup errors, not just evaluation
        try:
            conn.send(("error", failure_record(exc, label=f"shard-{index}", phase="worker")))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class ShardDriver:
    """Dispatch a spec's shards to workers, resumably (module docstring).

    Parameters
    ----------
    spec:
        The run to evaluate.
    shards:
        Contiguous slices per seed (``spec.partition(shards)``).
    backend:
        ``"inline"`` (default), ``"process"`` or ``"file-queue"``.
    result_store:
        Where completed shard payloads survive the process:  a
        :class:`~repro.dispatch.store.ResultStore`, a path, ``True`` for
        the default location, or ``None`` (dispatch still works, nothing is
        resumable).
    verdict_store:
        Optional persistent verdict cache handed to every local worker
        (suggestion-level resume, orthogonal to the shard-level store).
    max_workers:
        Subprocess-pool width for the ``process`` backend.
    queue:
        Queue directory (or :class:`~repro.dispatch.queue.FileQueue`) for
        the ``file-queue`` backend.
    progress:
        Per-cell callback, fired in submission order: live during inline
        evaluation, per completed shard otherwise (store hits and remote
        shards deliver :class:`~repro.core.runner.RecordResult`s).
    on_shard:
        Per-shard callback receiving each :class:`ShardOutcome` in
        submission order — the hook an incremental table/figure renderer
        attaches to.
    max_shards:
        Stop after locally executing this many shards (the deterministic
        stand-in for ``kill -9`` in crash/resume tests and CI).  The run
        reports ``complete=False``; re-running resumes from the store.
    max_attempts:
        Failed attempts before a shard is quarantined (default: the
        queue's policy for the file-queue backend, otherwise
        :data:`~repro.dispatch.queue.DEFAULT_MAX_ATTEMPTS`).
    shard_timeout:
        Per-shard wall-clock limit for the ``process`` backend: a worker
        exceeding it is killed and the shard retried (counting as one
        failed attempt).  ``None`` (default) disables the limit.
    heartbeat_interval, lease_beats:
        Lease policy forwarded to the :class:`FileQueue` the driver
        creates from a ``queue`` path (ignored when an existing
        ``FileQueue`` is passed — its policy governs).
    runner_factory:
        Advanced hook (used by :meth:`repro.api.Session.dispatch`) supplying
        pooled runners for inline evaluation, ``(seed, config) -> runner``.
    poll_interval:
        Base delay of the file-queue wait loop; actual sleeps grow from it
        with jittered exponential backoff while nothing changes.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        shards: int = 4,
        backend: str = "inline",
        result_store: ResultStore | str | Path | bool | None = None,
        verdict_store: VerdictStore | str | Path | bool | None = None,
        max_workers: int | None = None,
        queue: FileQueue | str | Path | None = None,
        progress: Callable | None = None,
        on_shard: Callable[[ShardOutcome], None] | None = None,
        max_shards: int | None = None,
        max_attempts: int | None = None,
        shard_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        lease_beats: int | None = None,
        runner_factory: Callable[[int, object], EvaluationRunner] | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        if backend not in DISPATCH_BACKENDS:
            raise ValueError(f"unknown dispatch backend {backend!r}; choose from {DISPATCH_BACKENDS}")
        if shards < 1:
            raise ValueError(f"cannot dispatch {shards} shards")
        if backend == "file-queue" and queue is None:
            raise ValueError("the file-queue backend needs a queue directory (queue=...)")
        if max_shards is not None and max_shards < 0:
            raise ValueError(f"max_shards must be >= 0, got {max_shards}")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be > 0, got {shard_timeout}")
        self.spec = spec
        self.shards = shards
        self.backend = backend
        self.result_store = ResultStore.coerce(result_store)
        self.verdict_store = VerdictStore.coerce(verdict_store)
        self.max_workers = max_workers
        if isinstance(queue, FileQueue) or queue is None:
            self.queue = queue
        else:
            policy = {}
            if heartbeat_interval is not None:
                policy["heartbeat_interval"] = heartbeat_interval
            if lease_beats is not None:
                policy["lease_beats"] = lease_beats
            if max_attempts is not None:
                policy["max_attempts"] = max_attempts
            self.queue = FileQueue(queue, **policy)
        if max_attempts is not None:
            self.max_attempts = max_attempts
        elif self.queue is not None:
            self.max_attempts = self.queue.max_attempts
        else:
            self.max_attempts = DEFAULT_MAX_ATTEMPTS
        self.shard_timeout = shard_timeout
        self.progress = progress
        self.on_shard = on_shard
        self.max_shards = max_shards
        self.poll_interval = poll_interval
        self._runner_factory = runner_factory
        self._own_runners = RunnerPool(verdict_store=self.verdict_store, progress=progress)
        #: Earliest time the next stale-claim sweep is allowed (requeue_stale
        #: walks and stats the whole claims directory — potentially on NFS —
        #: so the wait loops throttle it instead of sweeping every poll).
        self._next_stale_sweep = 0.0

    # -- driving ---------------------------------------------------------------
    def run(self) -> DispatchReport:
        """Dispatch every shard not already in the store; merge the stream."""
        report = DispatchReport(spec=self.spec, shards=self.shards)
        merge = IncrementalMerge()
        plan = self.spec.partition(self.shards)
        cached: dict[int, ResultSet] = {}
        for shard in plan:
            if self.result_store is not None:
                hit = self.result_store.get(shard.entry())
                if hit is not None:
                    cached[shard.index] = hit
        pending = [shard for shard in plan if shard.index not in cached]
        budget = len(pending) if self.max_shards is None else min(self.max_shards, len(pending))
        try:
            runners = {
                "inline": self._drive_inline,
                "process": self._drive_process,
                "file-queue": self._drive_queue,
            }
            for settled in runners[self.backend](plan, cached, budget, report):
                if isinstance(settled, ShardQuarantine):
                    report.quarantined.append(settled)
                    continue
                self._complete_shard(settled, merge, report)
        finally:
            self._close_runners()
        report.complete = len(report.outcomes) == report.shards_total
        report.results = merge.merged() if report.complete else merge.partial()
        return report

    def _complete_shard(
        self, outcome: ShardOutcome, merge: IncrementalMerge, report: DispatchReport
    ) -> None:
        """Persist, merge and announce one completed shard (in order)."""
        if self.result_store is not None and not outcome.cached:
            self.result_store.put(outcome.entry, outcome.results)
        merge.add(outcome.entry, outcome.results)
        if self.progress is not None and outcome.source not in ("inline", "file-queue"):
            # Locally-executed shards ("inline", and "file-queue" claims this
            # driver evaluated itself) already streamed per-cell progress
            # live through their runner; every other source delivers the
            # shard's cells here, still in submission order.
            for result in outcome.results:
                self.progress(result)
        report.outcomes.append(outcome)
        if self.on_shard is not None:
            self.on_shard(outcome)

    # -- inline backend --------------------------------------------------------
    def _drive_inline(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[Union[ShardOutcome, ShardQuarantine]]:
        for shard in plan:
            if shard.index in cached:
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                continue
            if budget <= 0:
                # Budget spent (crash simulation): skip the shard but keep
                # serving later store hits, so the report and partial merge
                # reflect everything that is actually done.
                continue
            budget -= 1
            entry = shard.entry()
            runner = self._runner(shard.seed)
            executions, hits = runner.sandbox_executions, runner.store_hits
            results, failures, seconds = evaluate_with_retries(
                runner,
                shard,
                label=shard_label(shard),
                max_attempts=self.max_attempts,
                backoff_base=self.poll_interval,
            )
            report.sandbox_executions += runner.sandbox_executions - executions
            report.verdict_store_hits += runner.store_hits - hits
            if results is not None:
                yield ShardOutcome(entry, results, "inline", seconds)
            else:
                yield ShardQuarantine(entry, len(failures), failures[-1])

    def _runner(self, seed: int) -> EvaluationRunner:
        if self._runner_factory is not None:
            return self._runner_factory(seed, self.spec.config)
        return self._own_runners.runner(seed, self.spec.config)

    def _close_runners(self) -> None:
        self._own_runners.close()

    # -- process backend -------------------------------------------------------
    def _drive_process(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[Union[ShardOutcome, ShardQuarantine]]:
        to_execute = [shard for shard in plan if shard.index not in cached][:budget]
        if not to_execute:
            # Fully warm (or zero budget): serve store hits without paying
            # for workers nothing would run on.
            for shard in plan:
                if shard.index not in cached:
                    return
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
            return
        store_path = None if self.verdict_store is None else str(self.verdict_store.path)
        # Same hardware-based sizing policy as EvaluationRunner's pools,
        # additionally capped by the actual shard count.
        workers = self.max_workers or min(8, os.cpu_count() or 1, len(to_execute))
        ctx = multiprocessing.get_context()
        waiting: deque[tuple[Shard, int]] = deque((shard, 1) for shard in to_execute)
        running: dict = {}
        ready: dict[int, ShardOutcome] = {}
        quarantine: dict[int, ShardQuarantine] = {}
        failures: dict[int, list[dict]] = {}

        def spawn() -> None:
            while waiting and len(running) < workers:
                shard, attempt = waiting.popleft()
                parent_end, child_end = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_process_shard_worker,
                    args=(child_end, shard.spec, shard.index, shard.of, store_path),
                )
                proc.start()
                child_end.close()
                deadline = (
                    None
                    if self.shard_timeout is None
                    else time.monotonic() + self.shard_timeout
                )
                running[parent_end] = (shard, proc, attempt, deadline)

        def settle_failure(shard: Shard, attempt: int, failure: dict) -> None:
            history = failures.setdefault(shard.index, [])
            history.append(failure)
            if attempt >= self.max_attempts:
                quarantine[shard.index] = ShardQuarantine(
                    shard.entry(), len(history), failure
                )
            else:
                waiting.append((shard, attempt + 1))

        def reap(conn, shard: Shard, proc, attempt: int) -> None:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None
            conn.close()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged post-report worker
                proc.terminate()
                proc.join(timeout=1.0)
            if message is None:
                settle_failure(
                    shard,
                    attempt,
                    failure_record(
                        "WorkerDied",
                        label=shard_label(shard),
                        phase="process",
                        attempt=attempt,
                        message=f"worker exited with code {proc.exitcode} before reporting",
                    ),
                )
            elif message[0] == "error":
                settle_failure(shard, attempt, message[1])
            else:
                _, records, executions, hits, seconds = message
                report.sandbox_executions += executions
                report.verdict_store_hits += hits
                results = ResultSet.from_payload(records, seed=shard.seed)
                # Persist the moment it lands — while the driver waits on an
                # early slow shard, later finished shards are already
                # crash-safe on disk.  Only the submission-order yield below
                # (and therefore callbacks and the merge) waits.
                if self.result_store is not None:
                    self.result_store.put(shard.entry(), results)
                ready[shard.index] = ShardOutcome(shard.entry(), results, "process", seconds)

        def kill_expired() -> None:
            now = time.monotonic()
            for conn, (shard, proc, attempt, deadline) in list(running.items()):
                if deadline is None or now < deadline:
                    continue
                del running[conn]
                proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - terminate ignored
                    proc.kill()
                    proc.join(timeout=1.0)
                conn.close()
                settle_failure(
                    shard,
                    attempt,
                    failure_record(
                        "ShardTimeout",
                        label=shard_label(shard),
                        phase="process",
                        attempt=attempt,
                        message=f"hung worker killed after {self.shard_timeout:.3g}s",
                    ),
                )

        def pump_until(index: int) -> None:
            while index not in ready and index not in quarantine:
                spawn()
                deadlines = [d for (_, _, _, d) in running.values() if d is not None]
                wait_for = (
                    None
                    if not deadlines
                    else max(0.0, min(deadlines) - time.monotonic())
                )
                for conn in mp_connection.wait(list(running), timeout=wait_for):
                    shard, proc, attempt, _ = running.pop(conn)
                    reap(conn, shard, proc, attempt)
                kill_expired()

        indexes = {shard.index for shard in to_execute}
        for shard in plan:
            if shard.index in cached:
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                continue
            if shard.index not in indexes:
                # Budget-excluded shard: skip it but keep serving any
                # later store hits, so the report and partial merge
                # reflect everything that is actually done.
                continue
            pump_until(shard.index)
            if shard.index in ready:
                yield ready.pop(shard.index)
            else:
                yield quarantine.pop(shard.index)

    # -- file-queue backend ----------------------------------------------------
    def _drive_queue(
        self,
        plan: list[Shard],
        cached: dict[int, ResultSet],
        budget: int,
        report: DispatchReport,
    ) -> Iterator[Union[ShardOutcome, ShardQuarantine]]:
        queue = self.queue
        queue.requeue_stale()
        for shard in plan:
            if shard.index not in cached:
                queue.publish(shard)
        for shard in plan:
            if shard.index in cached:
                yield ShardOutcome(shard.entry(), cached[shard.index], "store", 0.0)
                continue
            settled = self._resolve_queued_shard(shard, budget, report)
            if settled is None:
                # Unresolvable under the spent budget: skip it but keep
                # serving later store hits and already-published results.
                continue
            if isinstance(settled, ShardOutcome) and settled.source == "file-queue":
                budget -= 1
            yield settled

    def _resolve_queued_shard(
        self, shard: Shard, budget: int, report: DispatchReport
    ) -> Union[ShardOutcome, ShardQuarantine, None]:
        """Wait for one queued shard: consume its result, claim and evaluate
        it ourselves, or accept its quarantine; ``None`` when the execution
        budget is spent and nobody else is producing it."""
        name = self.queue.task_name(shard)
        entry = shard.entry()
        start = time.perf_counter()
        idle = 0
        backoff_cap = max(self.poll_interval, min(1.0, self.queue.lease_seconds / 4))
        while True:
            dead = self.queue.quarantined(name)
            if dead is not None:
                failures = dead.get("failures") or [
                    failure_record("Quarantined", label=name, phase="queue")
                ]
                return ShardQuarantine(
                    entry, int(dead.get("attempts", len(failures))), failures[-1]
                )
            payload = self.queue.result(name)
            if payload is not None:
                try:
                    found, results = load_shard_payload(payload)
                    if found != entry:
                        raise ValueError(f"result for {name} describes a different shard")
                except (ValueError, KeyError, TypeError):
                    # A corrupt or foreign result can only cost a
                    # re-evaluation, never enter the merge: drop it, release
                    # the claim that produced it, and put the shard back on
                    # offer.
                    try:
                        (self.queue.results_dir / f"{name}.json").unlink()
                    except OSError:  # pragma: no cover - concurrent cleanup
                        pass
                    self.queue.release(name)
                    self.queue.publish(shard)
                    idle = 0
                    continue
                return ShardOutcome(entry, results, "remote", time.perf_counter() - start)
            if budget > 0:
                if (
                    name not in self.queue.pending()
                    and not self._claimed(name)
                ):
                    # The task exists nowhere: no result, no dead letter, no
                    # pending file, no lease.  This happens when a corrupt
                    # result was dropped after its (retired) claim was
                    # garbage-collected — re-offer the shard instead of
                    # waiting for a producer that does not exist.
                    self.queue.publish(shard)
                claim = self.queue.claim(name)
                if claim is not None:
                    with HeartbeatLease(self.queue, claim):
                        runner = self._runner(shard.seed)
                        executions, hits = runner.sandbox_executions, runner.store_hits
                        results, failure, _ = run_shard_contained(
                            runner,
                            shard,
                            label=name,
                            attempt=self.queue.attempts(name) + 1,
                        )
                        report.sandbox_executions += runner.sandbox_executions - executions
                        report.verdict_store_hits += runner.store_hits - hits
                    if failure is not None:
                        # Released for retry or quarantined — either way the
                        # loop re-resolves: next iteration sees the re-offered
                        # task or the dead letter.
                        self.queue.fail(claim, failure)
                        idle = 0
                        continue
                    self.queue.complete(name, shard_payload(shard, results))
                    self.queue.retire(claim)
                    return ShardOutcome(
                        entry, results, "file-queue", time.perf_counter() - start
                    )
                # Another worker holds the lease: poll for its result with
                # jittered backoff, reclaiming if the lease goes stale
                # (missed heartbeats — the worker crashed or wedged).
                self._sweep_stale_claims()
                time.sleep(
                    faults.backoff_delay(idle, base=self.poll_interval, cap=backoff_cap)
                )
                idle += 1
                continue
            # Budget spent (crash simulation): only already-running remote
            # work could still complete this shard; don't wait for it.
            if name not in self.queue.pending() and self._claimed(name):
                self._sweep_stale_claims()
                time.sleep(
                    faults.backoff_delay(idle, base=self.poll_interval, cap=backoff_cap)
                )
                idle += 1
                continue
            return None

    def _sweep_stale_claims(self) -> None:
        """Throttled ``requeue_stale``: at most one directory sweep per
        tenth of the lease while the wait loops poll."""
        now = time.monotonic()
        if now >= self._next_stale_sweep:
            self.queue.requeue_stale()
            throttle = min(30.0, max(0.05, self.queue.lease_seconds / 10))
            self._next_stale_sweep = now + throttle

    def _claimed(self, name: str) -> bool:
        return bool(self.queue._claim_files(name))
