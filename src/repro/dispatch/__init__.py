"""repro.dispatch — resumable, fault-tolerant distributed dispatch of shards.

The driver layer above :mod:`repro.api`'s sharding machinery:

* :class:`~repro.dispatch.driver.ShardDriver` partitions an
  :class:`~repro.api.ExperimentSpec`, skips every shard already present in
  the :class:`~repro.dispatch.store.ResultStore`, dispatches the rest to a
  pluggable worker backend (``inline`` / ``process`` / ``file-queue``),
  streams partial merges as shards complete, and manifest-validates the
  final merge — byte-identical to an unsharded run.
* :class:`~repro.dispatch.store.ResultStore` persists completed shard
  payloads (content-keyed on config fingerprint, grid digest, seed, cell
  slice and analysis version), making any driver re-run resume instead of
  recompute.
* :class:`~repro.dispatch.queue.FileQueue` / :func:`~repro.dispatch.queue.drain_queue`
  let any host that mounts a shared directory contribute worker cycles
  (``repro-hpc-codex dispatch-worker``), under heartbeat-renewed claim
  leases with bounded retries and a ``failed/`` quarantine for poison
  shards.
* :mod:`~repro.dispatch.faults` injects deterministic failures (crash,
  hard death, hang, corrupt write, clock skew) at named points, so the
  fault tolerance above is continuously exercised by chaos tests and CI.

The supported entry points are :meth:`repro.api.Session.dispatch` and the
``repro-hpc-codex dispatch`` CLI subcommand; this package is the machinery
behind them.
"""

from __future__ import annotations

from repro.dispatch import faults
from repro.dispatch.driver import (
    DISPATCH_BACKENDS,
    DispatchReport,
    ShardDriver,
    ShardOutcome,
    ShardQuarantine,
)
from repro.dispatch.queue import Claim, FileQueue, HeartbeatLease, drain_queue
from repro.dispatch.runners import failure_record, run_shard_contained, shard_label
from repro.dispatch.store import ResultStore, default_result_store_path

__all__ = [
    "DISPATCH_BACKENDS",
    "Claim",
    "DispatchReport",
    "FileQueue",
    "HeartbeatLease",
    "ResultStore",
    "ShardDriver",
    "ShardOutcome",
    "ShardQuarantine",
    "default_result_store_path",
    "drain_queue",
    "failure_record",
    "faults",
    "run_shard_contained",
    "shard_label",
]
