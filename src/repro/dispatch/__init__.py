"""repro.dispatch — resumable distributed dispatch of experiment shards.

The driver layer above :mod:`repro.api`'s sharding machinery:

* :class:`~repro.dispatch.driver.ShardDriver` partitions an
  :class:`~repro.api.ExperimentSpec`, skips every shard already present in
  the :class:`~repro.dispatch.store.ResultStore`, dispatches the rest to a
  pluggable worker backend (``inline`` / ``process`` / ``file-queue``),
  streams partial merges as shards complete, and manifest-validates the
  final merge — byte-identical to an unsharded run.
* :class:`~repro.dispatch.store.ResultStore` persists completed shard
  payloads (content-keyed on config fingerprint, grid digest, seed, cell
  slice and analysis version), making any driver re-run resume instead of
  recompute.
* :class:`~repro.dispatch.queue.FileQueue` / :func:`~repro.dispatch.queue.drain_queue`
  let any host that mounts a shared directory contribute worker cycles
  (``repro-hpc-codex dispatch-worker``).

The supported entry points are :meth:`repro.api.Session.dispatch` and the
``repro-hpc-codex dispatch`` CLI subcommand; this package is the machinery
behind them.
"""

from __future__ import annotations

from repro.dispatch.driver import (
    DISPATCH_BACKENDS,
    DispatchReport,
    ShardDriver,
    ShardOutcome,
)
from repro.dispatch.queue import FileQueue, drain_queue
from repro.dispatch.store import ResultStore, default_result_store_path

__all__ = [
    "DISPATCH_BACKENDS",
    "DispatchReport",
    "FileQueue",
    "ResultStore",
    "ShardDriver",
    "ShardOutcome",
    "default_result_store_path",
    "drain_queue",
]
