"""Directory-based shard queue: dispatch work any host can drain.

A :class:`FileQueue` is the zero-infrastructure worker backend of
:mod:`repro.dispatch`: the driver publishes one **task file** per pending
shard into a shared directory (NFS mount, synced folder, anything that
supports atomic rename), and any number of workers — the driver itself, a
``repro-hpc-codex dispatch-worker`` process on another machine — claim
tasks by atomically renaming them and publish the evaluated shard payload
back as a **result file**.  The layout::

    queue/
      tasks/<name>.json           pending shard descriptors
      claims/<name>.<token>.json  leased tasks (rename target; see below)
      results/<name>.json         completed repro.shard/v1 payloads
      attempts/<name>.json        failure history of a task (sidecar)
      failed/<name>.json          quarantined tasks (dead letters)

``os.rename`` from ``tasks/`` to ``claims/`` is the claim: exactly one of
any number of racing workers wins (the losers see ``FileNotFoundError`` and
move on).  Each claim file name carries a unique **owner token**, so the
claim is a *lease*: the owning worker renews it from a background
:class:`HeartbeatLease` thread (``os.utime`` every ``heartbeat_interval``
seconds), staleness means "missed ``lease_beats`` heartbeats" rather than
any fixed wall time, and a revoked owner finds out the moment its next
heartbeat fails — a long-running shard with a live heartbeat is never
re-offered, while a genuinely dead worker's shard is reclaimed after a few
missed beats.

Failure is a tracked state, not an accident: a worker whose evaluation
raises records a structured failure in the task's ``attempts/`` sidecar and
releases the claim for another try; a worker that dies outright is caught
by lease expiry, which records the same kind of failure.  After
``max_attempts`` recorded failures the task is **quarantined** — moved to
``failed/`` together with its descriptor and failure history — so one
poison shard can never livelock the queue.  Completed tasks' claims and
sidecars are garbage-collected (on completion and by the stale sweep), so
``claims/`` cannot grow without bound or resurrect a finished task.

Task files carry the spec's coordinates *and* its config fingerprint + grid
digest; a worker reconstructs the spec locally and **refuses the task if
its local config fingerprints differently** — the same trust-the-manifest
principle that guards merges guards distribution.  Results are the exact
``repro.shard/v1`` payloads the ``merge`` subcommand consumes, validated on
consumption.  All queue documents are published with the shared
fsync-before-replace writer (:func:`repro.atomicio.write_atomic_json`), so
a power loss can leave old state behind but never a torn file.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.api.spec import ExperimentSpec, Shard, shard_payload
from repro.atomicio import write_atomic_json
from repro.dispatch import faults
from repro.dispatch.runners import RunnerPool, failure_record, run_shard_contained

__all__ = [
    "Claim",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_LEASE_BEATS",
    "DEFAULT_MAX_ATTEMPTS",
    "FileQueue",
    "HeartbeatLease",
    "QUARANTINE_FORMAT",
    "TASK_FORMAT",
    "drain_queue",
]

#: Format tag of one task-descriptor file.
TASK_FORMAT = "repro.dispatch-task/v1"

#: Format tag of one quarantined-task (dead-letter) file.
QUARANTINE_FORMAT = "repro.dispatch-quarantine/v1"

#: How often a worker's background thread renews its claim lease.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Missed heartbeats before a claim counts as abandoned.  Three beats
#: tolerates scheduling hiccups and coarse NFS mtime granularity while
#: still reclaiming a dead worker's shard in ~15 s at the default interval
#: (the old fixed sweep waited 300 s — and, worse, reclaimed *live* shards
#: that simply ran longer than that).
DEFAULT_LEASE_BEATS = 3

#: Recorded failures before a task is quarantined to ``failed/``.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class Claim:
    """A leased task: its name, this owner's token, and the descriptor.

    The lease is materialised as ``claims/<name>.<token>.json``; only the
    stale sweep may take it away, and when it does, the owner's next
    heartbeat (or release/retire) fails visibly instead of silently
    overlapping with the new owner.
    """

    name: str
    token: str
    path: Path
    descriptor: dict

    def alive(self) -> bool:
        """Whether this owner still holds the lease."""
        return self.path.exists()


class HeartbeatLease:
    """Background lease renewal for one :class:`Claim` (context manager).

    While the body evaluates the shard, a daemon thread touches the claim
    file every ``interval`` seconds.  If a renewal finds the file gone —
    the stale sweep revoked the lease, rightly (this worker stalled past
    ``lease_beats`` missed heartbeats) or wrongly (severe clock skew on the
    sweeping side) — ``lost`` flips to ``True`` and renewal stops; the
    owner keeps its work (results are deterministic, so publishing them
    anyway is idempotent and harmless) but knows not to trust its
    exclusivity.  The ``worker.heartbeat`` fault point fires before every
    renewal, so a chaos plan can wedge the heartbeat (``hang``) to
    simulate a worker that computes but cannot renew.
    """

    def __init__(self, queue: "FileQueue", claim: Claim, interval: float | None = None) -> None:
        self.claim = claim
        self.interval = queue.heartbeat_interval if interval is None else interval
        self.lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "HeartbeatLease":
        self._thread = threading.Thread(
            target=self._renew, name=f"heartbeat-{self.claim.name}", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            # A wedged heartbeat (injected hang) must not wedge the worker
            # too: daemon threads may be abandoned.
            self._thread.join(timeout=self.interval)

    def _renew(self) -> None:
        while not self._stop.wait(self.interval):
            faults.fire("worker.heartbeat", self.claim.name)
            try:
                os.utime(self.claim.path)
            except OSError:
                self.lost = True
                return


class FileQueue:
    """A shard queue in a shared directory (see module docstring).

    Parameters
    ----------
    root:
        The shared queue directory (created if missing).
    heartbeat_interval, lease_beats:
        Lease policy: workers renew every ``heartbeat_interval`` seconds
        and a claim is stale after ``heartbeat_interval * lease_beats``
        seconds without renewal.  Every queue instance sharing a directory
        should share these values.
    max_attempts:
        Recorded failures before a task is quarantined to ``failed/``.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        lease_beats: int = DEFAULT_LEASE_BEATS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        if lease_beats < 1:
            raise ValueError(f"lease_beats must be >= 1, got {lease_beats}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.attempts_dir = self.root / "attempts"
        self.failed_dir = self.root / "failed"
        self.heartbeat_interval = float(heartbeat_interval)
        self.lease_beats = int(lease_beats)
        self.max_attempts = int(max_attempts)
        for directory in (
            self.tasks_dir,
            self.claims_dir,
            self.results_dir,
            self.attempts_dir,
            self.failed_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileQueue({str(self.root)!r})"

    @property
    def lease_seconds(self) -> float:
        """Claim age beyond which the lease counts as abandoned."""
        return self.heartbeat_interval * self.lease_beats

    # -- naming ---------------------------------------------------------------
    @staticmethod
    def task_name(shard: Shard) -> str:
        """Stable file name of a shard's task: the shard identity.

        Two runs of the same spec share names, so re-publishing after a
        crash is naturally idempotent — and two *different* specs can never
        collide because the fingerprint and grid digest are part of the name.
        """
        entry = shard.entry()
        return (
            f"s{entry.seed}-{entry.start:05d}-{entry.stop:05d}"
            f"-{entry.fingerprint[:12]}-{entry.grid[:12]}"
        )

    def _claim_files(self, name: str) -> list[Path]:
        return sorted(self.claims_dir.glob(f"{name}.*.json"))

    @staticmethod
    def _claim_task_name(claim_path: Path) -> str:
        # claims/<name>.<token>.json → <name>  (task names contain no dots).
        return claim_path.name.split(".", 1)[0]

    # -- publishing -----------------------------------------------------------
    def publish(self, shard: Shard) -> bool:
        """Write the task descriptor for one shard (atomic; idempotent).

        Returns ``True`` when a new task file was published, ``False`` when
        the shard is already pending, claimed, completed or quarantined.
        """
        name = self.task_name(shard)
        if any(
            (directory / f"{name}.json").exists()
            for directory in (self.tasks_dir, self.results_dir, self.failed_dir)
        ) or self._claim_files(name):
            return False
        entry = shard.entry()
        payload = {
            "format": TASK_FORMAT,
            "index": shard.index,
            "of": shard.of,
            "spec": shard.spec.to_payload(),
            "grid": entry.grid,
        }
        write_atomic_json(self.tasks_dir / f"{name}.json", payload, indent=2)
        return True

    # -- claiming -------------------------------------------------------------
    def claim(self, name: str) -> Claim | None:
        """Try to lease one task; returns a :class:`Claim`, or ``None`` if
        another worker won the rename race (or the task vanished)."""
        token = uuid.uuid4().hex[:8]
        task = self.tasks_dir / f"{name}.json"
        claimed = self.claims_dir / f"{name}.{token}.json"
        try:
            os.rename(task, claimed)
        except OSError:
            return None
        try:
            # Stamp the lease: rename preserves the publish-time mtime, but
            # staleness must measure time since *claiming*.
            os.utime(claimed)
            descriptor = json.loads(claimed.read_text("utf-8"))
        except (OSError, ValueError):
            # Lost a race with a concurrent stale sweep (the pre-utime
            # mtime looked ancient), or the descriptor bytes are unreadable:
            # either way this worker did not get a usable lease.
            return None
        return Claim(name=name, token=token, path=claimed, descriptor=descriptor)

    def claim_next(self, *, skip: set[str] | None = None) -> Claim | None:
        """Claim the first available task in name order, racing politely.

        ``skip`` names tasks this worker already refused (foreign config);
        without it a released poison task would be re-claimed forever.
        """
        for task in sorted(self.tasks_dir.glob("*.json")):
            if skip and task.stem in skip:
                continue
            claim = self.claim(task.stem)
            if claim is not None:
                return claim
        return None

    def release(self, claim: Claim | str) -> None:
        """Return a claimed task to the pending pool (worker gave up).

        Accepts the worker's own :class:`Claim` or a task name (recovery
        paths that hold no lease, e.g. dropping a corrupt result).  A task
        whose result already exists is *not* resurrected — its claim is
        garbage-collected instead.
        """
        paths = [claim.path] if isinstance(claim, Claim) else self._claim_files(claim)
        name = claim.name if isinstance(claim, Claim) else claim
        for path in paths:
            try:
                if (self.results_dir / f"{name}.json").exists():
                    path.unlink()
                else:
                    os.rename(path, self.tasks_dir / f"{name}.json")
            except OSError:  # pragma: no cover - concurrent recovery
                pass

    def retire(self, claim: Claim) -> None:
        """Drop a completed task's lease and failure history (GC)."""
        for path in (claim.path, self.attempts_dir / f"{claim.name}.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def requeue_stale(self, stale_after: float | None = None) -> int:
        """Recover abandoned claims; garbage-collect completed ones.

        A claim older than ``stale_after`` seconds (default: the queue's
        lease — ``heartbeat_interval * lease_beats``) has missed all its
        heartbeats: its worker is presumed dead, a failure is recorded
        against the task, and the task is either re-offered or — at
        ``max_attempts`` — quarantined.  Claims whose result exists are
        deleted outright, so ``claims/`` cannot grow forever and a
        completed task can never be resurrected.  Returns the number of
        claims re-offered.

        Staleness arithmetic runs through the fault clock
        (:func:`repro.dispatch.faults.clock_skew`), so chaos tests can
        explore the claim/requeue race without real waiting.
        """
        stale_after = self.lease_seconds if stale_after is None else stale_after
        requeued = 0
        now = time.time() + faults.clock_skew()
        for claim_path in sorted(self.claims_dir.glob("*.json")):
            name = self._claim_task_name(claim_path)
            if (self.results_dir / f"{name}.json").exists():
                # Completed: the claim (and its failure history) is garbage.
                for stale in (claim_path, self.attempts_dir / f"{name}.json"):
                    try:
                        stale.unlink()
                    except OSError:  # pragma: no cover - concurrent recovery
                        pass
                continue
            try:
                if now - claim_path.stat().st_mtime < stale_after:
                    continue
            except OSError:  # pragma: no cover - concurrent recovery
                continue
            # Lease expired: evidence of a dead or wedged worker.
            failure = failure_record(
                "LeaseExpired",
                label=name,
                phase="lease",
                message=(
                    f"claim missed its heartbeat lease ({stale_after:.3g}s); "
                    "the worker is presumed dead"
                ),
            )
            if not self.fail(claim_path, failure):
                requeued += 1
        return requeued

    # -- failure tracking ------------------------------------------------------
    def attempts(self, name: str) -> int:
        """Recorded failed attempts of one task (0 when history is absent)."""
        try:
            return int(
                json.loads((self.attempts_dir / f"{name}.json").read_text("utf-8"))["attempts"]
            )
        except (OSError, ValueError, KeyError, TypeError):
            return 0

    def fail(self, claim: Claim | Path, failure: dict) -> bool:
        """Record one failed attempt; release the task or quarantine it.

        ``claim`` is the worker's :class:`Claim` (crash containment caught
        an evaluation error) or a raw claim path (the stale sweep found an
        abandoned lease).  Below ``max_attempts`` the failure is appended
        to the ``attempts/`` sidecar and the task re-offered; at the limit
        the task moves to ``failed/`` as a dead letter carrying its
        descriptor and full failure history.  Returns ``True`` when the
        task was quarantined.  Fail-soft: bookkeeping I/O errors never
        propagate into the worker loop.
        """
        if isinstance(claim, Claim):
            name, claim_path, descriptor = claim.name, claim.path, claim.descriptor
        else:
            claim_path = claim
            name = self._claim_task_name(claim_path)
            try:
                descriptor = json.loads(claim_path.read_text("utf-8"))
            except (OSError, ValueError):
                descriptor = None
        sidecar = self.attempts_dir / f"{name}.json"
        try:
            history = json.loads(sidecar.read_text("utf-8"))
            history["attempts"] = int(history["attempts"])
            if not isinstance(history.get("failures"), list):
                raise ValueError("malformed failure history")
        except (OSError, ValueError, KeyError, TypeError):
            history = {"attempts": 0, "failures": []}
        history["attempts"] += 1
        history["failures"] = (history["failures"] + [failure])[-10:]
        if history["attempts"] >= self.max_attempts:
            payload = {
                "format": QUARANTINE_FORMAT,
                "name": name,
                "attempts": history["attempts"],
                "failures": history["failures"],
                "task": descriptor,
            }
            try:
                write_atomic_json(self.failed_dir / f"{name}.json", payload, indent=2)
            except OSError:  # pragma: no cover - full disk / permissions
                pass
            for stale in (claim_path, sidecar):
                try:
                    stale.unlink()
                except OSError:
                    pass
            return True
        try:
            write_atomic_json(sidecar, history, indent=2)
        except OSError:  # pragma: no cover - full disk / permissions
            pass
        self.release(Claim(name=name, token="", path=claim_path, descriptor=descriptor or {}))
        return False

    def quarantined(self, name: str) -> dict | None:
        """The dead-letter payload of a quarantined task, or ``None``."""
        try:
            return json.loads((self.failed_dir / f"{name}.json").read_text("utf-8"))
        except (OSError, ValueError):
            return None

    def failed(self) -> list[str]:
        """Names of quarantined tasks, in name order."""
        return sorted(entry.stem for entry in self.failed_dir.glob("*.json"))

    # -- results --------------------------------------------------------------
    def complete(self, name: str, payload: dict) -> None:
        """Publish the evaluated ``repro.shard/v1`` payload for a task.

        The ``worker.complete`` fault point fires first: a ``corrupt``
        fault makes this worker publish deliberately torn bytes instead,
        exercising the validate-on-read path (the driver drops the file,
        releases the claim and re-offers the shard).
        """
        path = self.results_dir / f"{name}.json"
        fault = faults.fire("worker.complete", name)
        if fault is not None and fault.action == "corrupt":
            path.write_text('{"format": "repro.shard/v1", "records": [{"truncat')
            return
        write_atomic_json(path, payload, indent=2)

    def result(self, name: str) -> dict | None:
        """The completed payload for a task, or ``None`` while outstanding.

        An unparsable result file (truncated writer) is dropped *and the
        task's claim released*, so the shard goes back on offer instead of
        wedging behind a result nobody can read — degradation to
        re-evaluation, never wrong records.
        """
        path = self.results_dir / f"{name}.json"
        try:
            return json.loads(path.read_text("utf-8"))
        except OSError:
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            self.release(name)
            return None

    def pending(self) -> list[str]:
        """Names of currently unclaimed tasks, in name order."""
        return sorted(task.stem for task in self.tasks_dir.glob("*.json"))

    # -- task reconstruction ---------------------------------------------------
    @staticmethod
    def load_task(descriptor: dict) -> Shard:
        """Rebuild the shard a task describes, refusing untrusted tasks.

        The spec is reconstructed from its coordinates with this worker's
        **local default config**; if the reconstruction's fingerprint or
        grid digest disagrees with what the task declares, the worker's
        evaluation would silently diverge from the driver's expectation —
        so it raises instead (specs with custom configs must use the
        ``inline`` or ``process`` backends, which share the config object).
        """
        if descriptor.get("format") != TASK_FORMAT:
            raise ValueError(f"not a {TASK_FORMAT} descriptor: {descriptor.get('format')!r}")
        spec_payload = descriptor["spec"]
        spec = ExperimentSpec(
            seeds=tuple(spec_payload["seeds"]),
            languages=tuple(spec_payload["languages"]),
            models=None if spec_payload["models"] is None else tuple(spec_payload["models"]),
            kernels=None if spec_payload["kernels"] is None else tuple(spec_payload["kernels"]),
        )
        if spec.fingerprint() != spec_payload["fingerprint"]:
            raise ValueError(
                f"task expects config fingerprint {spec_payload['fingerprint']} but this "
                f"worker's default config fingerprints to {spec.fingerprint()}; "
                "custom-config specs cannot be dispatched through a file queue"
            )
        if spec.grid_digest() != descriptor["grid"]:
            raise ValueError(
                f"task expects grid {descriptor['grid']} but the reconstructed spec "
                f"enumerates grid {spec.grid_digest()}"
            )
        return spec.shard(int(descriptor["index"]), int(descriptor["of"]))


def drain_queue(
    queue: FileQueue | str | Path,
    *,
    max_tasks: int | None = None,
    verdict_store=None,
    progress=None,
    poll: float | None = None,
) -> int:
    """Claim and evaluate pending tasks until the queue stays empty.

    This is the worker loop behind ``repro-hpc-codex dispatch-worker``: any
    host that can see the queue directory runs it to contribute cycles to a
    dispatch.  Each claimed shard is evaluated serially (parallelism comes
    from running more workers) under a :class:`HeartbeatLease`, with crash
    containment: an evaluation that raises records a structured failure
    against the task and releases it for another worker (or, at
    ``max_attempts``, quarantines it to ``failed/``) instead of killing the
    loop.  A task this worker cannot take (foreign config fingerprint,
    mismatching grid, corrupt descriptor) is released back — with a
    :class:`UserWarning` — and never re-claimed by this call, so one
    foreign task cannot wedge the worker or starve the valid tasks behind
    it.

    With ``poll`` set, an empty queue does not end the loop immediately:
    the worker keeps polling with jittered exponential backoff until the
    queue has stayed empty for ``poll`` seconds, so workers started before
    (or mid-) publish pick up tasks instead of exiting on a momentary gap.
    Returns the number of shards this call evaluated.
    """
    if not isinstance(queue, FileQueue):
        queue = FileQueue(queue)
    executed = 0
    refused: set[str] = set()
    idle = 0
    empty_deadline: float | None = None
    with RunnerPool(verdict_store=verdict_store, progress=progress) as pool:
        while max_tasks is None or executed < max_tasks:
            claim = queue.claim_next(skip=refused)
            if claim is None:
                if poll is None:
                    break
                now = time.monotonic()
                if empty_deadline is None:
                    empty_deadline = now + poll
                if now >= empty_deadline:
                    break
                time.sleep(min(faults.backoff_delay(idle), empty_deadline - now))
                idle += 1
                continue
            idle = 0
            empty_deadline = None
            try:
                shard = queue.load_task(claim.descriptor)
            except (ValueError, KeyError, TypeError) as exc:
                queue.release(claim)
                refused.add(claim.name)
                warnings.warn(f"refusing queued task {claim.name}: {exc}", stacklevel=2)
                continue
            with HeartbeatLease(queue, claim):
                runner = pool.runner(shard.seed, shard.spec.config)
                results, failure, _ = run_shard_contained(
                    runner, shard, label=claim.name, attempt=queue.attempts(claim.name) + 1
                )
            if failure is not None:
                quarantined = queue.fail(claim, failure)
                warnings.warn(
                    f"task {claim.name} failed ({failure['error']}: {failure['message']}); "
                    + ("quarantined" if quarantined else "released for retry"),
                    stacklevel=2,
                )
                continue
            queue.complete(claim.name, shard_payload(shard, results))
            queue.retire(claim)
            executed += 1
    return executed
