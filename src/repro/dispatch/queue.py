"""Directory-based shard queue: dispatch work any host can drain.

A :class:`FileQueue` is the zero-infrastructure worker backend of
:mod:`repro.dispatch`: the driver publishes one **task file** per pending
shard into a shared directory (NFS mount, synced folder, anything that
supports atomic rename), and any number of workers — the driver itself, a
``repro-hpc-codex dispatch-worker`` process on another machine — claim
tasks by atomically renaming them and publish the evaluated shard payload
back as a **result file**.  The layout::

    queue/
      tasks/<name>.json      pending shard descriptors
      claims/<name>.json     tasks a worker has claimed (rename target)
      results/<name>.json    completed repro.shard/v1 payloads

``os.rename`` from ``tasks/`` to ``claims/`` is the claim: exactly one of
any number of racing workers wins (the losers see ``FileNotFoundError`` and
move on), so no shard is ever evaluated twice concurrently.  Task files
carry the spec's coordinates *and* its config fingerprint + grid digest; a
worker reconstructs the spec locally and **refuses the task if its local
config fingerprints differently** — the same trust-the-manifest principle
that guards merges guards distribution.  Results are the exact
``repro.shard/v1`` payloads the ``merge`` subcommand consumes, validated on
consumption.

Claims left behind by a crashed worker are recovered with
:meth:`FileQueue.requeue_stale`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from pathlib import Path

from repro.api.spec import ExperimentSpec, Shard, shard_payload
from repro.dispatch.runners import RunnerPool

__all__ = ["TASK_FORMAT", "FileQueue", "drain_queue"]

#: Format tag of one task-descriptor file.
TASK_FORMAT = "repro.dispatch-task/v1"


class FileQueue:
    """A shard queue in a shared directory (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        for directory in (self.tasks_dir, self.claims_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileQueue({str(self.root)!r})"

    # -- naming ---------------------------------------------------------------
    @staticmethod
    def task_name(shard: Shard) -> str:
        """Stable file name of a shard's task: the shard identity.

        Two runs of the same spec share names, so re-publishing after a
        crash is naturally idempotent — and two *different* specs can never
        collide because the fingerprint and grid digest are part of the name.
        """
        entry = shard.entry()
        return (
            f"s{entry.seed}-{entry.start:05d}-{entry.stop:05d}"
            f"-{entry.fingerprint[:12]}-{entry.grid[:12]}"
        )

    # -- publishing -----------------------------------------------------------
    def publish(self, shard: Shard) -> bool:
        """Write the task descriptor for one shard (atomic; idempotent).

        Returns ``True`` when a new task file was published, ``False`` when
        the shard is already pending, claimed or completed.
        """
        name = self.task_name(shard)
        if any(
            (directory / f"{name}.json").exists()
            for directory in (self.tasks_dir, self.claims_dir, self.results_dir)
        ):
            return False
        entry = shard.entry()
        payload = {
            "format": TASK_FORMAT,
            "index": shard.index,
            "of": shard.of,
            "spec": shard.spec.to_payload(),
            "grid": entry.grid,
        }
        self._write_atomic(self.tasks_dir / f"{name}.json", payload)
        return True

    # -- claiming -------------------------------------------------------------
    def claim(self, name: str) -> dict | None:
        """Try to claim one task; returns its descriptor, or ``None`` if
        another worker won the rename race (or the task vanished)."""
        task = self.tasks_dir / f"{name}.json"
        claimed = self.claims_dir / f"{name}.json"
        try:
            os.rename(task, claimed)
        except OSError:
            return None
        try:
            # Stamp the claim: rename preserves the publish-time mtime, but
            # staleness (requeue_stale) must measure time since *claiming*.
            os.utime(claimed)
            return json.loads(claimed.read_text("utf-8"))
        except (OSError, ValueError):
            # Lost a race with a concurrent requeue_stale (the pre-utime
            # mtime looked ancient), or the descriptor bytes are unreadable:
            # either way this worker did not get a usable claim.
            return None

    def claim_next(self, *, skip: set[str] | None = None) -> tuple[str, dict] | None:
        """Claim the first available task in name order, racing politely.

        ``skip`` names tasks this worker already refused (foreign config);
        without it a released poison task would be re-claimed forever.
        """
        for task in sorted(self.tasks_dir.glob("*.json")):
            if skip and task.stem in skip:
                continue
            descriptor = self.claim(task.stem)
            if descriptor is not None:
                return task.stem, descriptor
        return None

    def release(self, name: str) -> None:
        """Return a claimed task to the pending pool (worker gave up)."""
        try:
            os.rename(self.claims_dir / f"{name}.json", self.tasks_dir / f"{name}.json")
        except OSError:  # pragma: no cover - concurrent recovery
            pass

    def requeue_stale(self, stale_after: float) -> int:
        """Move claims older than ``stale_after`` seconds back to pending.

        A crashed worker leaves its claim behind; a resuming driver calls
        this so the shard is offered again instead of waiting forever.
        """
        requeued = 0
        now = time.time()
        for claim in self.claims_dir.glob("*.json"):
            if (self.results_dir / claim.name).exists():
                continue
            try:
                if now - claim.stat().st_mtime >= stale_after:
                    os.rename(claim, self.tasks_dir / claim.name)
                    requeued += 1
            except OSError:  # pragma: no cover - concurrent recovery
                pass
        return requeued

    # -- results --------------------------------------------------------------
    def complete(self, name: str, payload: dict) -> None:
        """Publish the evaluated ``repro.shard/v1`` payload for a task."""
        self._write_atomic(self.results_dir / f"{name}.json", payload)

    def result(self, name: str) -> dict | None:
        """The completed payload for a task, or ``None`` while outstanding.

        An unparsable result file (truncated writer) is dropped *and the
        task's claim released*, so the shard goes back on offer instead of
        wedging behind a result nobody can read — degradation to
        re-evaluation, never wrong records.
        """
        path = self.results_dir / f"{name}.json"
        try:
            return json.loads(path.read_text("utf-8"))
        except OSError:
            return None
        except ValueError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            self.release(name)
            return None

    def pending(self) -> list[str]:
        """Names of currently unclaimed tasks, in name order."""
        return sorted(task.stem for task in self.tasks_dir.glob("*.json"))

    # -- task reconstruction ---------------------------------------------------
    @staticmethod
    def load_task(descriptor: dict) -> Shard:
        """Rebuild the shard a task describes, refusing untrusted tasks.

        The spec is reconstructed from its coordinates with this worker's
        **local default config**; if the reconstruction's fingerprint or
        grid digest disagrees with what the task declares, the worker's
        evaluation would silently diverge from the driver's expectation —
        so it raises instead (specs with custom configs must use the
        ``inline`` or ``process`` backends, which share the config object).
        """
        if descriptor.get("format") != TASK_FORMAT:
            raise ValueError(f"not a {TASK_FORMAT} descriptor: {descriptor.get('format')!r}")
        spec_payload = descriptor["spec"]
        spec = ExperimentSpec(
            seeds=tuple(spec_payload["seeds"]),
            languages=tuple(spec_payload["languages"]),
            models=None if spec_payload["models"] is None else tuple(spec_payload["models"]),
            kernels=None if spec_payload["kernels"] is None else tuple(spec_payload["kernels"]),
        )
        if spec.fingerprint() != spec_payload["fingerprint"]:
            raise ValueError(
                f"task expects config fingerprint {spec_payload['fingerprint']} but this "
                f"worker's default config fingerprints to {spec.fingerprint()}; "
                "custom-config specs cannot be dispatched through a file queue"
            )
        if spec.grid_digest() != descriptor["grid"]:
            raise ValueError(
                f"task expects grid {descriptor['grid']} but the reconstructed spec "
                f"enumerates grid {spec.grid_digest()}"
            )
        return spec.shard(int(descriptor["index"]), int(descriptor["of"]))

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp",
            delete=False, encoding="utf-8",
        )
        with handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(handle.name, path)


def drain_queue(
    queue: FileQueue | str | Path,
    *,
    max_tasks: int | None = None,
    verdict_store=None,
    progress=None,
) -> int:
    """Claim and evaluate pending tasks until the queue is empty.

    This is the worker loop behind ``repro-hpc-codex dispatch-worker``: any
    host that can see the queue directory runs it to contribute cycles to a
    dispatch.  Each claimed shard is evaluated serially (parallelism comes
    from running more workers) and its ``repro.shard/v1`` payload published
    for the driver to consume.  A task this worker cannot take (foreign
    config fingerprint, mismatching grid, corrupt descriptor) is released
    back — with a :class:`UserWarning` — and never re-claimed by this call,
    so one poison task cannot wedge the worker or starve the valid tasks
    behind it.  Returns the number of shards this call evaluated.
    """
    if not isinstance(queue, FileQueue):
        queue = FileQueue(queue)
    executed = 0
    refused: set[str] = set()
    with RunnerPool(verdict_store=verdict_store, progress=progress) as pool:
        while max_tasks is None or executed < max_tasks:
            claimed = queue.claim_next(skip=refused)
            if claimed is None:
                break
            name, descriptor = claimed
            try:
                shard = queue.load_task(descriptor)
            except (ValueError, KeyError, TypeError) as exc:
                queue.release(name)
                refused.add(name)
                warnings.warn(f"refusing queued task {name}: {exc}", stacklevel=2)
                continue
            runner = pool.runner(shard.seed, shard.spec.config)
            queue.complete(name, shard_payload(shard, runner.run_cells(shard.cells())))
            executed += 1
    return executed
