"""Persistent, cross-process shard-result store.

A :class:`ResultStore` is the shard-level sibling of
:class:`~repro.analysis.store.VerdictStore`: where the verdict store caches
one suggestion's analysis, the result store caches one **evaluated shard
payload** — the complete per-cell records of one
:class:`~repro.api.spec.Shard` — keyed on the shard's full identity
``(config fingerprint, grid digest, seed, cell slice)`` plus
:data:`~repro.analysis.verdict.ANALYSIS_VERSION`.  A
:class:`~repro.dispatch.driver.ShardDriver` consults it before dispatching
any shard, so a killed driver re-run (or a second driver sharing the
directory) skips every shard an earlier run already completed, and the warm
path reproduces the unsharded records byte-for-byte.

Both stores share :class:`~repro.analysis.store.ContentStore` — the same
pluggable backends (local fanout directory; tiered with a shared
``cache-server`` remote via ``remote=``/``$REPRO_CACHE_URL``, under the
``results`` namespace), atomic publication, corrupt-entry dropping,
fail-soft writes, read-only mode and ``compact`` eviction — so every
degradation guarantee of the verdict store (truncation, foreign bytes,
schema or analysis-version bumps, unreachable remote → recompute, never a
wrong result) holds for shard payloads too.

Example:

>>> import tempfile
>>> from repro.api import ExperimentSpec, Session
>>> from repro.dispatch.store import ResultStore
>>> spec = ExperimentSpec(seeds=(7,), languages=("julia",))
>>> shard = spec.shard(0, 2)
>>> tmp = tempfile.TemporaryDirectory()
>>> store = ResultStore(tmp.name)
>>> store.get(shard.entry()) is None  # empty store: a miss
True
>>> with Session(seed=7) as session:
...     store.put(shard.entry(), session.run(shard))
>>> len(store.get(shard.entry())) == len(shard)  # a later driver skips it
True
>>> tmp.cleanup()
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.store import ContentStore, _default_cache_path
from repro.analysis.verdict import ANALYSIS_VERSION
from repro.api.spec import ShardEntry
from repro.core.runner import ResultSet

__all__ = ["RESULT_STORE_SCHEMA", "ResultStore", "default_result_store_path"]

#: Version of the on-disk shard-payload format.  Bump on any change to the
#: digest inputs or the entry payload; old entries then degrade to
#: re-evaluation.  Behavior changes to the evaluation pipeline itself are
#: covered by :data:`~repro.analysis.verdict.ANALYSIS_VERSION`, folded into
#: every entry digest.
RESULT_STORE_SCHEMA = 1


def default_result_store_path() -> Path:
    """The default on-disk location of the shared shard-result store.

    ``$REPRO_RESULT_STORE`` overrides everything; otherwise the store lives
    under the XDG cache directory (``~/.cache/repro-hpc-codex/results``).
    """
    return _default_cache_path("REPRO_RESULT_STORE", "results")


class ResultStore(ContentStore):
    """On-disk cache of evaluated shard payloads, shared across processes.

    Keys are :class:`~repro.api.spec.ShardEntry` identities; values are the
    shard's per-cell records exactly as :meth:`ResultSet.to_records`
    produced them, so a store hit feeds the same bytes into a merge as a
    fresh evaluation would.
    """

    remote_namespace = "results"

    @classmethod
    def coerce(cls, value: "ResultStore | str | Path | bool | None") -> "ResultStore | None":
        """Normalise every accepted store argument to a store (or ``None``).

        ``None``/``False`` → no store (dispatch runs, but nothing survives
        the process); ``True`` → a store at :func:`default_result_store_path`;
        an ``http(s)://`` URL → a store at the default path tiered with that
        remote; a path → a store there; a store → itself.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls(default_result_store_path())
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.startswith(("http://", "https://")):
            return cls(default_result_store_path(), remote=value)
        return cls(value)

    def _schema(self) -> int:
        return RESULT_STORE_SCHEMA

    def _analysis_version(self) -> int:
        return ANALYSIS_VERSION

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def digest(entry: ShardEntry) -> str:
        """Content digest of a shard identity.

        Folds in the store schema, :data:`ANALYSIS_VERSION` (pipeline
        behavior changes orphan cached shards), the spec's config
        fingerprint and grid digest, and the exact ``(seed, cell slice)`` —
        everything that determines the shard's records.
        """
        payload = json.dumps(
            [
                RESULT_STORE_SCHEMA,
                ANALYSIS_VERSION,
                entry.fingerprint,
                entry.grid,
                entry.seed,
                entry.start,
                entry.stop,
                entry.total_cells,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- lookups --------------------------------------------------------------
    def get(self, entry: ShardEntry) -> ResultSet | None:
        """The stored records for this shard, or ``None`` (miss / corrupt).

        The stored identity and record count are validated against the
        requested entry before anything is returned; mismatching or
        truncated payloads are dropped and reported as misses, so every
        failure mode degrades to re-evaluation — never to wrong records.
        """

        def validate(payload: dict) -> ResultSet:
            if payload["schema"] != RESULT_STORE_SCHEMA:
                raise ValueError(f"schema {payload['schema']} != {RESULT_STORE_SCHEMA}")
            if ShardEntry.from_payload(payload["entry"]) != entry:
                raise ValueError("entry does not match the requested shard")
            records = payload["records"]
            if not isinstance(records, list) or len(records) != entry.stop - entry.start:
                raise ValueError(
                    f"shard covers {entry.stop - entry.start} cells but the entry "
                    f"carries {len(records) if isinstance(records, list) else '?'} records"
                )
            return ResultSet.from_payload(records, seed=entry.seed)

        return self._load_entry(self.digest(entry), validate)

    def put(self, entry: ShardEntry, results: ResultSet) -> None:
        """Persist one evaluated shard (idempotent, atomic, fail-soft)."""
        if len(results) != entry.stop - entry.start:
            raise ValueError(
                f"shard covers {entry.stop - entry.start} cells but results hold {len(results)}"
            )
        if results.seed != entry.seed:
            raise ValueError(f"results carry seed {results.seed}, shard expects {entry.seed}")
        payload = {
            "schema": RESULT_STORE_SCHEMA,
            "analysis": ANALYSIS_VERSION,
            "entry": entry.to_payload(),
            "records": results.to_records(),
        }
        self._store_entry(self.digest(entry), payload)
