"""Top-level suggestion analyzer.

Combines model detection, structural checks, kernel-semantics checks and
(for Python) sandboxed execution into a single :class:`SuggestionVerdict`,
which is what the proficiency metric in :mod:`repro.core` consumes.

Analysis is pure in ``(code, language, kernel, requested_model)``, so
verdicts are memoized **process-wide**: identical suggestions (the sampler
emits near-duplicate completions by design) are analyzed — and, for Python,
sandbox-executed — exactly once per process, no matter how many runners,
ablations or threads ask.  Analyzers configured with a custom execution
backend or with execution disabled get a private memo instead, so their
verdicts never leak into the shared store.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import clike, fortranlang, julialang, pythonlang
from repro.analysis.detection import detect_models
from repro.analysis.verdict import SuggestionVerdict
from repro.models.languages import get_language
from repro.models.programming_models import get_model

__all__ = ["SuggestionAnalyzer", "analyze_suggestion", "clear_verdict_memo"]

#: Memo key: (code, language, kernel, requested model uid).
VerdictKey = tuple[str, str, str, str]

#: Process-wide verdict memo shared by every default-mode analyzer.
_SHARED_VERDICT_MEMO: dict[VerdictKey, SuggestionVerdict] = {}


def clear_verdict_memo() -> None:
    """Empty the shared verdict memo (test isolation helper)."""
    _SHARED_VERDICT_MEMO.clear()


def _copy_verdict(verdict: SuggestionVerdict) -> SuggestionVerdict:
    """Defensive copy handed to callers: :class:`SuggestionVerdict` is
    mutable, and an aliased memo entry would let one caller's mutation
    poison every later analysis in the process."""
    return dataclasses.replace(verdict, issues=list(verdict.issues))

#: Signature of the pluggable Python execution backend:
#: ``(code, kernel) -> (math_correct, issues)``.
PythonExecutor = Callable[[str, str], tuple[bool, list[str]]]


def _looks_like_code(text: str, comment_prefix: str) -> bool:
    stripped = text.strip()
    if not stripped:
        return False
    prefixes = ("//", "#", "!", "/*", "*")
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(comment_prefix) or line.startswith(prefixes):
            continue
        return True
    return False


def _default_python_executor(code: str, kernel: str) -> tuple[bool, list[str]]:
    from repro.sandbox import evaluate_python_suggestion

    result = evaluate_python_suggestion(code, kernel)
    return result.passed, list(result.issues)


@dataclass
class SuggestionAnalyzer:
    """Analyzes raw suggestions for a given prompt.

    Parameters
    ----------
    execute_python:
        Whether Python suggestions are executed against numerical oracles
        (the default) or judged statically only.
    python_executor:
        Pluggable execution backend; defaults to the sandbox in
        :mod:`repro.sandbox`.
    shared_memo:
        Whether verdicts go into the process-wide memo.  ``None`` (default)
        shares the memo exactly when the analyzer is in the default analysis
        mode (executing, with the default sandbox backend); pass ``False``
        to force a private cache, ``True`` to share regardless.
    """

    execute_python: bool = True
    python_executor: PythonExecutor | None = None
    shared_memo: bool | None = None
    _cache: dict[VerdictKey, SuggestionVerdict] = field(
        default=None, repr=False  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if self._cache is None:
            share = self.shared_memo
            if share is None:
                share = self.execute_python and self.python_executor is None
            self._cache = _SHARED_VERDICT_MEMO if share else {}

    def analyze(
        self,
        code: str,
        *,
        language: str,
        kernel: str,
        requested_model: str,
    ) -> SuggestionVerdict:
        """Analyze one suggestion.

        Parameters
        ----------
        code:
            Raw suggestion text.
        language:
            Host language canonical name.
        kernel:
            Kernel canonical name ("axpy", ...).
        requested_model:
            Programming model uid the prompt asked for ("cpp.openmp", ...).
        """
        lang = get_language(language)
        requested = get_model(requested_model)
        cache_key = (code, lang.name, kernel, requested.uid)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return _copy_verdict(cached)

        verdict = SuggestionVerdict(is_code=_looks_like_code(code, lang.comment_prefix))
        if not verdict.is_code:
            verdict.add_issue("suggestion contains no code")
            self._cache[cache_key] = verdict
            return _copy_verdict(verdict)

        detected = detect_models(code, lang.name)
        verdict.detected_models = detected
        verdict.uses_requested_model = requested.uid in detected
        verdict.uses_other_model = any(uid != requested.uid for uid in detected)

        issues: list[str] = []
        if lang.name == "cpp":
            issues.extend(clike.check_structure(code))
            if not issues:
                issues.extend(clike.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "fortran":
            issues.extend(fortranlang.check_structure(code))
            if not issues:
                issues.extend(fortranlang.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "julia":
            issues.extend(julialang.check_structure(code))
            if not issues:
                issues.extend(julialang.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "python":
            issues.extend(pythonlang.check_structure(code))
            undefined = pythonlang.undefined_call_names(code)
            if undefined:
                issues.append(f"calls undefined function(s): {', '.join(sorted(undefined))}")
            if not issues and self.execute_python:
                executor = self.python_executor or _default_python_executor
                passed, exec_issues = executor(code, kernel)
                issues.extend(exec_issues)
                if not passed and not exec_issues:
                    issues.append("execution did not reproduce the oracle result")
                verdict.method = "executed"
            else:
                verdict.method = "static"
        else:  # pragma: no cover - registry guards this
            raise KeyError(f"no analyzer for language {lang.name!r}")

        verdict.issues.extend(issues)
        verdict.math_correct = not issues
        self._cache[cache_key] = verdict
        return _copy_verdict(verdict)


_DEFAULT_ANALYZER = SuggestionAnalyzer()


def analyze_suggestion(
    code: str,
    *,
    language: str,
    kernel: str,
    requested_model: str,
) -> SuggestionVerdict:
    """Analyze a suggestion with the default (executing) analyzer."""
    return _DEFAULT_ANALYZER.analyze(
        code, language=language, kernel=kernel, requested_model=requested_model
    )
