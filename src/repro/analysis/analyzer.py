"""Top-level suggestion analyzer.

Combines model detection, structural checks, kernel-semantics checks and
(for Python) sandboxed execution into a single :class:`SuggestionVerdict`,
which is what the proficiency metric in :mod:`repro.core` consumes.

Analysis is pure in ``(code, language, kernel, requested_model)``, so
verdicts are memoized **process-wide**: identical suggestions (the sampler
emits near-duplicate completions by design) are analyzed — and, for Python,
sandbox-executed — exactly once per process, no matter how many runners,
ablations or threads ask.  Analyzers configured with a custom execution
backend or with execution disabled get a private memo instead, so their
verdicts never leak into the shared store.

Two further layers sit at this seam:

* A persistent :class:`~repro.analysis.store.VerdictStore` can be attached
  (``SuggestionAnalyzer(store=...)``): memo misses consult the on-disk store
  before computing, and every verdict the analyzer computes is written back
  — so verdicts survive the process and are shared across process-backend
  workers and separate CLI invocations.
* :meth:`SuggestionAnalyzer.analyze_batch` resolves a whole suggestion list
  at once.  Cache misses that need sandbox execution are collected and run
  as one batch through
  :func:`repro.sandbox.executor.evaluate_python_suggestions`, which installs
  the fake GPU runtime once and sets up each kernel's numerical oracle once
  per group instead of once per suggestion.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import clike, fortranlang, hazards, julialang, pythonlang
from repro.analysis.detection import detect_models
from repro.analysis.store import VerdictStore
from repro.analysis.verdict import SuggestionVerdict
from repro.models.languages import Language, get_language
from repro.models.programming_models import get_model

__all__ = ["SuggestionAnalyzer", "analyze_suggestion", "clear_verdict_memo"]

#: Memo key: (code, language, kernel, requested model uid).
VerdictKey = tuple[str, str, str, str]

#: Process-wide verdict memo shared by every default-mode analyzer.
_SHARED_VERDICT_MEMO: dict[VerdictKey, SuggestionVerdict] = {}


def clear_verdict_memo() -> None:
    """Empty the shared verdict memo (test isolation helper)."""
    _SHARED_VERDICT_MEMO.clear()


def _copy_verdict(verdict: SuggestionVerdict) -> SuggestionVerdict:
    """Defensive copy handed to callers: :class:`SuggestionVerdict` is
    mutable, and an aliased memo entry would let one caller's mutation
    poison every later analysis in the process."""
    return dataclasses.replace(
        verdict,
        issues=list(verdict.issues),
        static_findings=[dict(f) for f in verdict.static_findings],
    )

#: Signature of the pluggable Python execution backend:
#: ``(code, kernel) -> (math_correct, issues)``.
PythonExecutor = Callable[[str, str], tuple[bool, list[str]]]


def _looks_like_code(text: str, comment_prefix: str) -> bool:
    stripped = text.strip()
    if not stripped:
        return False
    prefixes = ("//", "#", "!", "/*", "*")
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(comment_prefix) or line.startswith(prefixes):
            continue
        return True
    return False


def _default_python_executor(code: str, kernel: str) -> tuple[bool, list[str]]:
    from repro.sandbox import evaluate_python_suggestion

    result = evaluate_python_suggestion(code, kernel)
    return result.passed, list(result.issues)


#: The pristine default backend.  The batch path compares against this to
#: decide whether execution can go through the batched sandbox entry point;
#: a monkeypatched/custom executor is honoured per suggestion instead.
_PRISTINE_PYTHON_EXECUTOR = _default_python_executor


@dataclass
class SuggestionAnalyzer:
    """Analyzes raw suggestions for a given prompt.

    Parameters
    ----------
    execute_python:
        Whether Python suggestions are executed against numerical oracles
        (the default) or judged statically only.
    python_executor:
        Pluggable execution backend; defaults to the sandbox in
        :mod:`repro.sandbox`.
    shared_memo:
        Whether verdicts go into the process-wide memo.  ``None`` (default)
        shares the memo exactly when the analyzer is in the default analysis
        mode (executing, with the default sandbox backend); pass ``False``
        to force a private cache, ``True`` to share regardless.
    store:
        Optional persistent :class:`~repro.analysis.store.VerdictStore` (or
        its directory path) layered below the in-memory memo.  Memo hits
        stay free; memo misses consult the store before computing, and every
        verdict this analyzer computes is written back.
    """

    execute_python: bool = True
    python_executor: PythonExecutor | None = None
    shared_memo: bool | None = None
    store: VerdictStore | str | Path | None = None
    _cache: dict[VerdictKey, SuggestionVerdict] = field(
        default=None, repr=False  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        self.store = VerdictStore.coerce(self.store)
        if self.store is not None and (not self.execute_python or self.python_executor is not None):
            # The store key carries no analysis mode: letting a static-only
            # or custom-backend analyzer write it would hand default
            # analyzers mode-dependent verdicts (same reason those modes get
            # a private memo).
            raise ValueError(
                "a persistent verdict store only holds default-mode verdicts; it cannot "
                "be combined with execute_python=False or a custom python_executor"
            )
        if self._cache is None:
            share = self.shared_memo
            if share is None:
                share = self.execute_python and self.python_executor is None
            self._cache = _SHARED_VERDICT_MEMO if share else {}

    def analyze(
        self,
        code: str,
        *,
        language: str,
        kernel: str,
        requested_model: str,
    ) -> SuggestionVerdict:
        """Analyze one suggestion.

        Parameters
        ----------
        code:
            Raw suggestion text.
        language:
            Host language canonical name.
        kernel:
            Kernel canonical name ("axpy", ...).
        requested_model:
            Programming model uid the prompt asked for ("cpp.openmp", ...).
        """
        return self.analyze_batch(
            (code,), language=language, kernel=kernel, requested_model=requested_model
        )[0]

    def analyze_batch(
        self,
        codes: Sequence[str],
        *,
        language: str,
        kernel: str,
        requested_model: str,
    ) -> list[SuggestionVerdict]:
        """Analyze a whole suggestion list for one prompt.

        Produces exactly the verdicts :meth:`analyze` would produce one by
        one, but resolves the caches first and then executes every pending
        Python suggestion as a single sandbox batch (one fake-runtime
        context, one oracle setup per kernel) — the cache-miss seam is where
        batches form.  Duplicate suggestions inside the batch are analyzed
        once.
        """
        lang = get_language(language)
        requested_uid = get_model(requested_model).uid
        keys: list[VerdictKey] = [(code, lang.name, kernel, requested_uid) for code in codes]
        out: list[SuggestionVerdict | None] = [None] * len(keys)
        pending: dict[VerdictKey, list[int]] = {}
        for position, key in enumerate(keys):
            cached = self._lookup(key)
            if cached is not None:
                out[position] = _copy_verdict(cached)
            else:
                pending.setdefault(key, []).append(position)

        if pending:
            finished: dict[VerdictKey, SuggestionVerdict] = {}
            to_execute: list[tuple[VerdictKey, SuggestionVerdict]] = []
            for key in pending:
                verdict, needs_execution = self._static_verdict(key, lang, requested_uid)
                if needs_execution:
                    to_execute.append((key, verdict))
                else:
                    finished[key] = verdict
            if to_execute:
                for (key, verdict), (passed, exec_issues) in zip(
                    to_execute, self._execute_pending(to_execute), strict=True
                ):
                    issues = list(exec_issues)
                    if not passed and not issues:
                        issues.append("execution did not reproduce the oracle result")
                    verdict.issues.extend(issues)
                    verdict.math_correct = not issues
                    finished[key] = verdict
            for key, verdict in finished.items():
                self._remember(key, verdict)
                for position in pending[key]:
                    out[position] = _copy_verdict(verdict)
        return out  # type: ignore[return-value]

    # -- cache plumbing -------------------------------------------------------
    def _lookup(self, key: VerdictKey) -> SuggestionVerdict | None:
        """Memo first (free), then the persistent store (filling the memo).

        Memo hits are deliberately *not* written through to the store: a
        memo entry carries no provenance, and a ``shared_memo=True``
        analyzer in a non-default mode may have put a mode-dependent verdict
        there.  Only verdicts this analyzer computed itself (or loaded from
        the store) are ever persisted, so the store can never serve a
        verdict a cold default-mode run would not reproduce.
        """
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self._cache[key] = stored
                return stored
        return None

    def _remember(self, key: VerdictKey, verdict: SuggestionVerdict) -> None:
        self._cache[key] = verdict
        if self.store is not None:
            self.store.put(key, verdict)

    # -- analysis -------------------------------------------------------------
    def _static_verdict(
        self, key: VerdictKey, lang: Language, requested_uid: str
    ) -> tuple[SuggestionVerdict, bool]:
        """The static part of the analysis.

        Returns ``(verdict, needs_execution)``: when ``needs_execution`` is
        False the verdict is complete; otherwise only the sandbox execution
        outcome (issues + ``math_correct``) is still missing.
        """
        code, _, kernel, _ = key
        verdict = SuggestionVerdict(is_code=_looks_like_code(code, lang.comment_prefix))
        if not verdict.is_code:
            verdict.add_issue("suggestion contains no code")
            return verdict, False

        detected = detect_models(code, lang.name)
        verdict.detected_models = detected
        verdict.uses_requested_model = requested_uid in detected
        verdict.uses_other_model = any(uid != requested_uid for uid in detected)

        issues: list[str] = []
        if lang.name == "cpp":
            issues.extend(clike.check_structure(code))
            if not issues:
                issues.extend(clike.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "fortran":
            issues.extend(fortranlang.check_structure(code))
            if not issues:
                issues.extend(fortranlang.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "julia":
            issues.extend(julialang.check_structure(code))
            if not issues:
                issues.extend(julialang.check_kernel_semantics(code, kernel))
            verdict.method = "static"
        elif lang.name == "python":
            # Informational static hazard findings for embedded CUDA-C
            # kernels; they never affect issues or math_correct.
            verdict.static_findings = hazards.static_findings_for(code, "python", kernel)
            issues.extend(pythonlang.check_structure(code))
            undefined = pythonlang.undefined_call_names(code)
            if undefined:
                issues.append(f"calls undefined function(s): {', '.join(sorted(undefined))}")
            if not issues and self.execute_python:
                verdict.method = "executed"
                return verdict, True
            verdict.method = "static"
        else:  # pragma: no cover - registry guards this
            raise KeyError(f"no analyzer for language {lang.name!r}")

        verdict.issues.extend(issues)
        verdict.math_correct = not issues
        return verdict, False

    def _execute_pending(
        self, items: list[tuple[VerdictKey, SuggestionVerdict]]
    ) -> list[tuple[bool, list[str]]]:
        """Run the execution backend over every pending Python suggestion.

        The pristine default backend goes through the batched sandbox entry
        point (one fake-runtime context, one oracle per kernel group); a
        custom or monkeypatched backend keeps its per-suggestion contract.
        """
        executor = self.python_executor or _default_python_executor
        if executor is _PRISTINE_PYTHON_EXECUTOR:
            from repro.sandbox import evaluate_python_suggestions

            results = evaluate_python_suggestions(
                [(key[0], key[2]) for key, _ in items]
            )
            return [(result.passed, list(result.issues)) for result in results]
        return [executor(key[0], key[2]) for key, _ in items]


_DEFAULT_ANALYZER = SuggestionAnalyzer()


def analyze_suggestion(
    code: str,
    *,
    language: str,
    kernel: str,
    requested_model: str,
) -> SuggestionVerdict:
    """Analyze a suggestion with the default (executing) analyzer."""
    return _DEFAULT_ANALYZER.analyze(
        code, language=language, kernel=kernel, requested_model=requested_model
    )
