"""Programming-model detection.

Given a suggestion and its host language, decide which parallel programming
model(s) the code actually uses.  Detection is marker-based (directive
sentinels, API namespaces, kernel-launch syntax, decorators) with precedence
rules that resolve the natural ambiguities:

* ``#pragma omp target`` is OpenMP *offload*, which shadows plain OpenMP;
* HIP code contains ``__global__`` and ``blockIdx`` exactly like CUDA, so the
  HIP runtime API (``hipMalloc``/``hipLaunchKernelGGL``) takes precedence;
* Thrust functors carry ``__host__ __device__`` qualifiers but no
  ``__global__`` kernels, so the ``thrust::`` namespace decides;
* in Julia, ``CUDA.jl`` and ``AMDGPU.jl`` kernels share the kernel-function
  shape, so the package markers (``using CUDA`` / ``@cuda`` vs.
  ``using AMDGPU`` / ``@roc``) decide.
"""

from __future__ import annotations

from repro.models.programming_models import PROGRAMMING_MODELS

__all__ = ["detect_models", "primary_model"]


def _contains_any(code: str, markers: tuple[str, ...]) -> bool:
    return any(marker in code for marker in markers)


def _detect_cpp(code: str) -> list[str]:
    found: list[str] = []
    has_omp_target = "#pragma omp target" in code
    has_omp = "#pragma omp" in code
    if has_omp_target:
        found.append("cpp.openmp_offload")
    if has_omp and not has_omp_target:
        found.append("cpp.openmp")
    if "#pragma acc" in code:
        found.append("cpp.openacc")
    if "Kokkos::" in code or "KOKKOS_LAMBDA" in code:
        found.append("cpp.kokkos")
    if "thrust::" in code:
        found.append("cpp.thrust")
    if "sycl::" in code or "cl::sycl" in code:
        found.append("cpp.sycl")
    has_hip = _contains_any(code, ("hipMalloc", "hipMemcpy", "hipLaunchKernelGGL", "hip_runtime"))
    has_cuda_api = _contains_any(code, ("cudaMalloc", "cudaMemcpy", "cuda_runtime", "<<<"))
    has_global = "__global__" in code
    if has_hip:
        found.append("cpp.hip")
    if (has_cuda_api or (has_global and not has_hip)) and not has_hip:
        # A __global__ kernel without any HIP API is CUDA-style code; Thrust
        # functors (__host__ __device__, no __global__) do not qualify.
        if has_cuda_api or has_global:
            found.append("cpp.cuda")
    return found


def _detect_fortran(code: str) -> list[str]:
    lowered = code.lower()
    found: list[str] = []
    has_target = "!$omp target" in lowered
    has_omp = "!$omp" in lowered
    if has_target:
        found.append("fortran.openmp_offload")
    if has_omp and not has_target:
        found.append("fortran.openmp")
    if "!$acc" in lowered:
        found.append("fortran.openacc")
    return found


def _detect_python(code: str) -> list[str]:
    found: list[str] = []
    if "pykokkos" in code:
        # Extension model (repro.extensions); the uid filter in
        # detect_models drops it when the extended grid is not registered.
        found.append("python.kokkos")
    if "cupy" in code or "import cupy" in code:
        found.append("python.cupy")
    if "pycuda" in code:
        found.append("python.pycuda")
    if "numba" in code or "@njit" in code or "@jit" in code or "prange(" in code:
        found.append("python.numba")
    if ("numpy" in code or "np." in code) and not found:
        # numpy counts as the "model" only when no genuinely parallel /
        # GPU package is present (cuPy and Numba code almost always also
        # imports numpy for host arrays).
        found.append("python.numpy")
    return found


def _detect_julia(code: str) -> list[str]:
    found: list[str] = []
    if "KernelAbstractions" in code or "@kernel" in code:
        found.append("julia.kernelabstractions")
    if "using AMDGPU" in code or "@roc" in code or "ROCArray" in code or "workitemIdx" in code:
        found.append("julia.amdgpu")
    if "using CUDA" in code or "@cuda " in code or "@cuda\n" in code or "CuArray" in code:
        found.append("julia.cuda")
    if "Threads.@threads" in code or "@threads" in code:
        found.append("julia.threads")
    return found


_DETECTORS = {
    "cpp": _detect_cpp,
    "fortran": _detect_fortran,
    "python": _detect_python,
    "julia": _detect_julia,
}


def detect_models(code: str, language: str) -> tuple[str, ...]:
    """Detect the programming model uids used by ``code``.

    Returns an empty tuple for serial code (or non-code text).
    """
    language = language.lower()
    if language not in _DETECTORS:
        raise KeyError(f"no detector for language {language!r}")
    found = _DETECTORS[language](code)
    # Keep only known uids and preserve detector ordering (most specific first).
    return tuple(uid for uid in found if uid in PROGRAMMING_MODELS)


def primary_model(code: str, language: str) -> str | None:
    """The most specific model detected, or None for serial code."""
    models = detect_models(code, language)
    return models[0] if models else None
