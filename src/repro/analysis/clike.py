"""Structural and semantic checks for C-like suggestions (C++, CUDA, HIP,
Kokkos, Thrust, SyCL).

The checks are deliberately conservative: they verify properties that every
idiomatic correct implementation of the kernel exhibits and that the
realistic failure modes (sign flips, off-by-one bounds, undefined helper
calls, truncated completions) violate.  They are *not* a compiler — a
suggestion passing these checks corresponds to the paper's human judgement
"this looks like a correct kernel in the requested model".
"""

from __future__ import annotations

import re

from repro.analysis.lexical import (
    balanced_delimiters,
    normalize_whitespace,
    strip_c_comments,
    strip_string_literals,
)

__all__ = ["check_structure", "check_kernel_semantics"]


# ---------------------------------------------------------------------------
# Structural checks
# ---------------------------------------------------------------------------

def check_structure(code: str) -> list[str]:
    """Generic structural sanity of a C-like suggestion."""
    issues: list[str] = []
    cleaned = strip_string_literals(strip_c_comments(code))
    if not balanced_delimiters(cleaned):
        issues.append("unbalanced braces/brackets (truncated or malformed code)")
    if not re.search(r"[;{}]", cleaned):
        issues.append("no statements found")
    return issues


def _check_thread_index(norm: str) -> list[str]:
    """GPU thread-index sanity: ``blockIdx * blockDim + threadIdx`` shape.

    Every global-index assignment that references ``blockIdx`` must have the
    canonical affine form; a single malformed one (sign flip, missing term)
    makes that thread dimension address the wrong elements.
    """
    issues: list[str] = []
    for stmt in re.findall(r"\w+ = [^;{]*blockIdx\.[^;{]*;", norm):
        if not re.search(
            r"(blockIdx\.(\w) \* blockDim\.\2 \+ threadIdx\.\2|blockDim\.(\w) \* blockIdx\.\3 \+ threadIdx\.\3)",
            stmt,
        ):
            issues.append("malformed GPU thread-index computation")
            break
    return issues


def _check_loop_bounds(norm: str, kernel: str) -> list[str]:
    """Loop-bound sanity.

    For the dense/sparse kernels every counted ``for`` loop with a literal
    start must begin at 0; for the Jacobi stencil the spatial loops must
    begin at 1 (interior points only).  CUDA-style guards must be strict
    (``i < n``), not inclusive.
    """
    issues: list[str] = []
    starts = [int(m) for m in re.findall(r"for \( ?int \w+ = (\d+) ?;", norm)]
    expected_start = 1 if kernel == "jacobi" else 0
    for start in starts:
        if start != expected_start:
            issues.append(f"loop starts at {start}, expected {expected_start}")
            break
    # Guard of the form `if (i <= n)` over-runs the array by one element.
    if re.search(r"if \( ?\w+ <= [a-zA-Z_]\w* ?\)", norm) and kernel != "jacobi":
        issues.append("inclusive bound guard (off-by-one)")
    return issues


# ---------------------------------------------------------------------------
# Kernel-specific semantic patterns
# ---------------------------------------------------------------------------

_IDX = r"[\[\(] ?\w+ ?[\]\)]"  # [i] or (i)


def _axpy_ok(norm: str) -> bool:
    patterns = (
        rf"y ?{_IDX} ?= a \* x ?{_IDX} ?\+ y ?{_IDX}",
        rf"y ?{_IDX} ?\+= a \* x ?{_IDX}",
        rf"y ?{_IDX} ?= y ?{_IDX} ?\+ a \* x ?{_IDX}",
        r"return a \* x \+ y",          # functor / lambda style (Thrust)
        r"y_acc\[i\] = a \* x_acc\[i\] \+ y_acc\[i\]",  # SyCL accessor style
    )
    return any(re.search(p, norm) for p in patterns)


def _gemv_ok(norm: str) -> bool:
    acc_patterns = (
        r"\+= A\w* ?\[ ?i \* n \+ j ?\] \* x\w* ?\[ ?j ?\]",
        r"\+= A ?\( ?i ?, ?j ?\) \* x ?\( ?j ?\)",
        r"\+= A ?\[ ?i ?\] ?\[ ?j ?\] \* x ?\[ ?j ?\]",
    )
    return any(re.search(p, norm) for p in acc_patterns)


def _gemm_ok(norm: str) -> bool:
    acc_patterns = (
        r"\+= A\w* ?\[ ?i \* k \+ l ?\] \* B\w* ?\[ ?l \* n \+ j ?\]",
        r"\+= A ?\( ?i ?, ?l ?\) \* B ?\( ?l ?, ?j ?\)",
        r"\+= A ?\[ ?i ?\] ?\[ ?l ?\] \* B ?\[ ?l ?\] ?\[ ?j ?\]",
    )
    return any(re.search(p, norm) for p in acc_patterns)


def _spmv_ok(norm: str) -> bool:
    has_row_loop = bool(
        re.search(r"= (row_ptr|rp)\w* ?[\[\(] ?i ?[\]\)] ?; \w+ < (row_ptr|rp)\w* ?[\[\(] ?i \+ 1 ?[\]\)]", norm)
    )
    has_accumulation = bool(
        re.search(r"\+= (values|v)\w* ?[\[\(] ?j ?[\]\)] \* x\w* ?[\[\(] ?(col_idx|ci)\w* ?[\[\(] ?j ?[\]\)] ?[\]\)]", norm)
    )
    return has_row_loop and has_accumulation


def _jacobi_ok(norm: str) -> bool:
    # Locate the stencil assignment and verify it averages six neighbour
    # reads of u with five additions and a division by 6.
    match = re.search(r"\w*u\w* ?(\[[^=]*\]|\([^=]*\)) ?= \((.*?)\) / 6", norm)
    if not match:
        return False
    expr = match.group(2)
    neighbour_reads = len(re.findall(r"u\w* ?[\[\(]", expr))
    plus_count = expr.count("+")
    if neighbour_reads < 6 or plus_count < 5:
        return False
    # When a linearised index variable is used it must be well-formed.
    idx_match = re.search(r"int \w+ = (i \* n \* n[^;]*);", norm)
    if idx_match and idx_match.group(1).strip() != "i * n * n + j * n + k":
        return False
    return True


def _cg_ok(norm: str) -> bool:
    # (1) a matrix-vector accumulation against the search direction p
    has_matvec = bool(
        re.search(r"\+= \w*A\w* ?(\[ ?i \* n \+ j ?\]|\( ?i ?, ?j ?\)) \* \w*p\w* ?[\[\(] ?j ?[\]\)]", norm)
    )
    # (2) the residual dot product appears at least twice (before the loop
    #     and when computing rsnew inside it)
    residual_dots = len(re.findall(r"r\w* ?[\[\(] ?i ?[\]\)] \* r\w* ?[\[\(] ?i ?[\]\)]", norm))
    residual_dots += len(re.findall(r"inner_product ?\( ?r\.begin", norm))
    residual_dots += len(re.findall(r"device_dot ?\( ?n ?, ?d_r ?, ?d_r", norm))
    residual_dots += len(re.findall(r"dot ?\( ?r ?, ?r ?\)", norm))
    # (3) the solution update x += alpha * p
    has_x_update = bool(
        re.search(r"x\w* ?[\[\(] ?i ?[\]\)] ?(\+=|= \w*x\w* ?[\[\(] ?i ?[\]\)] ?\+) ?alpha \* \w*p", norm)
        or re.search(r"axpy_kernel ?<<<[^>]*>>> ?\( ?n ?, ?alpha ?, ?d_p ?, ?d_x ?\)", norm)
        or re.search(r"hipLaunchKernelGGL ?\( ?axpy_kernel[^;]*alpha ?, ?d_p ?, ?d_x ?\)", norm)
        or re.search(r"transform ?\( ?p\.begin[^;]*saxpy_functor ?\( ?alpha ?\)", norm)
    )
    # (4) the search-direction update p = r + beta * p
    has_p_update = bool(
        re.search(r"p\w* ?[\[\(] ?i ?[\]\)] ?= r\w* ?[\[\(] ?i ?[\]\)] ?\+ beta \* p", norm)
        or re.search(r"xpby_kernel", norm)
        or re.search(r"xpby_functor ?\( ?beta ?\)", norm)
    )
    # (5) alpha computed as a Rayleigh-style quotient
    has_alpha = bool(re.search(r"alpha = rsold / ", norm))
    score = sum((has_matvec, residual_dots >= 2, has_x_update, has_p_update, has_alpha))
    return score >= 5


_KERNEL_CHECKS = {
    "axpy": _axpy_ok,
    "gemv": _gemv_ok,
    "gemm": _gemm_ok,
    "spmv": _spmv_ok,
    "jacobi": _jacobi_ok,
    "cg": _cg_ok,
}


def check_kernel_semantics(code: str, kernel: str) -> list[str]:
    """Kernel-specific semantic checks; returns a list of issues (empty = ok)."""
    kernel = kernel.lower()
    if kernel not in _KERNEL_CHECKS:
        raise KeyError(f"no C-like semantic check for kernel {kernel!r}")
    cleaned = strip_string_literals(strip_c_comments(code))
    norm = normalize_whitespace(cleaned)
    issues: list[str] = []
    issues.extend(_check_thread_index(norm))
    issues.extend(_check_loop_bounds(norm, kernel))
    if not _KERNEL_CHECKS[kernel](norm):
        issues.append(f"characteristic {kernel} update expression not found or malformed")
    return issues
