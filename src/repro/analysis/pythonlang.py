"""Static checks for Python suggestions.

Python is the one language whose suggestions we can *execute* against the
numerical oracles (see :mod:`repro.sandbox`); the static layer here only
establishes that the suggestion is syntactically valid Python, defines a
callable entry point for the kernel, and does not reference obviously
undefined helper functions at module scope.
"""

from __future__ import annotations

import ast
import builtins

__all__ = ["check_structure", "find_entry_function", "undefined_call_names"]

#: Module roots the sandbox knows how to provide.
KNOWN_MODULE_ROOTS = {"numpy", "numba", "cupy", "pycuda", "math", "cupyx", "pykokkos"}


def parse_or_none(code: str) -> ast.Module | None:
    try:
        return ast.parse(code)
    except SyntaxError:
        return None


def check_structure(code: str) -> list[str]:
    """Syntax validity and presence of a function definition."""
    issues: list[str] = []
    tree = parse_or_none(code)
    if tree is None:
        issues.append("not valid Python (syntax error)")
        return issues
    functions = [node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)]
    if not functions:
        issues.append("no function definition found")
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module = node.module if isinstance(node, ast.ImportFrom) else None
            names = [module] if module else [alias.name for alias in node.names]
            for name in names:
                root = (name or "").split(".")[0]
                if root and root not in KNOWN_MODULE_ROOTS:
                    issues.append(f"imports unavailable module {root!r}")
    return issues


def find_entry_function(code: str, kernel: str) -> str | None:
    """Name of the function implementing ``kernel`` in ``code``.

    Preference order: exact kernel name, a name containing the kernel name
    (excluding private helpers), then the single public function if there is
    exactly one.
    """
    tree = parse_or_none(code)
    if tree is None:
        return None
    # Only top-level functions can be called from the sandbox namespace.
    functions = [node.name for node in tree.body if isinstance(node, ast.FunctionDef)]
    if not functions:
        return None
    kernel = kernel.lower()
    for name in functions:
        if name.lower() == kernel:
            return name
    public = [name for name in functions if not name.startswith("_")]
    for name in public:
        if kernel in name.lower():
            return name
    if len(public) == 1:
        return public[0]
    return None


def undefined_call_names(code: str) -> set[str]:
    """Plain-name calls that are neither defined in the module, imported,
    assigned, builtins, nor parameters of the enclosing functions."""
    tree = parse_or_none(code)
    if tree is None:
        return set()
    defined: set[str] = set(dir(builtins))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            defined.add(node.name)
            defined.update(arg.arg for arg in node.args.args)
            defined.update(arg.arg for arg in node.args.kwonlyargs)
        elif isinstance(node, ast.Import):
            defined.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            defined.update(alias.asname or alias.name for alias in node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        defined.add(sub.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    defined.add(sub.id)
    called: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            called.add(node.func.id)
    return {name for name in called if name not in defined}
