"""Structural and semantic checks for Fortran suggestions."""

from __future__ import annotations

import re

from repro.analysis.lexical import normalize_whitespace, strip_line_comments

__all__ = ["check_structure", "check_kernel_semantics"]


def _clean(code: str) -> str:
    """Strip comments (keeping directive sentinels) and join continuation lines."""
    code = strip_line_comments(code, "!")
    # Join free-form continuation lines (trailing '&').
    code = re.sub(r"&\s*\n\s*", " ", code)
    return code


# ---------------------------------------------------------------------------
# Structural checks
# ---------------------------------------------------------------------------

def check_structure(code: str) -> list[str]:
    """Block-structure sanity: every ``do``/``if``/``subroutine`` is closed."""
    issues: list[str] = []
    cleaned = _clean(code)
    lowered = cleaned.lower()
    do_opens = len(re.findall(r"^\s*do\s+\w+\s*=", lowered, flags=re.MULTILINE))
    do_closes = len(re.findall(r"^\s*end\s*do\b", lowered, flags=re.MULTILINE))
    if do_opens != do_closes:
        issues.append(f"unbalanced do/end do blocks ({do_opens} vs {do_closes})")
    sub_opens = len(re.findall(r"^\s*subroutine\s+\w+", lowered, flags=re.MULTILINE))
    sub_closes = len(re.findall(r"^\s*end\s*subroutine\b", lowered, flags=re.MULTILINE))
    func_opens = len(re.findall(r"^\s*(?:pure\s+)?function\s+\w+", lowered, flags=re.MULTILINE))
    func_closes = len(re.findall(r"^\s*end\s*function\b", lowered, flags=re.MULTILINE))
    if sub_opens != sub_closes or func_opens != func_closes:
        issues.append("unterminated subroutine/function")
    if sub_opens + func_opens == 0:
        issues.append("no subroutine or function definition found")
    if_opens = len(re.findall(r"\bif\b[^\n]*\bthen\b", lowered))
    if_closes = len(re.findall(r"^\s*end\s*if\b", lowered, flags=re.MULTILINE))
    if if_opens != if_closes:
        issues.append(f"unbalanced if/end if blocks ({if_opens} vs {if_closes})")
    return issues


def _check_loop_bounds(norm: str, kernel: str) -> list[str]:
    """Counted ``do`` loops must start at 1 (2 for the Jacobi interior)."""
    issues: list[str] = []
    expected = 2 if kernel == "jacobi" else 1
    for start in re.findall(r"do \w+ = (\d+) ?,", norm):
        if int(start) != expected:
            issues.append(f"do loop starts at {start}, expected {expected}")
            break
    return issues


# ---------------------------------------------------------------------------
# Kernel-specific semantic patterns
# ---------------------------------------------------------------------------

def _axpy_ok(norm: str) -> bool:
    return bool(
        re.search(r"y\(i\) = a \* x\(i\) \+ y\(i\)", norm)
        or re.search(r"y\(i\) = y\(i\) \+ a \* x\(i\)", norm)
    )


def _gemv_ok(norm: str) -> bool:
    return bool(re.search(r"sum = sum \+ A\(i ?, ?j\) \* x\(j\)", norm, flags=re.IGNORECASE))


def _gemm_ok(norm: str) -> bool:
    return bool(re.search(r"sum = sum \+ A\(i ?, ?l\) \* B\(l ?, ?j\)", norm, flags=re.IGNORECASE))


def _spmv_ok(norm: str) -> bool:
    has_row_loop = bool(re.search(r"do j = row_ptr\(i\) ?, ?row_ptr\(i \+ 1\) - 1", norm))
    has_acc = bool(re.search(r"sum = sum \+ values\(j\) \* x\(col_idx\(j\)\)", norm))
    return has_row_loop and has_acc


def _jacobi_ok(norm: str) -> bool:
    match = re.search(r"u_new\(i ?, ?j ?, ?k\) = \((.*?)\) / 6", norm)
    if not match:
        return False
    expr = match.group(1)
    reads = len(re.findall(r"u\(", expr))
    return reads >= 6 and expr.count("+") >= 5


def _cg_ok(norm: str) -> bool:
    has_matvec = bool(re.search(r"sum = sum \+ A\(i ?, ?j\) \* p\(j\)", norm, flags=re.IGNORECASE))
    residual_dots = len(re.findall(r"rs\w+ = rs\w+ \+ r\(i\) \* r\(i\)", norm))
    has_x_update = bool(re.search(r"x\(i\) = x\(i\) \+ alpha \* p\(i\)", norm))
    has_p_update = bool(re.search(r"p\(i\) = r\(i\) \+ beta \* p\(i\)", norm))
    has_alpha = bool(re.search(r"alpha = rsold / ", norm))
    return sum((has_matvec, residual_dots >= 2, has_x_update, has_p_update, has_alpha)) >= 5


_KERNEL_CHECKS = {
    "axpy": _axpy_ok,
    "gemv": _gemv_ok,
    "gemm": _gemm_ok,
    "spmv": _spmv_ok,
    "jacobi": _jacobi_ok,
    "cg": _cg_ok,
}


def check_kernel_semantics(code: str, kernel: str) -> list[str]:
    """Kernel-specific semantic checks for Fortran code."""
    kernel = kernel.lower()
    if kernel not in _KERNEL_CHECKS:
        raise KeyError(f"no Fortran semantic check for kernel {kernel!r}")
    norm = normalize_whitespace(_clean(code))
    issues: list[str] = []
    issues.extend(_check_loop_bounds(norm, kernel))
    if not _KERNEL_CHECKS[kernel](norm):
        issues.append(f"characteristic {kernel} update expression not found or malformed")
    return issues
