"""Static hazard findings for CUDA-C kernels embedded in suggestions.

Bridges the CUDA-C static analyzer (:mod:`repro.sandbox.cuda_c.static`) into
the analysis layer: :func:`static_findings_for` extracts every ``RawKernel``
/ ``SourceModule`` CUDA source from a Python suggestion, analyzes each
kernel, and returns the findings as plain dicts ready to attach to
:attr:`~repro.analysis.verdict.SuggestionVerdict.static_findings`.

Findings are **informational**: they never feed ``is_correct`` (sandbox
execution remains the correctness oracle); they surface through the ``lint``
CLI subcommand and the optional findings column in the tables layer.

Out-of-bounds verdicts need concrete launch geometry and buffer sizes.  The
sandbox tasks (:mod:`repro.sandbox.tasks`) fix those per kernel family, so a
per-family profile is applied — but only when the suggestion still contains
the template's canonical launch arithmetic: a mutation that rewrites the
launch math would invalidate the profile, and a finding computed from stale
geometry could claim ``SAFE`` for an access the runtime rejects.  Without a
matching profile the race/barrier/uninit classes still resolve symbolically
and out-of-bounds stays ``UNKNOWN``.
"""

from __future__ import annotations

import re

from repro.sandbox.cuda_c.parser import CudaSyntaxError, parse_cuda_source
from repro.sandbox.cuda_c.static import analyze_kernel

__all__ = [
    "static_findings_for",
    "extract_cuda_sources",
    "register_profile",
    "unregister_profile",
]

#: Triple-quoted literal passed to RawKernel(...) / SourceModule(...).
_CUDA_SOURCE_RE = re.compile(
    r"(?:RawKernel|SourceModule)\(\s*[rbu]*(\"\"\"|''')(?P<body>.*?)\1",
    re.DOTALL,
)

#: Per-kernel-family launch profiles, mirroring the geometry and problem
#: sizes :mod:`repro.sandbox.tasks` launches with.  ``require_all`` /
#: ``require_any`` are canonical launch-code fragments that must survive in
#: the suggestion for the profile to be trusted.
_PROFILES: dict[str, dict] = {
    "axpy": {
        "require_all": ["threads = 256"],
        "require_any": ["(n + threads - 1) // threads",
                        "(x.size + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"x": 64, "y": 64},
        "scalar_args": {"n": 64},
    },
    "gemv": {
        "require_all": ["threads = 256"],
        "require_any": ["(m + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"A": 108, "x": 9, "y": 12},
        "scalar_args": {"m": 12, "n": 9},
    },
    "gemm": {
        "require_all": ["threads = (16, 16, 1)",
                        "((n + 15) // 16, (m + 15) // 16)"],
        "require_any": [],
        "grid": (1, 1, 1),
        "block": (16, 16, 1),
        "buffer_sizes": {"A": 48, "B": 42, "C": 56},
        "scalar_args": {"m": 8, "n": 7, "k": 6},
    },
    "spmv": {
        "require_all": ["threads = 256"],
        "require_any": ["(n + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"row_ptr": 17, "col_idx": 64, "values": 64,
                         "x": 16, "y": 16},
        "scalar_args": {"n": 16},
    },
    "jacobi": {
        "require_all": ["threads = (4, 4, 4)",
                        "((n + 3) // 4, (n + 3) // 4, (n + 3) // 4)"],
        "require_any": [],
        "grid": (2, 2, 2),
        "block": (4, 4, 4),
        "buffer_sizes": {"u": 216, "u_new": 216},
        "scalar_args": {"n": 6},
    },
    "cg": {
        "require_all": ["threads = 256"],
        "require_any": ["(n + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"A": 100, "p": 10, "Ap": 10},
        "scalar_args": {"n": 10},
    },
    # -- extension families (repro.extensions) ------------------------------
    "scan": {
        "require_all": ["threads = 256"],
        "require_any": ["(n + threads - 1) // threads",
                        "(x.size + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"x": 64, "out": 64},
        "scalar_args": {"n": 64},
    },
    "histogram": {
        "require_all": ["threads = 256"],
        "require_any": ["(n + threads - 1) // threads",
                        "(bins.size + threads - 1) // threads"],
        "grid": (1, 1, 1),
        "block": (256, 1, 1),
        "buffer_sizes": {"bins": 64, "hist": 8},
        "scalar_args": {"n": 64, "nbins": 8},
    },
}


def register_profile(kernel: str, profile: dict) -> None:
    """Register the launch-geometry profile for an extension kernel family.

    Every kernel family whose suggestions can embed CUDA-C **must** have a
    profile — :func:`static_findings_for` refuses to analyze an unknown
    family rather than silently degrade its out-of-bounds verdicts (and its
    hazard counts in the ``lint`` CLI and findings tables) to nothing.
    """
    required = {"require_all", "require_any", "grid", "block", "buffer_sizes", "scalar_args"}
    missing = required - set(profile)
    if missing:
        raise ValueError(f"profile for {kernel!r} is missing keys: {sorted(missing)}")
    existing = _PROFILES.get(kernel)
    if existing is not None and existing != profile:
        raise ValueError(f"kernel {kernel!r} already has a different geometry profile")
    _PROFILES[kernel] = profile


def unregister_profile(kernel: str) -> None:
    """Remove an extension profile (idempotent)."""
    _PROFILES.pop(kernel, None)


def extract_cuda_sources(code: str) -> list[str]:
    """CUDA-C sources passed to ``RawKernel``/``SourceModule`` in ``code``."""
    return [match.group("body") for match in _CUDA_SOURCE_RE.finditer(code)]


def _profile_for(kernel: str, code: str) -> dict:
    profile = _PROFILES.get(kernel)
    if profile is None:
        # A family without a registered profile would silently lose every
        # geometry-dependent verdict (the lint CLI and findings tables would
        # report zero hazards for it).  Fail loudly instead.
        raise KeyError(
            f"no launch-geometry profile registered for kernel family {kernel!r}; "
            "register one with repro.analysis.hazards.register_profile"
        )
    if not all(fragment in code for fragment in profile["require_all"]):
        return {}
    if profile["require_any"] and not any(
        fragment in code for fragment in profile["require_any"]
    ):
        return {}
    return {
        "grid": profile["grid"],
        "block": profile["block"],
        "buffer_sizes": profile["buffer_sizes"],
        "scalar_args": profile["scalar_args"],
    }


def static_findings_for(code: str, language: str, kernel: str) -> list[dict]:
    """Analyze every embedded CUDA-C kernel in a Python suggestion.

    Returns one dict per (kernel, hazard-class[, buffer]) finding:
    ``{"kernel", "kind", "verdict", "buffer", "detail", "line"}``.
    Non-Python suggestions, suggestions without embedded CUDA, and sources
    the CUDA-C parser rejects yield no findings; an unexpected analysis
    error skips that kernel rather than failing the suggestion's verdict.
    A kernel family with no registered geometry profile raises ``KeyError``
    (see :func:`register_profile`).
    """
    if language != "python":
        return []
    if "RawKernel" not in code and "SourceModule" not in code:
        return []
    findings: list[dict] = []
    profile = _profile_for(kernel, code)
    for source in extract_cuda_sources(code):
        try:
            definitions = parse_cuda_source(source)
        except CudaSyntaxError:
            continue
        for name, definition in definitions.items():
            try:
                report = analyze_kernel(definition, **profile)
            except Exception:  # pragma: no cover - analyzer bug containment
                continue
            for finding in report.findings:
                findings.append({"kernel": name, **finding.to_payload()})
    return findings
