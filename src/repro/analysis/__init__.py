"""Static analysis of code suggestions.

This package implements the machinery the paper's authors applied by eye:
given a raw suggestion for a ``<kernel> <programming model>`` prompt, decide

* whether the suggestion contains code at all,
* which programming model(s) the code actually uses,
* and whether the code is a correct implementation of the kernel.

The model detectors are marker-based with precedence rules (e.g. an
``#pragma omp target`` region is OpenMP *offload*, not plain OpenMP; a
``__global__`` kernel launched with ``hipLaunchKernelGGL`` is HIP, not CUDA).
Correctness for the compiled languages is judged structurally (balanced
blocks, sane loop bounds, no calls to undefined helpers, the kernel's
characteristic update expressions present); Python suggestions are
additionally *executed* against numerical oracles by :mod:`repro.sandbox`.
"""

from __future__ import annotations

from repro.analysis.verdict import SuggestionVerdict
from repro.analysis.detection import detect_models, primary_model
from repro.analysis.store import VerdictStore, default_store_path
from repro.analysis.analyzer import SuggestionAnalyzer, analyze_suggestion

__all__ = [
    "SuggestionVerdict",
    "detect_models",
    "primary_model",
    "SuggestionAnalyzer",
    "analyze_suggestion",
    "VerdictStore",
    "default_store_path",
]
