"""Structural and semantic checks for Julia suggestions."""

from __future__ import annotations

import re

from repro.analysis.lexical import normalize_whitespace, strip_line_comments, strip_string_literals

__all__ = ["check_structure", "check_kernel_semantics"]

_BLOCK_OPENERS = ("function ", "for ", "while ", "if ", "begin", "let ", "struct ", "module ")


def _clean(code: str) -> str:
    return strip_string_literals(strip_line_comments(code, "#"))


# ---------------------------------------------------------------------------
# Structural checks
# ---------------------------------------------------------------------------

def check_structure(code: str) -> list[str]:
    """Every block opener (`function`, `for`, `if`, ...) must have its `end`."""
    issues: list[str] = []
    cleaned = _clean(code)
    opens = 0
    closes = 0
    for raw_line in cleaned.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        # Macro-decorated definitions, e.g. `@kernel function foo!(...)` or
        # namespaced macros such as `Threads.@threads for ...`.
        line_wo_macros = re.sub(r"^((?:\w[\w.]*\.)?@[\w.!]+\s+)+", "", line)
        if line_wo_macros.startswith(_BLOCK_OPENERS):
            opens += 1
        if re.fullmatch(r"end", line) or re.match(r"end\b(?!\w)", line) and not line.startswith("end if"):
            closes += 1
    if opens != closes:
        issues.append(f"unbalanced begin/end blocks ({opens} openers vs {closes} ends)")
    if "function" not in cleaned:
        issues.append("no function definition found")
    if not re.search(r"[\w\]]\s*=", cleaned) and "return" not in cleaned:
        issues.append("no statements found")
    return issues


def _check_thread_index(norm: str) -> list[str]:
    """Every global-index assignment must have the canonical affine form."""
    issues: list[str] = []
    for stmt in re.findall(r"\w+ = [^\n]*?blockIdx\(\)[^\n]*?(?= \w+ =|$| if | for | return )", norm):
        if not re.search(r"\* blockDim\(\)\.(\w) \+ threadIdx\(\)\.\1", stmt):
            issues.append("malformed CUDA.jl thread-index computation")
            break
    for stmt in re.findall(r"\w+ = [^\n]*?workgroupIdx\(\)[^\n]*?(?= \w+ =|$| if | for | return )", norm):
        if not re.search(r"\* workgroupDim\(\)\.(\w) \+ workitemIdx\(\)\.\1", stmt):
            issues.append("malformed AMDGPU.jl work-item index computation")
            break
    return issues


def _check_loop_bounds(norm: str, kernel: str) -> list[str]:
    """Literal range starts must be 1 (2 for the Jacobi interior loops)."""
    issues: list[str] = []
    expected = 2 if kernel == "jacobi" else 1
    for start in re.findall(r"in (\d+) ?:", norm):
        if int(start) != expected:
            issues.append(f"range starts at {start}, expected {expected}")
            break
    if re.search(r"in 0 ?:", norm):
        issues.append("zero-based range in 1-based Julia code")
    return issues


# ---------------------------------------------------------------------------
# Kernel-specific semantic patterns
# ---------------------------------------------------------------------------

def _axpy_ok(norm: str) -> bool:
    return bool(
        re.search(r"y\[i\] = a \* x\[i\] \+ y\[i\]", norm)
        or re.search(r"y\[i\] \+= a \* x\[i\]", norm)
        or re.search(r"y \.= a \.\* x \.\+ y", norm)
        or re.search(r"y \.\+= a \.\* x", norm)
    )


def _gemv_ok(norm: str) -> bool:
    return bool(
        re.search(r"s \+= A\[i ?, ?j\] \* x\[j\]", norm)
        or re.search(r"y = A \* x", norm)
        or re.search(r"mul!\(y ?, ?A ?, ?x\)", norm)
    )


def _gemm_ok(norm: str) -> bool:
    return bool(
        re.search(r"s \+= A\[i ?, ?l\] \* B\[l ?, ?j\]", norm)
        or re.search(r"C = A \* B", norm)
        or re.search(r"mul!\(C ?, ?A ?, ?B\)", norm)
    )


def _spmv_ok(norm: str) -> bool:
    has_row_loop = bool(re.search(r"for j in row_ptr\[i\] ?: ?\(?row_ptr\[i \+ 1\] - 1\)?", norm))
    has_acc = bool(re.search(r"s \+= values\[j\] \* x\[col_idx\[j\]\]", norm))
    return has_row_loop and has_acc


def _jacobi_ok(norm: str) -> bool:
    match = re.search(r"u_new\[i ?, ?j ?, ?k\] = \((.*?)\) / 6", norm)
    if not match:
        return False
    expr = match.group(1)
    reads = len(re.findall(r"u\[", expr))
    return reads >= 6 and expr.count("+") >= 5


def _cg_ok(norm: str) -> bool:
    has_matvec = bool(
        re.search(r"s \+= A\[i ?, ?j\] \* p\[j\]", norm)
        or re.search(r"Ap = A\w* \* p", norm)
    )
    residual_dots = len(re.findall(r"dot\(r ?, ?r\)", norm))
    has_x_update = bool(
        re.search(r"x \.\+= alpha \.\* p", norm) or re.search(r"x\[i\] \+= alpha \* p\[i\]", norm)
    )
    has_p_update = bool(
        re.search(r"p \.= r \.\+ \(rsnew / rsold\) \.\* p", norm)
        or re.search(r"p\[i\] = r\[i\] \+ beta \* p\[i\]", norm)
    )
    has_alpha = bool(re.search(r"alpha = rsold / ", norm))
    return sum((has_matvec, residual_dots >= 2, has_x_update, has_p_update, has_alpha)) >= 5


_KERNEL_CHECKS = {
    "axpy": _axpy_ok,
    "gemv": _gemv_ok,
    "gemm": _gemm_ok,
    "spmv": _spmv_ok,
    "jacobi": _jacobi_ok,
    "cg": _cg_ok,
}


def check_kernel_semantics(code: str, kernel: str) -> list[str]:
    """Kernel-specific semantic checks for Julia code."""
    kernel = kernel.lower()
    if kernel not in _KERNEL_CHECKS:
        raise KeyError(f"no Julia semantic check for kernel {kernel!r}")
    norm = normalize_whitespace(_clean(code))
    issues: list[str] = []
    issues.extend(_check_thread_index(norm))
    issues.extend(_check_loop_bounds(norm, kernel))
    if not _KERNEL_CHECKS[kernel](norm):
        issues.append(f"characteristic {kernel} update expression not found or malformed")
    return issues
