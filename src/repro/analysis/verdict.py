"""Verdict data structures produced by the analyzers.

A :class:`SuggestionVerdict` captures, for a single suggestion, everything
the paper's rubric needs: is it code at all, which programming model does it
use, and is it a correct implementation of the requested kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ANALYSIS_VERSION", "SuggestionVerdict"]

#: Version of the analysis *behavior* (static checks, sandbox oracles,
#: detection rules).  Bump whenever a change alters the verdict any
#: suggestion receives — the persistent verdict store folds this into its
#: entry digests, so stale pre-change verdicts degrade to recompute instead
#: of silently diverging from freshly-computed ones across repo versions.
#:
#: 2: the CUDA-C interpreter gained the vectorized lockstep engine (plus
#:    ternary-expression support and pyCUDA GPUArray/memcpy fidelity fixes);
#:    verdicts produced by interpreter-backed execution are re-derived
#:    rather than served from stores written by the scalar-only interpreter.
#: 3: verdicts carry ``static_findings`` from the CUDA-C static hazard
#:    analyzer (race/OOB/barrier/uninit verdicts per embedded kernel);
#:    pre-3 store entries lack the field and degrade to recompute.
ANALYSIS_VERSION = 3


@dataclass
class SuggestionVerdict:
    """Analysis outcome for one suggestion."""

    #: Whether the suggestion contains anything that parses as code.
    is_code: bool
    #: Programming model uids detected in the suggestion ("cpp.openmp", ...).
    #: Empty when the code uses no recognisable parallel model.
    detected_models: tuple[str, ...] = ()
    #: Whether the suggestion uses the model the prompt requested.
    uses_requested_model: bool = False
    #: Whether the suggestion uses some *other* recognised parallel model.
    uses_other_model: bool = False
    #: Whether the implementation of the kernel is judged numerically /
    #: structurally correct (independently of which model it uses).
    math_correct: bool = False
    #: Problems found during analysis (human-readable).
    issues: list[str] = field(default_factory=list)
    #: How the math judgement was obtained ("static", "executed", "none").
    method: str = "static"
    #: Findings from the CUDA-C static hazard analyzer, one dict per
    #: (kernel, hazard-class) pair: ``{"kernel", "kind", "verdict",
    #: "buffer", "detail", "line"}``.  Informational — never feeds
    #: :attr:`is_correct` (execution remains the correctness oracle).
    static_findings: list[dict] = field(default_factory=list)

    @property
    def is_correct(self) -> bool:
        """The paper's notion of a *correct code*: a code suggestion that is
        numerically correct **and** uses the requested programming model."""
        return self.is_code and self.math_correct and self.uses_requested_model

    def add_issue(self, message: str) -> None:
        self.issues.append(message)

    # -- persistence ----------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable dict carrying every field (inverse of
        :meth:`from_payload`); used by the on-disk verdict store."""
        return {
            "is_code": self.is_code,
            "detected_models": list(self.detected_models),
            "uses_requested_model": self.uses_requested_model,
            "uses_other_model": self.uses_other_model,
            "math_correct": self.math_correct,
            "issues": list(self.issues),
            "method": self.method,
            "static_findings": [dict(f) for f in self.static_findings],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SuggestionVerdict":
        """Re-hydrate a verdict from :meth:`to_payload` output.

        Raises ``KeyError``/``TypeError`` on malformed payloads — callers
        (the verdict store) treat that as a corrupt entry and recompute.
        """
        detected = payload["detected_models"]
        issues = payload["issues"]
        # The key is required: pre-version-3 payloads lack it, and the
        # resulting KeyError makes the verdict store degrade to recompute.
        findings = payload["static_findings"]
        # A bare string would iterate characterwise into a garbled-but-valid
        # verdict; reject it as corrupt instead.
        if not isinstance(detected, (list, tuple)) or not isinstance(issues, (list, tuple)):
            raise TypeError("detected_models and issues must be lists")
        if not isinstance(findings, (list, tuple)) or not all(
            isinstance(f, dict) for f in findings
        ):
            raise TypeError("static_findings must be a list of dicts")
        return cls(
            is_code=bool(payload["is_code"]),
            detected_models=tuple(str(uid) for uid in detected),
            uses_requested_model=bool(payload["uses_requested_model"]),
            uses_other_model=bool(payload["uses_other_model"]),
            math_correct=bool(payload["math_correct"]),
            issues=[str(issue) for issue in issues],
            method=str(payload["method"]),
            static_findings=[dict(f) for f in findings],
        )

    def summary(self) -> str:
        """One-line human-readable summary (used in reports and examples)."""
        if not self.is_code:
            return "no code"
        model = ",".join(self.detected_models) if self.detected_models else "serial"
        status = "correct" if self.is_correct else ("math-ok" if self.math_correct else "incorrect")
        return f"{status} [{model}]" + (f" ({'; '.join(self.issues)})" if self.issues else "")
