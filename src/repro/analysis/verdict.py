"""Verdict data structures produced by the analyzers.

A :class:`SuggestionVerdict` captures, for a single suggestion, everything
the paper's rubric needs: is it code at all, which programming model does it
use, and is it a correct implementation of the requested kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ANALYSIS_VERSION", "SuggestionVerdict"]

#: Version of the analysis *behavior* (static checks, sandbox oracles,
#: detection rules).  Bump whenever a change alters the verdict any
#: suggestion receives — the persistent verdict store folds this into its
#: entry digests, so stale pre-change verdicts degrade to recompute instead
#: of silently diverging from freshly-computed ones across repo versions.
#:
#: 2: the CUDA-C interpreter gained the vectorized lockstep engine (plus
#:    ternary-expression support and pyCUDA GPUArray/memcpy fidelity fixes);
#:    verdicts produced by interpreter-backed execution are re-derived
#:    rather than served from stores written by the scalar-only interpreter.
ANALYSIS_VERSION = 2


@dataclass
class SuggestionVerdict:
    """Analysis outcome for one suggestion."""

    #: Whether the suggestion contains anything that parses as code.
    is_code: bool
    #: Programming model uids detected in the suggestion ("cpp.openmp", ...).
    #: Empty when the code uses no recognisable parallel model.
    detected_models: tuple[str, ...] = ()
    #: Whether the suggestion uses the model the prompt requested.
    uses_requested_model: bool = False
    #: Whether the suggestion uses some *other* recognised parallel model.
    uses_other_model: bool = False
    #: Whether the implementation of the kernel is judged numerically /
    #: structurally correct (independently of which model it uses).
    math_correct: bool = False
    #: Problems found during analysis (human-readable).
    issues: list[str] = field(default_factory=list)
    #: How the math judgement was obtained ("static", "executed", "none").
    method: str = "static"

    @property
    def is_correct(self) -> bool:
        """The paper's notion of a *correct code*: a code suggestion that is
        numerically correct **and** uses the requested programming model."""
        return self.is_code and self.math_correct and self.uses_requested_model

    def add_issue(self, message: str) -> None:
        self.issues.append(message)

    # -- persistence ----------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serialisable dict carrying every field (inverse of
        :meth:`from_payload`); used by the on-disk verdict store."""
        return {
            "is_code": self.is_code,
            "detected_models": list(self.detected_models),
            "uses_requested_model": self.uses_requested_model,
            "uses_other_model": self.uses_other_model,
            "math_correct": self.math_correct,
            "issues": list(self.issues),
            "method": self.method,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SuggestionVerdict":
        """Re-hydrate a verdict from :meth:`to_payload` output.

        Raises ``KeyError``/``TypeError`` on malformed payloads — callers
        (the verdict store) treat that as a corrupt entry and recompute.
        """
        detected = payload["detected_models"]
        issues = payload["issues"]
        # A bare string would iterate characterwise into a garbled-but-valid
        # verdict; reject it as corrupt instead.
        if not isinstance(detected, (list, tuple)) or not isinstance(issues, (list, tuple)):
            raise TypeError("detected_models and issues must be lists")
        return cls(
            is_code=bool(payload["is_code"]),
            detected_models=tuple(str(uid) for uid in detected),
            uses_requested_model=bool(payload["uses_requested_model"]),
            uses_other_model=bool(payload["uses_other_model"]),
            math_correct=bool(payload["math_correct"]),
            issues=[str(issue) for issue in issues],
            method=str(payload["method"]),
        )

    def summary(self) -> str:
        """One-line human-readable summary (used in reports and examples)."""
        if not self.is_code:
            return "no code"
        model = ",".join(self.detected_models) if self.detected_models else "serial"
        status = "correct" if self.is_correct else ("math-ok" if self.math_correct else "incorrect")
        return f"{status} [{model}]" + (f" ({'; '.join(self.issues)})" if self.issues else "")
