"""Verdict data structures produced by the analyzers.

A :class:`SuggestionVerdict` captures, for a single suggestion, everything
the paper's rubric needs: is it code at all, which programming model does it
use, and is it a correct implementation of the requested kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SuggestionVerdict"]


@dataclass
class SuggestionVerdict:
    """Analysis outcome for one suggestion."""

    #: Whether the suggestion contains anything that parses as code.
    is_code: bool
    #: Programming model uids detected in the suggestion ("cpp.openmp", ...).
    #: Empty when the code uses no recognisable parallel model.
    detected_models: tuple[str, ...] = ()
    #: Whether the suggestion uses the model the prompt requested.
    uses_requested_model: bool = False
    #: Whether the suggestion uses some *other* recognised parallel model.
    uses_other_model: bool = False
    #: Whether the implementation of the kernel is judged numerically /
    #: structurally correct (independently of which model it uses).
    math_correct: bool = False
    #: Problems found during analysis (human-readable).
    issues: list[str] = field(default_factory=list)
    #: How the math judgement was obtained ("static", "executed", "none").
    method: str = "static"

    @property
    def is_correct(self) -> bool:
        """The paper's notion of a *correct code*: a code suggestion that is
        numerically correct **and** uses the requested programming model."""
        return self.is_code and self.math_correct and self.uses_requested_model

    def add_issue(self, message: str) -> None:
        self.issues.append(message)

    def summary(self) -> str:
        """One-line human-readable summary (used in reports and examples)."""
        if not self.is_code:
            return "no code"
        model = ",".join(self.detected_models) if self.detected_models else "serial"
        status = "correct" if self.is_correct else ("math-ok" if self.math_correct else "incorrect")
        return f"{status} [{model}]" + (f" ({'; '.join(self.issues)})" if self.issues else "")
