"""Persistent, cross-process verdict store.

A :class:`VerdictStore` is an on-disk cache of
:class:`~repro.analysis.verdict.SuggestionVerdict`s keyed on
``(code, language, kernel, requested model uid)`` — the exact tuple analysis
is pure in (see :mod:`repro.analysis.analyzer`).  It is the durable layer
below the process-wide in-memory verdict memo: in-memory hits stay free,
misses consult the store before paying for analysis (and, for Python,
sandbox execution), and freshly computed verdicts are written back so *other
processes* — process-backend workers, a later CLI invocation, another
machine sharing the directory — never re-analyze a suggestion this process
already judged.

The durable-layer mechanics live in :class:`ContentStore`, which is shared
with the shard-level :class:`~repro.dispatch.store.ResultStore`:

* **Content-hashed entries.**  Each key is digested (SHA-256 over the schema
  version and all key fields) into a file name under a two-level fanout
  directory, so lookups are a single ``open`` and the store scales to
  hundreds of thousands of entries.
* **Versioned schema.**  Entries carry their schema version both in the
  digest and in the payload; bumping the version orphans old entries, which
  degrade to recompute — never to a wrong value.
* **Atomic, durable, race-safe writes.**  Entries are published through the
  shared fsync-before-replace writer (:func:`repro.atomicio.write_atomic_json`);
  two writers racing on one key both write the same deterministic value and
  the last rename wins.  Corrupt or truncated entries (killed writer,
  foreign bytes) are detected on read, dropped, and recomputed.
* **Fail-soft.**  Store I/O errors never propagate into analysis; the worst
  case is always "compute it again".

Example:

>>> import tempfile
>>> from repro.analysis.store import VerdictStore
>>> from repro.analysis.verdict import SuggestionVerdict
>>> tmp = tempfile.TemporaryDirectory()
>>> store = VerdictStore(tmp.name)
>>> key = ("def axpy(a, x, y):\\n    return a * x + y\\n", "python", "axpy", "python.numpy")
>>> store.get(key) is None  # empty store: a miss
True
>>> store.put(key, SuggestionVerdict(is_code=True, math_correct=True, method="executed"))
>>> store.get(key).math_correct  # a later process gets the cached verdict
True
>>> len(store), store.hits, store.misses
(1, 1, 1)
>>> tmp.cleanup()
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.analysis.verdict import ANALYSIS_VERSION, SuggestionVerdict
from repro.atomicio import write_atomic_json

__all__ = [
    "STORE_SCHEMA",
    "ContentStore",
    "StoreKey",
    "VerdictStore",
    "default_store_path",
]

#: Version of the on-disk verdict-entry format.  Bump on any change to the
#: digest inputs or the entry payload; old entries then degrade to recompute.
#: Behavior changes to the analyzers/sandbox are covered separately by
#: :data:`repro.analysis.verdict.ANALYSIS_VERSION`, which is also folded
#: into every entry digest.
STORE_SCHEMA = 1

#: Store key: (code, language, kernel, requested model uid).
StoreKey = tuple[str, str, str, str]


def default_store_path() -> Path:
    """The default on-disk location of the shared verdict store.

    ``$REPRO_VERDICT_STORE`` overrides everything; otherwise the store lives
    under the XDG cache directory (``~/.cache/repro-hpc-codex/verdicts``).
    """
    return _default_cache_path("REPRO_VERDICT_STORE", "verdicts")


def _default_cache_path(env_var: str, subdir: str) -> Path:
    env = os.environ.get(env_var)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / "repro-hpc-codex" / subdir


class ContentStore:
    """Shared core of the on-disk content-addressed stores.

    Owns everything the durable caches have in common — the two-level
    fanout layout, atomic ``os.replace`` publication, corrupt-entry
    dropping, fail-soft writes, hit/miss/write counters and the
    ``stats``/``clear`` maintenance surface.  Subclasses define what a key
    is (:meth:`digest`) and how an entry payload is validated back into a
    value; the corruption/versioning guarantees then hold for every store
    built on this core (:class:`VerdictStore` here,
    :class:`repro.dispatch.store.ResultStore` for whole shard payloads).

    ``hits``/``misses``/``writes`` count this instance's traffic only; the
    directory itself is shared state.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Digests known to exist on disk (avoids re-stat/re-write churn).
        self._known: set[str] = set()
        #: Guards the counters/_known so thread-backend runs count exactly.
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({str(self.path)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    def _schema(self) -> int:
        """The live schema version (read per call so test monkeypatching of
        the module-level constant takes effect)."""
        raise NotImplementedError

    def _entry_path(self, digest: str) -> Path:
        return self.path / digest[:2] / f"{digest}.json"

    # -- lookups --------------------------------------------------------------
    def _load_entry(self, digest: str, validate) -> object | None:
        """Read and validate one entry; every failure degrades to a miss.

        ``validate`` receives the parsed JSON payload and returns the cached
        value, raising ``ValueError``/``KeyError``/``TypeError`` when the
        payload does not belong to the requested key.  Truncated, unparsable,
        schema-mismatched or key-mismatched entries are removed (best-effort)
        and reported as misses, so every failure mode degrades to recompute.
        """
        path = self._entry_path(digest)
        try:
            value = validate(json.loads(path.read_text("utf-8")))
        except OSError:
            # Absent entry, or a transient read failure (EIO, stale NFS
            # handle, ...): a plain miss.  Never unlink here — on a shared
            # store a transient error must not destroy a valid entry for
            # every other reader.
            with self._lock:
                self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # The bytes were read but do not parse/validate: the entry
            # itself is corrupt (truncated writer, old schema, foreign
            # file) — drop it so the next writer replaces it.
            with self._lock:
                self.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        with self._lock:
            self.hits += 1
            self._known.add(digest)
        return value

    def _store_entry(self, digest: str, payload: dict) -> None:
        """Persist one entry (idempotent; failures are swallowed).

        Publication goes through the shared fsync-before-replace writer
        (:func:`repro.atomicio.write_atomic_json`): readers never observe
        partial writes, racing writers cannot interleave, and a power loss
        cannot leave an empty-but-renamed entry behind.
        """
        with self._lock:
            if digest in self._known:
                return
        path = self._entry_path(digest)
        if path.exists():
            with self._lock:
                self._known.add(digest)
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            write_atomic_json(path, payload)
        except OSError:
            # Full disk / permissions / store directory gone: the caller
            # must never fail because the cache could not be written.
            return
        with self._lock:
            self._known.add(digest)
            self.writes += 1

    # -- maintenance ----------------------------------------------------------
    def _entry_files(self):
        return self.path.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def stats(self) -> dict:
        """Directory-wide entry count/size plus this instance's traffic."""
        entries = 0
        size = 0
        for entry in self._entry_files():
            entries += 1
            try:
                size += entry.stat().st_size
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return {
            "path": str(self.path),
            "schema": self._schema(),
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def clear(self) -> int:
        """Remove every entry (and leftover temp file); returns entries removed."""
        removed = 0
        for entry in self._entry_files():
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        for leftover in self.path.glob("??/.*.tmp"):
            try:
                leftover.unlink()
            except OSError:  # pragma: no cover - concurrent clear
                pass
        with self._lock:
            self._known.clear()
        return removed


class VerdictStore(ContentStore):
    """On-disk verdict cache, safe for concurrent readers and writers.

    Parameters
    ----------
    path:
        Directory holding the entries (created if missing).  Any number of
        processes may share it.
    """

    @classmethod
    def coerce(cls, value: "VerdictStore | str | Path | bool | None") -> "VerdictStore | None":
        """Normalise every accepted store argument to a store (or ``None``).

        ``None``/``False`` → no store; ``True`` → a store at
        :func:`default_store_path`; a path → a store there; a store → itself.
        The single construction point for Session/runner/analyzer wiring.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls(default_store_path())
        if isinstance(value, cls):
            return value
        return cls(value)

    def _schema(self) -> int:
        return STORE_SCHEMA

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def digest(key: StoreKey) -> str:
        """Content digest of a key (schema- and analysis-versioned, so both
        format changes and analyzer behavior changes orphan old entries)."""
        code, language, kernel, model = key
        payload = json.dumps([STORE_SCHEMA, ANALYSIS_VERSION, code, language, kernel, model])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- lookups --------------------------------------------------------------
    def get(self, key: StoreKey) -> SuggestionVerdict | None:
        """The stored verdict for ``key``, or ``None`` (miss / corrupt entry)."""

        def validate(payload: dict) -> SuggestionVerdict:
            if payload["schema"] != STORE_SCHEMA:
                raise ValueError(f"schema {payload['schema']} != {STORE_SCHEMA}")
            recorded = (payload["language"], payload["kernel"], payload["model"])
            if recorded != key[1:] or payload["code_sha"] != self._code_sha(key[0]):
                raise ValueError("entry does not match the requested key")
            return SuggestionVerdict.from_payload(payload["verdict"])

        return self._load_entry(self.digest(key), validate)

    def put(self, key: StoreKey, verdict: SuggestionVerdict) -> None:
        """Persist a verdict (idempotent, atomic, fail-soft)."""
        payload = {
            "schema": STORE_SCHEMA,
            "language": key[1],
            "kernel": key[2],
            "model": key[3],
            "code_sha": self._code_sha(key[0]),
            "verdict": verdict.to_payload(),
        }
        self._store_entry(self.digest(key), payload)

    @staticmethod
    def _code_sha(code: str) -> str:
        return hashlib.sha256(code.encode("utf-8")).hexdigest()
