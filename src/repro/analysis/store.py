"""Persistent, cross-process verdict store.

A :class:`VerdictStore` is an on-disk cache of
:class:`~repro.analysis.verdict.SuggestionVerdict`s keyed on
``(code, language, kernel, requested model uid)`` — the exact tuple analysis
is pure in (see :mod:`repro.analysis.analyzer`).  It is the durable layer
below the process-wide in-memory verdict memo: in-memory hits stay free,
misses consult the store before paying for analysis (and, for Python,
sandbox execution), and freshly computed verdicts are written back so *other
processes* — process-backend workers, a later CLI invocation, another
machine sharing the directory — never re-analyze a suggestion this process
already judged.

The durable-layer mechanics live in :class:`ContentStore`, which is shared
with the shard-level :class:`~repro.dispatch.store.ResultStore`:

* **Content-hashed entries.**  Each key is digested (SHA-256 over the schema
  version and all key fields) into a content address, so lookups are a
  single ``open`` and the store scales to hundreds of thousands of entries.
* **Pluggable backends.**  Where the bytes live is a
  :mod:`repro.cache.backends` concern: a local fanout directory by default,
  tiered with a shared HTTP remote (the ``cache-server`` subcommand) when
  ``remote=`` or ``$REPRO_CACHE_URL`` names one — a fleet of workers then
  shares every verdict any of them computed, read through a local cache.
* **Versioned schema.**  Entries carry their schema version both in the
  digest and in the payload; bumping the version orphans old entries, which
  degrade to recompute — never to a wrong value.
* **Atomic, durable, race-safe writes.**  Entries are published through the
  shared fsync-before-replace writer (:func:`repro.atomicio.write_atomic_bytes`);
  two writers racing on one key both write the same deterministic value and
  the last rename wins.  Corrupt or truncated entries (killed writer,
  foreign bytes) are detected on read, dropped, and recomputed.
* **Fail-soft.**  Store I/O errors and unreachable remotes never propagate
  into analysis; the worst case is always "compute it again".
* **Operational surface.**  :meth:`ContentStore.stats` reports entry
  counts, this instance's hit/miss/write traffic and per-backend latency
  counters; :meth:`ContentStore.compact` evicts entries from a stale
  analysis generation or past an age bound; ``$REPRO_CACHE_READONLY``
  (or ``readonly=True``) serves lookups but never writes — the CI knob.

Example:

>>> import tempfile
>>> from repro.analysis.store import VerdictStore
>>> from repro.analysis.verdict import SuggestionVerdict
>>> tmp = tempfile.TemporaryDirectory()
>>> store = VerdictStore(tmp.name)
>>> key = ("def axpy(a, x, y):\\n    return a * x + y\\n", "python", "axpy", "python.numpy")
>>> store.get(key) is None  # empty store: a miss
True
>>> store.put(key, SuggestionVerdict(is_code=True, math_correct=True, method="executed"))
>>> store.get(key).math_correct  # a later process gets the cached verdict
True
>>> len(store), store.hits, store.misses
(1, 1, 1)
>>> tmp.cleanup()
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path

from repro.analysis.verdict import ANALYSIS_VERSION, SuggestionVerdict
from repro.cache.backends import (
    LocalBackend,
    RemoteBackend,
    TieredBackend,
    env_flag,
    remote_url_from_env,
)
from repro.cache.backends import ENV_READONLY as _ENV_READONLY

__all__ = [
    "STORE_SCHEMA",
    "ContentStore",
    "StoreKey",
    "VerdictStore",
    "default_store_path",
]

#: Version of the on-disk verdict-entry format.  Bump on any change to the
#: digest inputs or the entry payload; old entries then degrade to recompute.
#: Behavior changes to the analyzers/sandbox are covered separately by
#: :data:`repro.analysis.verdict.ANALYSIS_VERSION`, which is also folded
#: into every entry digest.
STORE_SCHEMA = 1

#: Store key: (code, language, kernel, requested model uid).
StoreKey = tuple[str, str, str, str]


def default_store_path() -> Path:
    """The default on-disk location of the shared verdict store.

    ``$REPRO_VERDICT_STORE`` overrides everything; otherwise the store lives
    under the XDG cache directory (``~/.cache/repro-hpc-codex/verdicts``).
    """
    return _default_cache_path("REPRO_VERDICT_STORE", "verdicts")


def _default_cache_path(env_var: str, subdir: str) -> Path:
    env = os.environ.get(env_var)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / "repro-hpc-codex" / subdir


class ContentStore:
    """Shared core of the on-disk content-addressed stores.

    Owns everything the durable caches have in common — content-addressed
    keying, corrupt-entry dropping, fail-soft writes, hit/miss/write
    counters and the ``stats``/``clear``/``compact`` maintenance surface —
    while delegating byte storage to a :mod:`repro.cache.backends` backend:
    a :class:`~repro.cache.backends.LocalBackend` fanout directory at
    ``path``, tiered with a shared :class:`~repro.cache.backends.RemoteBackend`
    when ``remote`` (or ``$REPRO_CACHE_URL``) names a ``cache-server``.
    Subclasses define what a key is (:meth:`digest`), how an entry payload
    is validated back into a value, and their remote namespace; the
    corruption/versioning guarantees then hold for every store built on
    this core (:class:`VerdictStore` here,
    :class:`repro.dispatch.store.ResultStore` for whole shard payloads).

    ``readonly`` (default: ``$REPRO_CACHE_READONLY``) serves lookups but
    swallows every write — no new entries, no read-through fills — and makes
    ``clear``/``compact`` refuse; CI jobs use it to guarantee a published
    cache is consumed verbatim.

    ``hits``/``misses``/``writes`` count this instance's traffic only; the
    backend storage itself is shared state.
    """

    #: Namespace separating this store's digests from other stores sharing
    #: one ``cache-server`` (subclasses override).
    remote_namespace = "cache"

    def __init__(
        self,
        path: str | Path,
        *,
        remote: "RemoteBackend | str | None" = None,
        readonly: bool | None = None,
    ) -> None:
        self.readonly = env_flag(_ENV_READONLY) if readonly is None else bool(readonly)
        self.path = Path(path)
        local = LocalBackend(self.path, create=not self.readonly)
        if remote is None:
            remote = remote_url_from_env()
        if isinstance(remote, str):
            remote = RemoteBackend(remote, namespace=self.remote_namespace)
        self.remote = remote
        self.backend = (
            local if remote is None else TieredBackend(local, remote, readonly=self.readonly)
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Digests known to exist in the backend (avoids re-stat/re-write
        #: churn).  A *positive* cache only, and only trustworthy until the
        #: next miss: any miss drops the digest again so an external
        #: ``clear()``/compaction cannot permanently suppress re-persistence.
        self._known: set[str] = set()
        #: Guards the counters/_known so thread-backend runs count exactly.
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            hits, misses = self.hits, self.misses
        return f"{type(self).__name__}({str(self.path)!r}, hits={hits}, misses={misses})"

    def _schema(self) -> int:
        """The live schema version (read per call so test monkeypatching of
        the module-level constant takes effect)."""
        raise NotImplementedError

    def _analysis_version(self) -> int:
        """The live analysis generation, as tagged into entry payloads;
        :meth:`compact` evicts entries from any other generation."""
        raise NotImplementedError

    def _entry_path(self, digest: str) -> Path:
        return self.path / digest[:2] / f"{digest}.json"

    # -- lookups --------------------------------------------------------------
    def _load_entry(self, digest: str, validate) -> object | None:
        """Read and validate one entry; every failure degrades to a miss.

        ``validate`` receives the parsed JSON payload and returns the cached
        value, raising ``ValueError``/``KeyError``/``TypeError`` when the
        payload does not belong to the requested key.  Truncated, unparsable,
        schema-mismatched or key-mismatched entries are dropped (best-effort,
        local layer only) and reported as misses, so every failure mode —
        including an unreachable remote — degrades to recompute.

        Every miss also forgets the digest in ``_known``: the entry may have
        been cleared or evicted externally since this instance last saw it,
        and a stale positive would make :meth:`_store_entry` skip the
        re-persist forever.
        """
        data = self.backend.get(digest)
        if data is None:
            # Absent entry, transient read failure (EIO, stale NFS handle),
            # or the remote is down: a plain miss.  The entry is never
            # destroyed on a read error — on a shared store a transient
            # failure must not delete a valid entry for every other reader.
            with self._lock:
                self.misses += 1
                self._known.discard(digest)
            return None
        try:
            value = validate(json.loads(data))
        except (ValueError, KeyError, TypeError):
            # The bytes were read but do not parse/validate: the entry
            # itself is corrupt (truncated writer, old schema, foreign
            # file) — drop the local copy so the next writer replaces it.
            with self._lock:
                self.misses += 1
                self._known.discard(digest)
            self.backend.discard(digest)
            return None
        with self._lock:
            self.hits += 1
            self._known.add(digest)
        return value

    def _store_entry(self, digest: str, payload: dict) -> None:
        """Persist one entry (idempotent; failures are swallowed).

        The payload is serialised once to canonical bytes
        (``sort_keys=True`` — stable for byte-identity checks) and published
        by the backend through the shared fsync-before-replace writer:
        readers never observe partial writes, racing writers cannot
        interleave, and a power loss cannot leave an empty-but-renamed
        entry behind.  In read-only mode this is a no-op.
        """
        if self.readonly:
            return
        with self._lock:
            if digest in self._known:
                return
        if self.backend.exists(digest):
            with self._lock:
                self._known.add(digest)
            return
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        if not self.backend.put(digest, data):
            # Full disk / permissions / remote down: the caller must never
            # fail because the cache could not be written.
            return
        with self._lock:
            self._known.add(digest)
            self.writes += 1

    # -- maintenance ----------------------------------------------------------
    def _entry_files(self):
        return self.path.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def stats(self) -> dict:
        """Local entry count/size, this instance's traffic, backend counters."""
        entries = 0
        size = 0
        for entry in self._entry_files():
            entries += 1
            try:
                size += entry.stat().st_size
            except OSError:  # pragma: no cover - concurrent clear
                pass
        with self._lock:
            hits, misses, writes = self.hits, self.misses, self.writes
        return {
            "path": str(self.path),
            "schema": self._schema(),
            "readonly": self.readonly,
            "entries": entries,
            "bytes": size,
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "backend": self.backend.counters(),
        }

    def clear(self) -> int:
        """Remove every local entry (and leftover temp file); returns entries
        removed.  Local layer only — a shared remote is never mass-deleted
        from a client.  Refuses in read-only mode."""
        if self.readonly:
            raise RuntimeError("store is read-only (REPRO_CACHE_READONLY)")
        removed = 0
        for entry in self._entry_files():
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        for leftover in self.path.glob("??/.*.tmp"):
            try:
                leftover.unlink()
            except OSError:  # pragma: no cover - concurrent clear
                pass
        with self._lock:
            self._known.clear()
        return removed

    def compact(self, *, max_age: float | None = None, now: float | None = None) -> dict:
        """Evict local entries that can no longer (or should no longer) hit.

        Two eviction rules, both safe by the degradation contract (an entry
        removed here at worst recomputes):

        * **Stale analysis generation** — the payload's ``"analysis"`` tag
          differs from the live :meth:`_analysis_version` (entries written
          before the tag existed count as stale).  Such entries are already
          unreachable through :meth:`get` because the digest folds the
          version in; compaction reclaims the dead bytes.  Unparsable
          entries are evicted under the same rule.
        * **Age** — with ``max_age`` (seconds), entries whose mtime is older
          than ``now - max_age``.

        Local layer only; a shared remote is compacted by running this
        against its served directory.  Refuses in read-only mode.  Returns
        ``{"removed_stale", "removed_aged", "kept"}``.
        """
        if self.readonly:
            raise RuntimeError("store is read-only (REPRO_CACHE_READONLY)")
        if now is None:
            now = time.time()
        live = self._analysis_version()
        removed_stale = 0
        removed_aged = 0
        kept = 0
        for entry in self._entry_files():
            stale = False
            try:
                payload = json.loads(entry.read_bytes())
                stale = payload.get("analysis") != live
            except (OSError, ValueError, TypeError, AttributeError):
                stale = True
            aged = False
            if not stale and max_age is not None:
                try:
                    aged = entry.stat().st_mtime < now - max_age
                except OSError:  # pragma: no cover - concurrent clear
                    continue
            if not (stale or aged):
                kept += 1
                continue
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent clear
                continue
            removed_stale += stale
            removed_aged += not stale
        # Everything this instance "knew" may just have been evicted; the
        # next put re-checks the backend (and re-persists on a miss).
        with self._lock:
            self._known.clear()
        return {"removed_stale": removed_stale, "removed_aged": removed_aged, "kept": kept}


class VerdictStore(ContentStore):
    """On-disk verdict cache, safe for concurrent readers and writers.

    Parameters
    ----------
    path:
        Directory holding the local entries (created if missing).  Any
        number of processes may share it.
    remote:
        Optional shared ``cache-server`` URL (or a prebuilt
        :class:`~repro.cache.backends.RemoteBackend`); defaults to
        ``$REPRO_CACHE_URL`` so subprocess workers rebuilt from a bare path
        inherit the remote tier.
    readonly:
        Serve lookups but never write; defaults to ``$REPRO_CACHE_READONLY``.
    """

    remote_namespace = "verdicts"

    @classmethod
    def coerce(cls, value: "VerdictStore | str | Path | bool | None") -> "VerdictStore | None":
        """Normalise every accepted store argument to a store (or ``None``).

        ``None``/``False`` → no store; ``True`` → a store at
        :func:`default_store_path`; an ``http(s)://`` URL → a store at the
        default path tiered with that remote; a path → a store there; a
        store → itself.  The single construction point for
        Session/runner/analyzer wiring.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls(default_store_path())
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.startswith(("http://", "https://")):
            return cls(default_store_path(), remote=value)
        return cls(value)

    def _schema(self) -> int:
        return STORE_SCHEMA

    def _analysis_version(self) -> int:
        return ANALYSIS_VERSION

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def digest(key: StoreKey) -> str:
        """Content digest of a key (schema- and analysis-versioned, so both
        format changes and analyzer behavior changes orphan old entries)."""
        code, language, kernel, model = key
        payload = json.dumps([STORE_SCHEMA, ANALYSIS_VERSION, code, language, kernel, model])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- lookups --------------------------------------------------------------
    def get(self, key: StoreKey) -> SuggestionVerdict | None:
        """The stored verdict for ``key``, or ``None`` (miss / corrupt entry)."""

        def validate(payload: dict) -> SuggestionVerdict:
            if payload["schema"] != STORE_SCHEMA:
                raise ValueError(f"schema {payload['schema']} != {STORE_SCHEMA}")
            recorded = (payload["language"], payload["kernel"], payload["model"])
            if recorded != key[1:] or payload["code_sha"] != self._code_sha(key[0]):
                raise ValueError("entry does not match the requested key")
            return SuggestionVerdict.from_payload(payload["verdict"])

        return self._load_entry(self.digest(key), validate)

    def put(self, key: StoreKey, verdict: SuggestionVerdict) -> None:
        """Persist a verdict (idempotent, atomic, fail-soft)."""
        payload = {
            "schema": STORE_SCHEMA,
            "analysis": ANALYSIS_VERSION,
            "language": key[1],
            "kernel": key[2],
            "model": key[3],
            "code_sha": self._code_sha(key[0]),
            "verdict": verdict.to_payload(),
        }
        self._store_entry(self.digest(key), payload)

    @staticmethod
    def _code_sha(code: str) -> str:
        return hashlib.sha256(code.encode("utf-8")).hexdigest()
