"""Language-agnostic lexical helpers used by the per-language analyzers."""

from __future__ import annotations

import re

__all__ = [
    "strip_c_comments",
    "strip_line_comments",
    "strip_string_literals",
    "balanced_delimiters",
    "extract_call_names",
    "extract_identifiers",
    "normalize_whitespace",
]


def strip_c_comments(code: str) -> str:
    """Remove ``//`` line comments and ``/* */`` block comments.

    ``#pragma`` lines are preserved (they are directives, not comments).
    """
    code = re.sub(r"/\*.*?\*/", " ", code, flags=re.DOTALL)
    code = re.sub(r"//[^\n]*", "", code)
    return code


def strip_line_comments(code: str, prefix: str) -> str:
    """Remove line comments starting with ``prefix``.

    Directive sentinels (``!$omp`` / ``!$acc`` in Fortran) are preserved even
    though they share the comment prefix.
    """
    out_lines = []
    for line in code.splitlines():
        stripped = line.lstrip()
        if stripped.startswith(prefix):
            if prefix == "!" and stripped.lower().startswith(("!$omp", "!$acc")):
                out_lines.append(line)
                continue
            # Whole-line comment: drop it.
            continue
        # In-line trailing comments: cut at the prefix unless it is a
        # directive sentinel or inside a string literal (handled coarsely by
        # only cutting when the prefix is preceded by whitespace).
        idx = line.find(f" {prefix}")
        if idx >= 0 and not (prefix == "!" and "!$" in line):
            line = line[:idx]
        out_lines.append(line)
    return "\n".join(out_lines)


def strip_string_literals(code: str) -> str:
    """Replace the contents of string literals with spaces."""
    def _blank(match: re.Match[str]) -> str:
        return '"' + " " * (len(match.group(0)) - 2) + '"'

    code = re.sub(r'"""(?:[^"\\]|\\.|"(?!""))*"""', lambda m: '"' + " " * (len(m.group(0)) - 2) + '"',
                  code, flags=re.DOTALL)
    code = re.sub(r'"(?:[^"\\\n]|\\.)*"', _blank, code)
    code = re.sub(r"'(?:[^'\\\n]|\\.)*'", _blank, code)
    return code


def balanced_delimiters(code: str, pairs: tuple[tuple[str, str], ...] = (("{", "}"), ("(", ")"), ("[", "]"))) -> bool:
    """Whether every opening delimiter has a matching closing one.

    Works on comment- and string-stripped code; a truncated completion almost
    always fails this check.
    """
    counts = {open_: 0 for open_, _ in pairs}
    closers = {close: open_ for open_, close in pairs}
    openers = {open_ for open_, _ in pairs}
    for ch in code:
        if ch in openers:
            counts[ch] += 1
        elif ch in closers:
            counts[closers[ch]] -= 1
            if counts[closers[ch]] < 0:
                return False
    return all(v == 0 for v in counts.values())


_CALL_RE = re.compile(r"([A-Za-z_][\w:.]*)\s*\(")


def extract_call_names(code: str) -> set[str]:
    """Names that appear in call position (``name(...)``).

    Namespaced and attribute calls keep their qualification
    (``Kokkos::parallel_for``, ``np.dot``), which lets the whitelists match on
    either the full name or its root.
    """
    return set(_CALL_RE.findall(code))


_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def extract_identifiers(code: str) -> set[str]:
    """All bare identifiers appearing in the code."""
    return set(_IDENT_RE.findall(code))


def normalize_whitespace(code: str) -> str:
    """Collapse every whitespace run to a single space (for regex matching)."""
    return re.sub(r"\s+", " ", code).strip()
