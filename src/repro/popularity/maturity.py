"""Programming-model maturity and language affinity priors.

These constants quantify, on a 0-1 scale, how much *relevant public example
code* a code-generation model trained on public repositories would have seen
for each programming model — the causal mechanism the paper uses to explain
its results ("This could be due to the maturity of these programming models
compared to others and their availability in public code").

The numbers are set from publicly known facts about each model — age,
breadth of adoption, whether it ships with compilers by default, the size of
its tutorial/benchmark ecosystem — and are deliberately *not* tuned against
the paper's result tables (DESIGN.md §6).  Rough rationale per entry is given
inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.languages import get_language
from repro.models.programming_models import PROGRAMMING_MODELS
from repro.popularity.githut import relative_code_volume
from repro.popularity.tiobe import tiobe_rating

__all__ = [
    "MODEL_MATURITY",
    "SCIENTIFIC_AFFINITY",
    "MaturityModel",
    "model_maturity",
    "language_popularity",
    "scientific_affinity",
]

#: Availability of public, correct example code for each programming model.
#: 1.0 would mean "as ubiquitous as serial C loops"; 0.0 means essentially no
#: public examples existed at the study date (April 2023).
MODEL_MATURITY: dict[str, float] = {
    # C++ --------------------------------------------------------------
    "cpp.openmp": 0.90,            # 25 years old, ships with every compiler, countless tutorials
    "cpp.openmp_offload": 0.55,    # target offload is much younger (4.0/4.5) and less exercised
    "cpp.openacc": 0.45,           # directive model mostly used on NVIDIA HPC systems
    "cpp.kokkos": 0.40,            # large DOE adoption but a comparatively small public corpus
    "cpp.cuda": 0.85,              # enormous amount of public kernels since 2007
    "cpp.hip": 0.30,               # young ROCm ecosystem, far fewer public examples
    "cpp.thrust": 0.35,            # niche STL-like library, mostly transform/reduce examples
    "cpp.sycl": 0.40,              # growing but recent (oneAPI-era) corpus
    # Fortran ----------------------------------------------------------
    "fortran.openmp": 0.80,        # legacy HPC codes are full of OpenMP-parallel loops
    "fortran.openmp_offload": 0.45,
    "fortran.openacc": 0.50,       # OpenACC originated in the Fortran HPC community
    # Python -----------------------------------------------------------
    "python.numpy": 0.95,          # the de-facto standard for scientific Python
    "python.numba": 0.45,          # sizeable but much smaller corpus; GPU support in flux
    "python.cupy": 0.60,           # popular drop-in GPU numpy; raw-kernel examples in the docs
    "python.pycuda": 0.55,         # long-standing, SourceModule examples widely copied
    # Julia ------------------------------------------------------------
    "julia.threads": 0.70,         # part of Base, used in most multi-threaded Julia code
    "julia.cuda": 0.65,            # CUDA.jl is the flagship, well-documented GPU stack
    "julia.amdgpu": 0.25,          # young package, little public example code
    "julia.kernelabstractions": 0.30,  # young portability layer, few public kernels
}

#: How strongly a language's public code is concentrated on scientific /
#: numerical topics.  Domain-targeted languages (Fortran, Julia) have less
#: code overall, but what exists is far more likely to contain numerical
#: kernels — the "targeted quality over quantity" effect the paper highlights
#: for Fortran and Julia.
SCIENTIFIC_AFFINITY: dict[str, float] = {
    "cpp": 0.55,
    "fortran": 0.95,
    "python": 0.70,
    "julia": 0.90,
}


def model_maturity(model_uid: str) -> float:
    """Maturity prior for a programming model (KeyError for unknown models)."""
    key = model_uid.strip().lower()
    if key not in MODEL_MATURITY:
        raise KeyError(f"no maturity prior for programming model {key!r}")
    return MODEL_MATURITY[key]


def language_popularity(language: str) -> float:
    """Blend of GitHut code volume and TIOBE visibility, normalised to [0, 1]."""
    lang = get_language(language).name
    volume = relative_code_volume(lang)
    max_rating = max(tiobe_rating(name) for name in ("python", "cpp", "fortran", "julia"))
    visibility = tiobe_rating(lang) / max_rating if max_rating > 0 else 0.0
    return 0.5 * volume + 0.5 * visibility


def scientific_affinity(language: str) -> float:
    """Scientific-affinity prior for a language."""
    lang = get_language(language).name
    return SCIENTIFIC_AFFINITY[lang]


@dataclass(frozen=True)
class MaturityModel:
    """Combined prior: effective public-example availability for a prompt.

    ``effective_availability`` combines three ingredients on a 0-1 scale:

    * the programming model maturity (the dominant term),
    * the host language's overall code volume/visibility, and
    * the language's scientific affinity, which compensates domain-targeted
      languages for their small overall volume.

    The weights below express that the model-specific corpus matters most,
    and that for numerical kernels the relevant corpus of a small scientific
    language can rival that of a huge general-purpose one (the paper's
    Fortran/Julia observation).
    """

    model_weight: float = 0.62
    popularity_weight: float = 0.14
    affinity_weight: float = 0.24
    overrides: dict[str, float] = field(default_factory=dict)

    def effective_availability(self, language: str, model_uid: str) -> float:
        """Effective availability of relevant public examples, in [0, 1]."""
        if model_uid in self.overrides:
            return max(0.0, min(1.0, self.overrides[model_uid]))
        total = (
            self.model_weight * model_maturity(model_uid)
            + self.popularity_weight * language_popularity(language)
            + self.affinity_weight * scientific_affinity(language)
        )
        weight_sum = self.model_weight + self.popularity_weight + self.affinity_weight
        return max(0.0, min(1.0, total / weight_sum))

    def ranking(self, language: str) -> list[tuple[str, float]]:
        """Models of a language ranked by effective availability (descending)."""
        lang = get_language(language).name
        scored = [
            (uid, self.effective_availability(lang, uid))
            for uid, model in PROGRAMMING_MODELS.items()
            if model.language == lang
        ]
        return sorted(scored, key=lambda item: item[1], reverse=True)
