"""Popularity and maturity priors.

The paper hypothesises (Section 3) that suggestion quality "correlates with
the expected availability of correct programming models and public code
examples" and grounds that expectation in two public popularity measures: the
GitHut per-language repository statistics and the TIOBE index.  Neither is
reachable offline, so this package ships frozen synthetic snapshots whose
*orderings* match the public 2023 data, plus a per-programming-model maturity
model.  Together they form the prior that drives the simulated suggestion
engine.

Nothing in this package is fitted to the paper's result tables — see
DESIGN.md §6 for the calibration policy.
"""

from __future__ import annotations

from repro.popularity.githut import GITHUT_2023_Q1, github_share, GithutEntry
from repro.popularity.tiobe import TIOBE_2023_APRIL, tiobe_rating, TiobeEntry
from repro.popularity.maturity import (
    MaturityModel,
    language_popularity,
    model_maturity,
    scientific_affinity,
)

__all__ = [
    "GITHUT_2023_Q1",
    "GithutEntry",
    "github_share",
    "TIOBE_2023_APRIL",
    "TiobeEntry",
    "tiobe_rating",
    "MaturityModel",
    "language_popularity",
    "model_maturity",
    "scientific_affinity",
]
