"""Synthetic GitHut-style language share snapshot (2023 Q1 ordering).

GitHut reports the share of GitHub activity (pull requests / pushes) per
language.  The real site is a live web resource; here we freeze a synthetic
snapshot whose ordering reflects the widely reported early-2023 situation:
Python and C++ are mainstream (several percent of all activity each), while
Fortran and Julia are niche scientific languages well below one percent.

Only the *relative ordering and rough magnitude* of these shares matter for
the reproduction — they feed the prior of the simulated suggestion engine,
mirroring Copilot's statement that suggestion quality "may depend on the
volume and diversity of training data for that language".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GithutEntry", "GITHUT_2023_Q1", "github_share", "relative_code_volume"]


@dataclass(frozen=True)
class GithutEntry:
    """Share of GitHub activity for one language."""

    language: str
    #: Fraction of pull requests, in [0, 1].
    pull_request_share: float
    #: Approximate number of public repositories (millions), a coarse proxy
    #: for the amount of training code available.
    repositories_millions: float


#: Frozen synthetic snapshot (ordering matches public GitHut 2023 Q1 data).
GITHUT_2023_Q1: dict[str, GithutEntry] = {
    "python": GithutEntry("python", pull_request_share=0.17, repositories_millions=2.4),
    "cpp": GithutEntry("cpp", pull_request_share=0.072, repositories_millions=1.1),
    "fortran": GithutEntry("fortran", pull_request_share=0.0021, repositories_millions=0.045),
    "julia": GithutEntry("julia", pull_request_share=0.0016, repositories_millions=0.028),
}


def github_share(language: str) -> float:
    """Pull-request share for a language (0 when unknown)."""
    entry = GITHUT_2023_Q1.get(language.strip().lower())
    return entry.pull_request_share if entry else 0.0


def relative_code_volume(language: str) -> float:
    """Repository volume normalised to the most popular evaluated language."""
    entry = GITHUT_2023_Q1.get(language.strip().lower())
    if entry is None:
        return 0.0
    max_repos = max(e.repositories_millions for e in GITHUT_2023_Q1.values())
    return entry.repositories_millions / max_repos
