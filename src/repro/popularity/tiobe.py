"""Synthetic TIOBE-style index snapshot (April 2023 ordering).

The TIOBE index ranks languages by search-engine visibility.  The snapshot
below freezes the April-2023 ordering for the four evaluated languages:
Python (#1 overall), C++ (#3-4), Fortran (re-entered the top 20 around 2021
thanks to HPC), Julia (low twenties / thirties).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TiobeEntry", "TIOBE_2023_APRIL", "tiobe_rating", "tiobe_rank"]


@dataclass(frozen=True)
class TiobeEntry:
    """TIOBE-style rank and rating for one language."""

    language: str
    rank: int
    #: Rating in percent (share of search-engine hits).
    rating_percent: float


#: Frozen synthetic snapshot (ordering matches the public April 2023 index).
TIOBE_2023_APRIL: dict[str, TiobeEntry] = {
    "python": TiobeEntry("python", rank=1, rating_percent=14.5),
    "cpp": TiobeEntry("cpp", rank=4, rating_percent=12.9),
    "fortran": TiobeEntry("fortran", rank=20, rating_percent=0.79),
    "julia": TiobeEntry("julia", rank=29, rating_percent=0.36),
}


def tiobe_rating(language: str) -> float:
    """TIOBE rating in percent (0 when unknown)."""
    entry = TIOBE_2023_APRIL.get(language.strip().lower())
    return entry.rating_percent if entry else 0.0


def tiobe_rank(language: str) -> int:
    """TIOBE rank (a large sentinel when unknown)."""
    entry = TIOBE_2023_APRIL.get(language.strip().lower())
    return entry.rank if entry else 999
