"""The Copilot-like completion API.

:class:`SimulatedCodex` is the object the evaluation harness talks to.  Its
``complete`` method takes a :class:`~repro.codex.prompt.Prompt` and returns a
:class:`CompletionResult` holding up to ten raw suggestion texts — the same
artefact the paper's authors collected from the Copilot suggestion panel.

Determinism: every prompt derives its own random stream from the engine seed
and the prompt's cell identifier, so single cells can be re-evaluated in
isolation and the full grid is reproducible regardless of evaluation order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.codex.prompt import Prompt
from repro.codex.sampler import SuggestionSampler
from repro.corpus.snippets import CodeSnippet
from repro.corpus.store import CorpusStore

__all__ = ["CompletionResult", "SimulatedCodex"]


@dataclass(frozen=True)
class CompletionResult:
    """The suggestions returned for one prompt."""

    prompt: Prompt
    #: Raw suggestion texts, in the order they were "displayed".
    suggestions: tuple[str, ...]
    #: The competence score the engine assigned to the prompt (diagnostic).
    competence: float

    def __len__(self) -> int:
        return len(self.suggestions)

    def __iter__(self):
        return iter(self.suggestions)


@dataclass
class SimulatedCodex:
    """Corpus-retrieval + stochastic-sampling stand-in for OpenAI Codex."""

    config: CodexConfig = field(default_factory=CodexConfig)
    seed: int = DEFAULT_SEED
    corpus: CorpusStore | None = None

    def __post_init__(self) -> None:
        self._sampler = SuggestionSampler(config=self.config, corpus=self.corpus)
        self.corpus = self._sampler.corpus

    # -- public API -------------------------------------------------------------
    def complete(self, prompt: Prompt) -> CompletionResult:
        """Return up to ten suggestions for ``prompt`` (deterministic per seed)."""
        rng = self._rng_for(prompt)
        snippets = self._sampler.sample(prompt, rng)
        return CompletionResult(
            prompt=prompt,
            suggestions=tuple(snippet.code for snippet in snippets),
            competence=self.config.competence(prompt),
        )

    def complete_snippets(self, prompt: Prompt) -> list[CodeSnippet]:
        """Like :meth:`complete` but returning the labelled snippets.

        Only tests and diagnostics should use this; the evaluation pipeline
        works from the raw texts to avoid any label leakage.
        """
        rng = self._rng_for(prompt)
        return self._sampler.sample(prompt, rng)

    # -- helpers ------------------------------------------------------------------
    def _rng_for(self, prompt: Prompt) -> np.random.Generator:
        digest = hashlib.sha256(prompt.cell_id.encode("utf-8")).digest()
        cell_entropy = int.from_bytes(digest[:8], "little")
        return np.random.default_rng([self.seed, cell_entropy])
