"""The Copilot-like completion API.

:class:`SimulatedCodex` is the object the evaluation harness talks to.  Its
``complete`` method takes a :class:`~repro.codex.prompt.Prompt` and returns a
:class:`CompletionResult` holding up to ten raw suggestion texts — the same
artefact the paper's authors collected from the Copilot suggestion panel.

Determinism contract (the *per-cell seeding contract*): every prompt owns an
independent random stream derived via :func:`cell_seed_sequence` from the
engine seed and the cell key ``(language, model, kernel, postfix)``.  No
sequential engine-level RNG state exists, so

* a single cell re-evaluated in isolation reproduces exactly the value it has
  inside a full-grid run, and
* the full grid is byte-identical regardless of evaluation order or of how
  cells are partitioned across threads/processes.

That contract is what makes the parallel backends in
:mod:`repro.core.runner` safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.codex.prompt import Prompt
from repro.codex.sampler import SuggestionSampler
from repro.corpus.snippets import CodeSnippet
from repro.corpus.store import CorpusStore

__all__ = ["CompletionResult", "SimulatedCodex", "cell_seed_sequence"]


def cell_seed_sequence(
    seed: int, *, language: str, model: str, kernel: str, postfix: str
) -> np.random.SeedSequence:
    """The :class:`numpy.random.SeedSequence` owning one grid cell's stream.

    The experiment seed is extended with a 64-bit key word hashed from the
    cell coordinates — the same mechanism ``SeedSequence.spawn`` uses, but
    with a *content-derived* spawn key instead of a sequential counter, so
    the stream depends only on ``(seed, language, model, kernel, postfix)``
    and never on how many cells were evaluated before this one.

    ``model`` uids are ``"<language>.<short>"`` and the postfix keyword is a
    per-language constant, so the textual cell key below encodes the full
    coordinate tuple injectively.
    """
    if not model.startswith(f"{language}."):
        raise ValueError(f"model uid {model!r} does not belong to language {language!r}")
    cell_key = f"{model}:{kernel}{'+kw' if postfix else ''}"
    digest = hashlib.sha256(cell_key.encode("utf-8")).digest()
    return np.random.SeedSequence([seed, int.from_bytes(digest[:8], "little")])


@dataclass(frozen=True)
class CompletionResult:
    """The suggestions returned for one prompt."""

    prompt: Prompt
    #: Raw suggestion texts, in the order they were "displayed".
    suggestions: tuple[str, ...]
    #: The competence score the engine assigned to the prompt (diagnostic).
    competence: float

    def __len__(self) -> int:
        return len(self.suggestions)

    def __iter__(self):
        return iter(self.suggestions)


@dataclass
class SimulatedCodex:
    """Corpus-retrieval + stochastic-sampling stand-in for OpenAI Codex."""

    config: CodexConfig = field(default_factory=CodexConfig)
    seed: int = DEFAULT_SEED
    corpus: CorpusStore | None = None

    def __post_init__(self) -> None:
        self._sampler = SuggestionSampler(config=self.config, corpus=self.corpus)
        self.corpus = self._sampler.corpus

    # -- public API -------------------------------------------------------------
    def complete(self, prompt: Prompt) -> CompletionResult:
        """Return up to ten suggestions for ``prompt`` (deterministic per seed)."""
        rng = self._rng_for(prompt)
        snippets = self._sampler.sample(prompt, rng)
        return CompletionResult(
            prompt=prompt,
            suggestions=tuple(snippet.code for snippet in snippets),
            competence=self.config.competence(prompt),
        )

    def complete_snippets(self, prompt: Prompt) -> list[CodeSnippet]:
        """Like :meth:`complete` but returning the labelled snippets.

        Only tests and diagnostics should use this; the evaluation pipeline
        works from the raw texts to avoid any label leakage.
        """
        rng = self._rng_for(prompt)
        return self._sampler.sample(prompt, rng)

    # -- helpers ------------------------------------------------------------------
    def _rng_for(self, prompt: Prompt) -> np.random.Generator:
        sequence = cell_seed_sequence(
            self.seed,
            language=prompt.language.name,
            model=prompt.model_uid,
            kernel=prompt.kernel,
            postfix=prompt.postfix,
        )
        return np.random.default_rng(sequence)
