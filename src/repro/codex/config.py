"""SimCodex configuration: the competence model and sampling parameters.

Two kinds of parameters live here and they have different epistemic status
(see DESIGN.md §6):

* The **availability priors** (programming-model maturity, language
  popularity, scientific affinity) come from :mod:`repro.popularity` and are
  fixed from public knowledge, independent of the paper's result tables.
* The **prompt-interaction factors** (how much an under-specified prompt
  hurts each language, the keyword-vocabulary mismatch for CUDA-style kernel
  languages, the complexity discount per kernel class) encode the paper's
  *qualitative* observations in Section 4 — keywords matter a lot for Fortran
  and Python, a little for C++, not at all for Julia; `function` is the wrong
  word for the CUDA community; more complex kernels are generated worse.
  The numeric values are round numbers chosen once, not fitted to the tables.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.codex.prompt import Prompt
from repro.kernels.base import KernelComplexity
from repro.kernels.registry import get_kernel
from repro.popularity.maturity import MaturityModel

__all__ = ["KnowledgeState", "CodexConfig", "DEFAULT_SEED"]

#: Default experiment seed: the first day of the paper's data-collection window.
DEFAULT_SEED = 20230414


class KnowledgeState(enum.Enum):
    """Latent per-prompt knowledge state of the simulated model."""

    #: The model has thoroughly absorbed this (kernel, model) pattern: every
    #: suggestion is a correct implementation in the requested model.
    COMPETENT = "competent"
    #: The model knows the requested model but fumbles the kernel: one (or a
    #: few) correct suggestions among incorrect ones, all in the requested model.
    FUZZY = "fuzzy"
    #: The model mixes up programming models: a correct suggestion exists but
    #: suggestions from other models pollute the list.
    CONFUSED = "confused"
    #: The model has nothing useful: no correct suggestion at all.
    IGNORANT = "ignorant"


@dataclass(frozen=True)
class CodexConfig:
    """All tunable parameters of the simulated suggestion engine."""

    #: Availability prior combining model maturity, language popularity and
    #: scientific affinity.
    maturity: MaturityModel = field(default_factory=MaturityModel)

    #: Multiplicative discount per kernel complexity class — the paper's
    #: "the more complex the kernel, the fewer quality results" effect.
    complexity_discount: dict[KernelComplexity, float] = field(
        default_factory=lambda: {
            KernelComplexity.TRIVIAL: 1.00,
            KernelComplexity.SIMPLE: 0.78,
            KernelComplexity.MODERATE: 0.72,
            KernelComplexity.IRREGULAR: 0.55,
            KernelComplexity.STENCIL: 0.50,
            KernelComplexity.MULTIKERNEL: 0.32,
        }
    )

    #: Prompt clarity without the language's code keyword.  Fortran and
    #: Python prompts are nearly useless without ``subroutine`` / ``def``;
    #: C++ loses a little; Julia is insensitive (and has no keyword variant).
    bare_prompt_factor: dict[str, float] = field(
        default_factory=lambda: {"cpp": 0.88, "fortran": 0.30, "python": 0.28, "julia": 0.97}
    )
    #: For the TRIVIAL kernel (AXPY) the bare prompt is still usually enough —
    #: the paper's "AXPY OpenMP without subroutine" exception.
    bare_prompt_factor_trivial: dict[str, float] = field(
        default_factory=lambda: {"cpp": 0.95, "fortran": 0.85, "python": 0.45, "julia": 0.97}
    )
    #: Keyword-vocabulary mismatch: appending ``function`` to a CUDA/HIP
    #: prompt moves it away from that community's vocabulary ("kernel",
    #: "__global__") and lowers quality for the non-trivial kernels.
    kernel_language_keyword_penalty: float = 0.65

    #: Knowledge-state weighting parameters (see :meth:`state_weights`).
    competent_threshold: float = 0.45
    competent_gain: float = 3.0
    fuzzy_center: float = 0.55
    fuzzy_width: float = 0.25
    confused_center: float = 0.35
    confused_width: float = 0.22
    ignorant_threshold: float = 0.75
    ignorant_gain: float = 2.2

    #: Sharpening temperature of the state draw: probabilities are
    #: proportional to ``weight ** (1 / temperature)``.  Values below 1 make
    #: the draw concentrate on the modal state, reducing draw-to-draw
    #: variance of the single-observation protocol without changing the
    #: underlying competence ordering.
    state_temperature: float = 0.6

    #: Maximum number of suggestions per prompt (the Copilot panel shows 10).
    max_suggestions: int = 10

    # -- identity -------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable digest of every tunable parameter (including the maturity
        prior), used to key result caches and shard manifests: two configs
        with equal parameters fingerprint identically even when they are
        distinct instances.  Recomputed on every call — the dataclass is
        frozen but its dict-valued fields are not, so memoizing here would
        hand a mutated config its pre-mutation digest."""

        def encode(value):
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                return {f.name: encode(getattr(value, f.name)) for f in dataclasses.fields(value)}
            if isinstance(value, dict):
                return sorted((str(k), encode(v)) for k, v in value.items())
            if isinstance(value, (list, tuple)):
                return [encode(v) for v in value]
            if isinstance(value, enum.Enum):
                return str(value)
            return value

        payload = json.dumps(encode(self), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- competence -----------------------------------------------------------
    def availability(self, prompt: Prompt) -> float:
        """Effective public-example availability for the prompt's model."""
        return self.maturity.effective_availability(prompt.language.name, prompt.model_uid)

    def prompt_clarity(self, prompt: Prompt) -> float:
        """How well the prompt text pins down what is being asked for."""
        lang = prompt.language.name
        complexity = get_kernel(prompt.kernel).spec.complexity
        if not prompt.uses_keyword:
            table = (
                self.bare_prompt_factor_trivial
                if complexity is KernelComplexity.TRIVIAL
                else self.bare_prompt_factor
            )
            return table[lang]
        # Keyword present: full clarity, except that `function` is the wrong
        # vocabulary for the CUDA/HIP kernel-language communities.
        model = prompt.model
        if "kernel-language" in model.tags and complexity is not KernelComplexity.TRIVIAL:
            return self.kernel_language_keyword_penalty
        return 1.0

    def complexity_factor(self, kernel: str) -> float:
        return self.complexity_discount[get_kernel(kernel).spec.complexity]

    def competence(self, prompt: Prompt) -> float:
        """Overall competence of the simulated model for this prompt, in [0, 1]."""
        value = (
            self.availability(prompt)
            * self.complexity_factor(prompt.kernel)
            * self.prompt_clarity(prompt)
        )
        return max(0.0, min(1.0, value))

    # -- knowledge-state distribution ------------------------------------------
    def state_weights(self, competence: float) -> dict[KnowledgeState, float]:
        """Unnormalised weights of the latent knowledge states."""
        c = max(0.0, min(1.0, competence))
        w_competent = max(0.0, c - self.competent_threshold) ** 1.3 * self.competent_gain
        w_fuzzy = 0.9 * math.exp(-(((c - self.fuzzy_center) / self.fuzzy_width) ** 2))
        w_confused = 0.8 * math.exp(-(((c - self.confused_center) / self.confused_width) ** 2))
        w_ignorant = max(0.0, self.ignorant_threshold - c) ** 1.1 * self.ignorant_gain
        return {
            KnowledgeState.COMPETENT: w_competent,
            KnowledgeState.FUZZY: w_fuzzy,
            KnowledgeState.CONFUSED: w_confused,
            KnowledgeState.IGNORANT: w_ignorant,
        }

    def state_probabilities(self, competence: float) -> dict[KnowledgeState, float]:
        """Normalised (temperature-sharpened) probabilities of the states."""
        weights = self.state_weights(competence)
        exponent = 1.0 / max(self.state_temperature, 1e-6)
        sharpened = {state: w ** exponent for state, w in weights.items()}
        total = sum(sharpened.values())
        if total <= 0:  # pragma: no cover - defensive; weights are never all zero
            return {state: 1.0 / len(sharpened) for state in sharpened}
        return {state: w / total for state, w in sharpened.items()}

    def expected_score(self, prompt: Prompt) -> float:
        """Analytic expectation of the proficiency score, used by ablations.

        Assumes each knowledge state maps to its nominal rubric level
        (0.75 / 0.5 / 0.25 / 0) — the sampled pipeline adds noise around this.
        """
        probs = self.state_probabilities(self.competence(prompt))
        return (
            0.75 * probs[KnowledgeState.COMPETENT]
            + 0.50 * probs[KnowledgeState.FUZZY]
            + 0.25 * probs[KnowledgeState.CONFUSED]
            + 0.00 * probs[KnowledgeState.IGNORANT]
        )
