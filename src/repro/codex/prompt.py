"""Prompt model: the ``<kernel> <programming model> (<postfix>)`` pattern.

The paper's prompts are a comment line in a file whose extension tells the
editor (and therefore the model) the host language, optionally followed by a
language "code keyword" (``function``, ``subroutine``, ``def``).  This module
captures that structure and renders the exact textual prompt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.registry import get_kernel
from repro.models.grid import ExperimentCell
from repro.models.languages import Language, get_language
from repro.models.programming_models import ProgrammingModel, get_model

__all__ = ["Prompt"]


@dataclass(frozen=True)
class Prompt:
    """A single Copilot-style prompt."""

    #: Kernel canonical name ("axpy", ...).
    kernel: str
    #: Programming model uid ("cpp.openmp", ...).
    model_uid: str
    #: Optional post-fix keyword ("function", "subroutine", "def", or "").
    postfix: str = ""

    # -- derived views -------------------------------------------------------
    @property
    def model(self) -> ProgrammingModel:
        return get_model(self.model_uid)

    @property
    def language(self) -> Language:
        return get_language(self.model.language)

    @property
    def kernel_display(self) -> str:
        return get_kernel(self.kernel).spec.display_name

    @property
    def filename(self) -> str:
        """File the prompt is typed into; its extension is part of the context."""
        return self.language.prompt_filename(self.kernel)

    @property
    def query(self) -> str:
        """The bare ``<kernel> <programming model> (<postfix>)`` query string."""
        parts = [self.kernel_display, self.model.prompt_phrase]
        if self.postfix:
            parts.append(self.postfix)
        return " ".join(parts)

    @property
    def text(self) -> str:
        """The prompt as it appears in the editor: a comment line."""
        return self.language.comment(f"Prompt: {self.query}")

    @property
    def uses_keyword(self) -> bool:
        return bool(self.postfix)

    @property
    def cell_id(self) -> str:
        suffix = "+kw" if self.postfix else ""
        return f"{self.model_uid}:{self.kernel}{suffix}"

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_cell(cls, cell: ExperimentCell) -> "Prompt":
        """Build the prompt for one experiment-grid cell."""
        return cls(kernel=cell.kernel, model_uid=cell.model, postfix=cell.postfix)

    def describe(self) -> str:
        return f"{self.filename}: {self.text}"
