"""SimCodex — the simulated Copilot/OpenAI-Codex suggestion engine.

The real study prompts the GitHub Copilot plugin and collects its first ten
suggestions.  Offline we replace the closed model with an explicit generative
mechanism built on the paper's own causal story: suggestion quality tracks
(1) the availability of relevant public example code for the requested
programming model and language, (2) the complexity of the kernel, and (3)
how well the prompt matches the vocabulary of the model's community (the
post-fix keyword effect).

Pipeline per prompt:

1. :class:`~repro.codex.config.CodexConfig` turns the prompt into a
   *competence* score from the popularity/maturity priors.
2. :class:`~repro.codex.sampler.SuggestionSampler` draws a latent knowledge
   state (competent / fuzzy / confused / ignorant) and composes up to ten
   suggestions from the corpus: correct templates, mutated variants,
   other-model templates and non-code answers.
3. :class:`~repro.codex.engine.SimulatedCodex` exposes the Copilot-like
   ``complete(prompt)`` API used by the evaluation harness.

The downstream evaluation (static analysis, sandbox execution, proficiency
rubric) never looks at the sampler's internal labels — it judges the raw
suggestion text exactly as the paper's authors judged raw Copilot output.
"""

from __future__ import annotations

from repro.codex.config import CodexConfig, KnowledgeState
from repro.codex.prompt import Prompt
from repro.codex.sampler import SuggestionSampler
from repro.codex.engine import SimulatedCodex, CompletionResult, cell_seed_sequence

__all__ = [
    "CodexConfig",
    "KnowledgeState",
    "Prompt",
    "SuggestionSampler",
    "SimulatedCodex",
    "CompletionResult",
    "cell_seed_sequence",
]
