"""Suggestion sampler: composes the ≤10 suggestions for a prompt.

Given the prompt's latent knowledge state (drawn from the competence model in
:class:`~repro.codex.config.CodexConfig`), the sampler assembles a list of
:class:`~repro.corpus.snippets.CodeSnippet` suggestions from the corpus:

* *competent* — every suggestion is the correct idiomatic implementation in
  the requested model (Copilot's near-duplicate completions of the same
  pattern);
* *fuzzy* — one or two correct suggestions among incorrect variants, all in
  the requested model;
* *confused* — a correct suggestion exists, but implementations in *other*
  programming models (the paper's "OpenACC suggestions in an OpenMP prompt")
  and broken variants pollute the list;
* *ignorant* — no correct suggestion at all: broken variants, other models,
  comment-only answers, or nothing.

The sampler's internal labels are *not* visible to the evaluation pipeline —
the analyzers re-derive everything from the suggestion text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codex.config import CodexConfig, KnowledgeState
from repro.codex.prompt import Prompt
from repro.corpus.mutations import MUTATION_OPERATORS, apply_mutation
from repro.corpus.snippets import CodeSnippet, SnippetOrigin
from repro.corpus.store import CorpusStore, default_corpus
from repro.models.programming_models import STOCK_MODEL_UIDS
from repro.popularity.maturity import model_maturity

__all__ = ["SuggestionSampler"]

#: Mutations that keep the suggestion in the requested programming model.
_SAME_MODEL_MUTATIONS = ("wrong_operator", "off_by_one", "undefined_helper", "truncate")
#: Mutations that remove the parallel construct entirely.
_SERIAL_MUTATIONS = ("drop_parallelism",)
#: Mutations that only apply to Python snippets with embedded CUDA-C kernels.
#: Kept out of _SAME_MODEL_MUTATIONS so non-CUDA cells draw the exact same
#: random stream as before the operator existed.
_CUDA_MUTATIONS = ("race_injection",)
#: Mutations targeting the parallel-correctness failure modes of the scan /
#: histogram families (wrong reduction order, lost atomic update, halo
#: off-by-one).  Gated on the prompt's kernel so every stock cell draws the
#: exact same random stream as before these operators existed.
_PARALLEL_MUTATIONS = ("reduction_order", "drop_atomic", "bounds_off_by_one")
_PARALLEL_KERNELS = ("scan", "histogram")


@dataclass
class SuggestionSampler:
    """Stochastic composer of suggestion lists."""

    config: CodexConfig = field(default_factory=CodexConfig)
    corpus: CorpusStore | None = None

    def __post_init__(self) -> None:
        if self.corpus is None:
            self.corpus = default_corpus()

    # -- public API ------------------------------------------------------------
    def sample(self, prompt: Prompt, rng: np.random.Generator) -> list[CodeSnippet]:
        """Draw the suggestion list for ``prompt``."""
        competence = self.config.competence(prompt)
        state = self._draw_state(competence, rng)
        return self.sample_for_state(prompt, state, rng)

    def sample_for_state(
        self, prompt: Prompt, state: KnowledgeState, rng: np.random.Generator
    ) -> list[CodeSnippet]:
        """Compose suggestions for an explicit knowledge state (used by tests
        and ablations as well as by :meth:`sample`)."""
        if state is KnowledgeState.COMPETENT:
            return self._compose_competent(prompt, rng)
        if state is KnowledgeState.FUZZY:
            return self._compose_fuzzy(prompt, rng)
        if state is KnowledgeState.CONFUSED:
            return self._compose_confused(prompt, rng)
        return self._compose_ignorant(prompt, rng)

    # -- state draw --------------------------------------------------------------
    def _draw_state(self, competence: float, rng: np.random.Generator) -> KnowledgeState:
        probs = self.config.state_probabilities(competence)
        states = list(probs.keys())
        p = np.array([probs[s] for s in states], dtype=np.float64)
        p = p / p.sum()
        return states[int(rng.choice(len(states), p=p))]

    # -- building blocks -----------------------------------------------------------
    def _template(self, prompt: Prompt) -> CodeSnippet | None:
        return self.corpus.template(prompt.language.name, prompt.model_uid, prompt.kernel)

    def _correct_suggestion(self, prompt: Prompt) -> CodeSnippet | None:
        return self._template(prompt)

    def _broken_same_model(self, prompt: Prompt, rng: np.random.Generator) -> CodeSnippet | None:
        """An incorrect suggestion that still targets the requested model
        (or its serial skeleton)."""
        template = self._template(prompt)
        if template is None:
            return None
        names = list(_SAME_MODEL_MUTATIONS + _SERIAL_MUTATIONS)
        if prompt.kernel in _PARALLEL_KERNELS:
            names.extend(_PARALLEL_MUTATIONS)
        if template.language == "python" and (
            "RawKernel" in template.code or "SourceModule" in template.code
        ):
            names.extend(_CUDA_MUTATIONS)
        weights = np.array([MUTATION_OPERATORS[n].weight for n in names], dtype=np.float64)
        weights /= weights.sum()
        order = rng.permutation(len(names))
        # Try operators in a weighted random order until one applies.
        ranked = sorted(order, key=lambda idx: -weights[idx] * rng.random())
        for idx in ranked:
            mutated = apply_mutation(template, names[idx])
            if mutated is not None:
                return mutated
        return None

    def _other_model_suggestion(self, prompt: Prompt, rng: np.random.Generator,
                                *, corrupt_probability: float = 0.3) -> CodeSnippet | None:
        """A suggestion written in a different programming model of the same
        language, weighted towards the mature models whose code dominates the
        public corpus."""
        candidates = self.corpus.other_model_snippets(
            prompt.language.name, prompt.model_uid, prompt.kernel, correct_only=True
        )
        templates = [c for c in candidates if c.origin is SnippetOrigin.TEMPLATE]
        if prompt.model_uid in STOCK_MODEL_UIDS:
            # Confusion suggestions for stock-model prompts come only from
            # other stock models: registering an extension model (e.g.
            # python.kokkos) must not perturb a stock cell's random stream.
            templates = [c for c in templates if c.label_model in STOCK_MODEL_UIDS]
        if not templates:
            return None
        weights = np.array([model_maturity(c.label_model) for c in templates], dtype=np.float64)
        weights = weights / weights.sum()
        chosen = templates[int(rng.choice(len(templates), p=weights))]
        if rng.random() < corrupt_probability:
            for name in ("wrong_operator", "off_by_one", "truncate"):
                mutated = apply_mutation(chosen, name)
                if mutated is not None:
                    return mutated
        return chosen

    def _non_code(self, prompt: Prompt) -> CodeSnippet:
        template = self._template(prompt)
        if template is not None:
            non_code = apply_mutation(template, "comment_only")
            if non_code is not None:
                return non_code
        prefix = prompt.language.comment_prefix
        return CodeSnippet(
            code=f"{prefix} {prompt.query}\n",
            language=prompt.language.name,
            kernel=prompt.kernel,
            label_model="none",
            label_correct=False,
            origin=SnippetOrigin.NON_CODE,
        )

    # -- per-state composition ---------------------------------------------------------
    def _compose_competent(self, prompt: Prompt, rng: np.random.Generator) -> list[CodeSnippet]:
        correct = self._correct_suggestion(prompt)
        if correct is None:
            return self._compose_ignorant(prompt, rng)
        low = min(2, self.config.max_suggestions)
        count = int(rng.integers(low, self.config.max_suggestions + 1))
        return [correct] * count

    def _compose_fuzzy(self, prompt: Prompt, rng: np.random.Generator) -> list[CodeSnippet]:
        correct = self._correct_suggestion(prompt)
        if correct is None:
            return self._compose_ignorant(prompt, rng)
        low = min(4, self.config.max_suggestions)
        count = int(rng.integers(low, self.config.max_suggestions + 1))
        n_correct = max(1, int(rng.integers(1, 3)))
        suggestions: list[CodeSnippet] = [correct] * n_correct
        while len(suggestions) < count:
            broken = self._broken_same_model(prompt, rng)
            suggestions.append(broken if broken is not None else self._non_code(prompt))
        rng.shuffle(suggestions)
        # n_correct is drawn independently of the budget, so cap the list for
        # tiny budgets (count < 2); a no-op whenever count >= n_correct.
        return suggestions[:count]

    def _compose_confused(self, prompt: Prompt, rng: np.random.Generator) -> list[CodeSnippet]:
        correct = self._correct_suggestion(prompt)
        if correct is None:
            return self._compose_ignorant(prompt, rng)
        low = min(4, self.config.max_suggestions)
        count = int(rng.integers(low, self.config.max_suggestions + 1))
        suggestions: list[CodeSnippet] = [correct]
        n_other = max(1, int(rng.integers(1, max(2, count // 2))))
        for _ in range(n_other):
            other = self._other_model_suggestion(prompt, rng)
            if other is not None:
                suggestions.append(other)
        while len(suggestions) < count:
            roll = rng.random()
            if roll < 0.55:
                broken = self._broken_same_model(prompt, rng)
                suggestions.append(broken if broken is not None else self._non_code(prompt))
            elif roll < 0.8:
                other = self._other_model_suggestion(prompt, rng)
                suggestions.append(other if other is not None else self._non_code(prompt))
            else:
                suggestions.append(self._non_code(prompt))
        rng.shuffle(suggestions)
        return suggestions[:count]

    def _compose_ignorant(self, prompt: Prompt, rng: np.random.Generator) -> list[CodeSnippet]:
        # With some probability the model offers nothing at all.
        if rng.random() < 0.25:
            return []
        count = int(rng.integers(1, self.config.max_suggestions + 1))
        suggestions: list[CodeSnippet] = []
        while len(suggestions) < count:
            roll = rng.random()
            if roll < 0.45:
                broken = self._broken_same_model(prompt, rng)
                suggestions.append(broken if broken is not None else self._non_code(prompt))
            elif roll < 0.75:
                other = self._other_model_suggestion(prompt, rng, corrupt_probability=0.6)
                suggestions.append(other if other is not None else self._non_code(prompt))
            else:
                suggestions.append(self._non_code(prompt))
        return suggestions
