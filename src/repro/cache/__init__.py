"""Pluggable storage backends for the content-addressed stores.

``repro.cache.backends`` holds the backend implementations (local
directory, shared HTTP remote, tiered read-through) consumed by
:class:`repro.analysis.store.ContentStore`; ``repro.cache.server`` is the
matching stdlib cache server behind the ``cache-server`` CLI subcommand.
"""

from repro.cache.backends import (
    ENV_READONLY,
    ENV_REMOTE_URL,
    LocalBackend,
    RemoteBackend,
    TieredBackend,
    env_flag,
    remote_url_from_env,
)

__all__ = [
    "ENV_READONLY",
    "ENV_REMOTE_URL",
    "LocalBackend",
    "RemoteBackend",
    "TieredBackend",
    "env_flag",
    "remote_url_from_env",
]
