"""The shared remote cache server (``cache-server`` CLI subcommand).

A small stdlib HTTP server holding content-addressed JSON entries for any
number of :class:`~repro.cache.backends.RemoteBackend` clients — the
durable tier a fleet of ``dispatch-worker`` hosts, CLI invocations and
``serve`` processes share so each verdict/shard payload is computed once
per *fleet* instead of once per machine.

Wire surface (all under ``/v1/``; conventions follow ``repro.service``:
``--port 0`` reports the bound port, a scrape-able ``serving cache on``
line, graceful ``KeyboardInterrupt`` exit):

==========================  =================================================
``GET /v1/<ns>/<digest>``   entry bytes (``application/json``) or 404
``HEAD /v1/<ns>/<digest>``  existence probe
``PUT /v1/<ns>/<digest>``   publish an entry (body must parse as JSON;
                            atomic fsync-before-replace write) → 204
``DELETE /v1/<ns>/<digest>`` drop an entry → 204 (404 when absent)
``GET /v1/stats``           per-namespace entry counts/bytes + request
                            counters, as JSON
==========================  =================================================

``<ns>`` is a short lowercase namespace (``verdicts``, ``results``) and
``<digest>`` a 64-hex-char content digest; anything else is a 400.  The
server never interprets payloads beyond checking that a ``PUT`` body is
JSON — keying, schema versioning and validation live in the client stores,
so a stale or corrupt served entry degrades to recompute client-side,
never to a wrong verdict.

On disk each namespace is exactly a :class:`LocalBackend` layout
(``<root>/<ns>/<digest[:2]>/<digest>.json``), so ``cache stats|clear|
compact`` pointed at ``<root>/<ns>`` administer the served store directly.

``--readonly`` refuses ``PUT``/``DELETE`` with 403 — a published cache CI
may read but must not grow.
"""

from __future__ import annotations

import argparse
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.atomicio import write_atomic_bytes

__all__ = ["CacheServer", "MAX_ENTRY_BYTES", "main"]

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")
_NAMESPACE_RE = re.compile(r"^[a-z][a-z0-9_-]{0,31}$")

#: Upper bound on one entry's size; a request past it is refused with 413.
#: Generous against the largest shard payloads, small against abuse.
MAX_ENTRY_BYTES = 64 * 1024 * 1024


class CacheServer:
    """Threaded HTTP cache server over one root directory.

    ``port=0`` binds a free port (``.port`` reports it).  ``start()`` runs
    the accept loop on a daemon thread (tests, benchmarks);
    ``serve_forever()`` runs it in the calling thread (the CLI).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        readonly: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.readonly = bool(readonly)
        self._counter_lock = threading.Lock()
        self.counters = {"get_hits": 0, "get_misses": 0, "puts": 0, "deletes": 0, "rejected": 0}
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # pragma: no cover - silence
                pass

            def do_GET(self):
                server._handle(self, "GET")

            def do_HEAD(self):
                server._handle(self, "HEAD")

            def do_PUT(self):
                server._handle(self, "PUT")

            def do_DELETE(self):
                server._handle(self, "DELETE")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CacheServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="cache-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CacheServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling -----------------------------------------------------
    def _count(self, key: str) -> None:
        with self._counter_lock:
            self.counters[key] += 1

    def _entry_path(self, namespace: str, digest: str) -> Path:
        return self.root / namespace / digest[:2] / f"{digest}.json"

    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        try:
            self._dispatch(handler, method)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage
        except OSError:
            self._reply(handler, 500, b'{"error": "io failure"}')

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        parts = handler.path.strip("/").split("/")
        if parts == ["v1", "stats"] and method in ("GET", "HEAD"):
            body = json.dumps(self.stats(), sort_keys=True).encode("utf-8")
            self._reply(handler, 200, body, head_only=method == "HEAD")
            return
        if len(parts) != 3 or parts[0] != "v1":
            self._count("rejected")
            self._reply(handler, 400, b'{"error": "expected /v1/<namespace>/<digest>"}')
            return
        _, namespace, digest = parts
        if not _NAMESPACE_RE.match(namespace) or not _DIGEST_RE.match(digest):
            self._count("rejected")
            self._reply(handler, 400, b'{"error": "bad namespace or digest"}')
            return
        path = self._entry_path(namespace, digest)
        if method in ("GET", "HEAD"):
            try:
                data = path.read_bytes()
            except OSError:
                self._count("get_misses")
                self._reply(handler, 404, b'{"error": "no such entry"}')
                return
            self._count("get_hits")
            self._reply(handler, 200, data, head_only=method == "HEAD")
            return
        if self.readonly:
            self._count("rejected")
            self._reply(handler, 403, b'{"error": "cache server is read-only"}')
            return
        if method == "PUT":
            try:
                length = int(handler.headers.get("Content-Length", ""))
            except ValueError:
                length = -1
            if length < 0:
                self._count("rejected")
                self._reply(handler, 411, b'{"error": "Content-Length required"}')
                return
            if length > MAX_ENTRY_BYTES:
                self._count("rejected")
                self._reply(handler, 413, b'{"error": "entry too large"}')
                return
            data = handler.rfile.read(length)
            try:
                json.loads(data)
            except ValueError:
                # Refuse garbage at the door; clients would only drop it
                # again on validation, one failed read at a time.
                self._count("rejected")
                self._reply(handler, 400, b'{"error": "body is not JSON"}')
                return
            path.parent.mkdir(parents=True, exist_ok=True)
            write_atomic_bytes(path, data)
            self._count("puts")
            self._reply(handler, 204, b"")
            return
        if method == "DELETE":
            try:
                path.unlink()
            except OSError:
                self._reply(handler, 404, b'{"error": "no such entry"}')
                return
            self._count("deletes")
            self._reply(handler, 204, b"")
            return
        self._count("rejected")  # pragma: no cover - unreachable via Handler
        self._reply(handler, 405, b'{"error": "unsupported method"}')

    @staticmethod
    def _reply(
        handler: BaseHTTPRequestHandler, status: int, body: bytes, *, head_only: bool = False
    ) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        if body and not head_only:
            handler.wfile.write(body)

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict:
        """Per-namespace entry counts/bytes plus request counters."""
        namespaces: dict[str, dict] = {}
        for ns_dir in sorted(self.root.iterdir() if self.root.exists() else []):
            if not ns_dir.is_dir() or not _NAMESPACE_RE.match(ns_dir.name):
                continue
            entries = 0
            size = 0
            for entry in ns_dir.glob("??/*.json"):
                entries += 1
                try:
                    size += entry.stat().st_size
                except OSError:  # pragma: no cover - concurrent delete
                    pass
            namespaces[ns_dir.name] = {"entries": entries, "bytes": size}
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "path": str(self.root),
            "readonly": self.readonly,
            "namespaces": namespaces,
            "requests": counters,
        }


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.cache.server`` / the ``cache-server`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-cache-server",
        description="shared remote cache for the repro content-addressed stores",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=7350, help="TCP port (0 picks a free port; default 7350)"
    )
    parser.add_argument(
        "--path",
        default=None,
        metavar="DIR",
        help="served directory (default $REPRO_CACHE_SERVER_ROOT or "
        "~/.cache/repro-hpc-codex/served)",
    )
    parser.add_argument(
        "--readonly",
        action="store_true",
        help="refuse PUT/DELETE (serve an existing cache verbatim)",
    )
    args = parser.parse_args(argv)

    from repro.analysis.store import _default_cache_path

    root = args.path or _default_cache_path("REPRO_CACHE_SERVER_ROOT", "served")
    server = CacheServer(root, host=args.host, port=args.port, readonly=args.readonly)
    # Printed after the bind so --port 0 reports the actual port; the smoke
    # jobs and humans alike scrape this line.
    suffix = ", read-only" if server.readonly else ""
    print(f"serving cache on {server.url} (path {server.root}{suffix})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
