"""Pluggable storage backends for the content-addressed stores.

:class:`~repro.analysis.store.ContentStore` (the shared core of the
verdict and shard-result stores) used to *be* its directory layout; this
module extracts that layout into :class:`LocalBackend` and adds two more
ways to keep entries:

* :class:`RemoteBackend` — a shared HTTP cache (the ``cache-server`` CLI
  subcommand, :mod:`repro.cache.server`): content-addressed
  ``GET``/``PUT``/``DELETE`` of opaque JSON documents under
  ``/v1/<namespace>/<digest>``.  A fleet of ``dispatch-worker`` hosts and
  long-lived ``serve`` processes pointed at one server share every verdict
  and shard payload any of them ever computed.
* :class:`TieredBackend` — a local read-through cache in front of a remote:
  reads try the local directory first, fall through to the remote, and fill
  the local layer on a remote hit; writes go to both.

Every backend is **fail-soft** by construction: a missing entry, a
truncated read, an unreachable server or a full disk is reported as a miss
(``get() -> None``) or a skipped write (``put() -> False``) — never an
exception into the evaluation path.  The remote backend additionally trips
a cooldown circuit breaker after a transport failure so a dead server costs
one timeout, not one per lookup.

Backends move **opaque bytes**; keying, schema/versioning and payload
validation stay in the stores.  All backends count their traffic
(``counters()``: operation counts, error counts, cumulative latency) for
``cache stats``.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.atomicio import write_atomic_bytes

__all__ = [
    "ENV_READONLY",
    "ENV_REMOTE_URL",
    "LocalBackend",
    "RemoteBackend",
    "TieredBackend",
    "env_flag",
    "remote_url_from_env",
]

#: Environment variable naming the shared remote cache server
#: (``http://host:port``).  Read by every :class:`ContentStore` whose
#: constructor was not given an explicit ``remote=``, so process-backend
#: workers, ``dispatch-worker`` hosts and the ``serve`` service — which all
#: rebuild stores from a bare path — inherit the remote tier automatically.
ENV_REMOTE_URL = "REPRO_CACHE_URL"

#: Environment variable putting every store into read-only mode: lookups
#: are served, nothing is ever written (no entries, no read-through fills),
#: and ``clear``/``compact`` refuse.  The CI knob.
ENV_READONLY = "REPRO_CACHE_READONLY"


def env_flag(name: str) -> bool:
    """Truthiness of an environment flag (``1``/``true``/``yes``/...)."""
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def remote_url_from_env() -> str | None:
    """The shared-cache URL from ``$REPRO_CACHE_URL``, or ``None``."""
    return os.environ.get(ENV_REMOTE_URL) or None


class _BackendBase:
    """Counter plumbing shared by the concrete backends."""

    kind = "?"

    def __init__(self) -> None:
        self._counter_lock = threading.Lock()
        self._gets = 0
        self._get_hits = 0
        self._puts = 0
        self._errors = 0
        self._seconds = 0.0

    def _record(self, op: str, started: float, *, hit: bool = False, error: bool = False) -> None:
        elapsed = time.perf_counter() - started
        with self._counter_lock:
            self._seconds += elapsed
            if op == "get":
                self._gets += 1
                self._get_hits += hit
            elif op == "put":
                self._puts += 1
            self._errors += error

    def counters(self) -> dict:
        """This backend's traffic: op counts, errors, cumulative latency."""
        with self._counter_lock:
            return {
                "kind": self.kind,
                "gets": self._gets,
                "get_hits": self._get_hits,
                "puts": self._puts,
                "errors": self._errors,
                "seconds": round(self._seconds, 6),
            }


class LocalBackend(_BackendBase):
    """Today's on-disk layout: a two-level fanout directory of JSON entries.

    ``get`` is a single ``read_bytes`` (absent entry or transient read
    failure → ``None``; the entry is never destroyed on a read error —
    on a shared store a transient EIO must not delete a valid entry for
    every other reader), ``put`` publishes through the shared
    fsync-before-replace writer, ``discard`` drops one entry best-effort.
    """

    kind = "local"

    def __init__(self, path: str | Path, *, create: bool = True) -> None:
        super().__init__()
        self.path = Path(path)
        if create:
            self.path.mkdir(parents=True, exist_ok=True)

    def entry_path(self, digest: str) -> Path:
        return self.path / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> bytes | None:
        started = time.perf_counter()
        try:
            data = self.entry_path(digest).read_bytes()
        except OSError:
            data = None
        self._record("get", started, hit=data is not None)
        return data

    def put(self, digest: str, data: bytes) -> bool:
        started = time.perf_counter()
        path = self.entry_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            write_atomic_bytes(path, data)
        except OSError:
            # Full disk / permissions / store directory gone: the caller
            # must never fail because the cache could not be written.
            self._record("put", started, error=True)
            return False
        self._record("put", started)
        return True

    def exists(self, digest: str) -> bool:
        return self.entry_path(digest).exists()

    def discard(self, digest: str) -> None:
        try:
            self.entry_path(digest).unlink()
        except OSError:
            pass


class RemoteBackend(_BackendBase):
    """A shared HTTP cache (see :mod:`repro.cache.server`).

    Entries live under ``<url>/v1/<namespace>/<digest>``; the namespace
    keeps the verdict and shard-result digest spaces apart on one server.

    **Degradation.**  A 404 is a plain miss.  Any transport failure —
    connection refused, timeout, a 5xx — counts an error, yields a
    miss/skipped write, and opens a circuit breaker for ``cooldown``
    seconds: while it is open every operation short-circuits locally, so a
    server killed mid-run costs one timeout and the evaluation degrades to
    recompute instead of stalling per entry.
    """

    kind = "remote"

    def __init__(
        self,
        url: str,
        *,
        namespace: str = "cache",
        timeout: float = 3.0,
        cooldown: float = 30.0,
    ) -> None:
        super().__init__()
        if not url.startswith(("http://", "https://")):
            raise ValueError(f"remote cache URL must be http(s)://, got {url!r}")
        self.url = url.rstrip("/")
        self.namespace = namespace
        self.timeout = float(timeout)
        self.cooldown = float(cooldown)
        self._down_until = 0.0

    def entry_url(self, digest: str) -> str:
        return f"{self.url}/v1/{self.namespace}/{digest}"

    def available(self) -> bool:
        """Whether the circuit breaker currently allows remote traffic."""
        with self._counter_lock:
            return time.monotonic() >= self._down_until

    def _trip(self) -> None:
        with self._counter_lock:
            self._down_until = time.monotonic() + self.cooldown

    def get(self, digest: str) -> bytes | None:
        if not self.available():
            return None
        started = time.perf_counter()
        request = urllib.request.Request(self.entry_url(digest), method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                data = response.read()
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:  # a plain miss, the server is healthy
                self._record("get", started)
                return None
            self._record("get", started, error=True)
            self._trip()
            return None
        except OSError:  # URLError, refused connection, timeout, DNS, ...
            self._record("get", started, error=True)
            self._trip()
            return None
        self._record("get", started, hit=True)
        return data

    def put(self, digest: str, data: bytes) -> bool:
        if not self.available():
            return False
        started = time.perf_counter()
        request = urllib.request.Request(
            self.entry_url(digest),
            data=data,
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except urllib.error.HTTPError as exc:
            exc.close()
            self._record("put", started, error=True)
            if exc.code >= 500:
                self._trip()
            return False
        except OSError:
            self._record("put", started, error=True)
            self._trip()
            return False
        self._record("put", started)
        return True

    def exists(self, digest: str) -> bool:
        if not self.available():
            return False
        request = urllib.request.Request(self.entry_url(digest), method="HEAD")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                return True
        except urllib.error.HTTPError as exc:
            exc.close()
            return False
        except OSError:
            self._trip()
            return False

    def discard(self, digest: str) -> None:
        if not self.available():
            return
        request = urllib.request.Request(self.entry_url(digest), method="DELETE")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except urllib.error.HTTPError as exc:
            exc.close()
        except OSError:
            self._trip()


class TieredBackend:
    """Local read-through cache in front of a shared remote.

    * ``get`` — local first; on a local miss the remote is consulted, and a
      remote hit **fills the local layer** (unless read-only) so the next
      lookup is one ``open`` again.
    * ``put`` — written to both layers; either succeeding counts as
      persisted (the other is best-effort).
    * ``discard`` — drops the **local** copy only.  A corrupt entry the
      remote keeps serving is re-validated (and recomputed) on each read
      until the next ``put`` overwrites it server-side; deleting shared
      state because one client's disk tore a file would let a single bad
      reader purge the fleet's cache.
    """

    kind = "tiered"

    def __init__(self, local: LocalBackend, remote: RemoteBackend, *, readonly: bool = False) -> None:
        self.local = local
        self.remote = remote
        self.readonly = bool(readonly)

    def get(self, digest: str) -> bytes | None:
        data = self.local.get(digest)
        if data is not None:
            return data
        data = self.remote.get(digest)
        if data is not None and not self.readonly:
            self.local.put(digest, data)
        return data

    def put(self, digest: str, data: bytes) -> bool:
        local_ok = self.local.put(digest, data)
        remote_ok = self.remote.put(digest, data)
        return local_ok or remote_ok

    def exists(self, digest: str) -> bool:
        # Local-only on purpose: an existence probe guards re-writes, and a
        # remote round-trip per put() would cost more than the re-upload.
        return self.local.exists(digest)

    def discard(self, digest: str) -> None:
        self.local.discard(digest)

    def counters(self) -> dict:
        return {
            "kind": self.kind,
            "local": self.local.counters(),
            "remote": self.remote.counters(),
        }
