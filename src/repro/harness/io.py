"""Persistence of evaluation results (CSV and JSON)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.runner import ResultSet

__all__ = [
    "save_records_csv",
    "save_records_json",
    "load_records_csv",
    "load_records_json",
    "result_records",
]

_FIELDS = [
    "language",
    "model",
    "kernel",
    "postfix",
    "use_postfix",
    "score",
    "level",
    "n_suggestions",
    "n_correct",
    "n_hazards",
    "competence",
]


def result_records(results: ResultSet) -> list[dict]:
    """Flat per-cell records for persistence."""
    return results.to_records()


def save_records_csv(results: ResultSet | Iterable[dict], path: str | Path) -> Path:
    """Write per-cell records to a CSV file and return the path."""
    records = results.to_records() if isinstance(results, ResultSet) else list(results)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow({key: record.get(key, "") for key in _FIELDS})
    return path


def save_records_json(results: ResultSet | Iterable[dict], path: str | Path) -> Path:
    """Write per-cell records to a JSON file and return the path."""
    records = results.to_records() if isinstance(results, ResultSet) else list(results)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(records, indent=2, sort_keys=True))
    return path


def load_records_json(path: str | Path) -> list[dict]:
    """Load per-cell records previously written by :func:`save_records_json`."""
    return json.loads(Path(path).read_text())


#: CSV cells are strings; these coercions restore the record field types so a
#: CSV round trip feeds ResultSet.from_payload exactly like the JSON one.
_CSV_COERCERS = {
    "use_postfix": lambda value: value == "True",
    "score": float,
    "n_suggestions": int,
    "n_correct": int,
    # Tolerant of pre-hazard-analyzer CSVs where the column is absent/empty.
    "n_hazards": lambda value: int(value) if value else 0,
    "competence": float,
}


def load_records_csv(path: str | Path) -> list[dict]:
    """Load per-cell records previously written by :func:`save_records_csv`,
    coercing numeric/boolean fields back to their record types (suitable for
    :meth:`repro.core.runner.ResultSet.from_payload`)."""
    with Path(path).open(newline="") as handle:
        return [
            {key: _CSV_COERCERS.get(key, str)(value) for key, value in row.items()}
            for row in csv.DictReader(handle)
        ]
