"""Command-line interface: ``repro-hpc-codex``.

Sub-commands
------------

``run``        Evaluate the full Table 1 grid, print every table/figure and
               optionally write the per-cell records to CSV/JSON.
``table N``    Reproduce Table N (2-5) and print it next to the paper values.
``figure N``   Reproduce Figure N (2-6).
``ablation X`` Run one of the ablations (``keywords``, ``maturity``,
               ``suggestions``).
``compare``    Print the shape-agreement summary for every language.
``prompt``     Show the suggestions generated for a single prompt (debugging
               / exploration aid).
"""

from __future__ import annotations

import argparse
import sys

from repro.codex.config import DEFAULT_SEED
from repro.codex.engine import SimulatedCodex
from repro.codex.prompt import Prompt
from repro.core.compare import compare_to_paper
from repro.core.evaluator import PromptEvaluator
from repro.core.runner import BACKENDS
from repro.harness import experiments
from repro.harness.io import save_records_csv, save_records_json
from repro.models.grid import ExperimentCell
from repro.models.languages import get_language, language_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hpc-codex",
        description="Reproduction harness for 'Evaluation of OpenAI Codex for HPC Parallel "
        "Programming Models Kernel Generation' (Godoy et al., ICPP-W 2023)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="experiment seed")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="executor backend for grid evaluation (results are identical across backends)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate the full grid and print all artefacts")
    run.add_argument("--csv", type=str, default=None, help="write per-cell records to this CSV file")
    run.add_argument("--json", type=str, default=None, help="write per-cell records to this JSON file")

    table = sub.add_parser("table", help="reproduce one of Tables 2-5")
    table.add_argument("number", type=int, choices=sorted(experiments.TABLE_LANGUAGES))

    figure = sub.add_parser("figure", help="reproduce one of Figures 2-6")
    figure.add_argument("number", type=int, choices=[2, 3, 4, 5, 6])

    ablation = sub.add_parser("ablation", help="run one of the ablation studies")
    ablation.add_argument("name", choices=["keywords", "maturity", "suggestions"])

    sub.add_parser("compare", help="print the shape-agreement summary per language")

    prompt = sub.add_parser("prompt", help="show the suggestions for a single prompt")
    prompt.add_argument("kernel", help="kernel name (axpy, gemv, gemm, spmv, jacobi, cg)")
    prompt.add_argument("model", help="programming model uid, e.g. cpp.openmp")
    prompt.add_argument("--keyword", action="store_true", help="append the language post-fix keyword")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    results = experiments.run_full_results(seed=args.seed, backend=args.backend)
    for number in sorted(experiments.TABLE_LANGUAGES):
        report = experiments.run_table(number, seed=args.seed)
        print(report.text)
        print(report.summary_line())
        print()
    print(experiments.run_overall_figure(seed=args.seed).text)
    if args.csv:
        path = save_records_csv(results, args.csv)
        print(f"wrote {path}")
    if args.json:
        path = save_records_json(results, args.json)
        print(f"wrote {path}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    report = experiments.run_table(args.number, seed=args.seed, backend=args.backend)
    print(report.text)
    print()
    print(report.summary_line())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    report = experiments.run_figure(args.number, seed=args.seed, backend=args.backend)
    print(report.text)
    print()
    print(report.summary_line())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    runners = {
        "keywords": experiments.run_keyword_ablation,
        "maturity": experiments.run_maturity_ablation,
        "suggestions": experiments.run_suggestion_count_ablation,
    }
    report = runners[args.name](seed=args.seed, backend=args.backend)
    print(report.text)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    for language in language_names():
        results = experiments.run_language_results(language, seed=args.seed, backend=args.backend)
        comparison = compare_to_paper(results, language)
        display = get_language(language).display_name
        print(
            f"{display:8s} rank-correlation={comparison.cell_rank_correlation:+.2f}  "
            f"within-one-level={comparison.within_one_level:.0%}  "
            f"mean-abs-diff={comparison.mean_absolute_difference:.2f}  "
            f"top-model={comparison.top_model} (paper: {comparison.paper_top_model})"
        )
    return 0


def _cmd_prompt(args: argparse.Namespace) -> int:
    model_uid = args.model.lower()
    language = model_uid.split(".", 1)[0]
    cell = ExperimentCell(
        language=language, model=model_uid, kernel=args.kernel.lower(), use_postfix=args.keyword
    )
    prompt = Prompt.from_cell(cell)
    engine = SimulatedCodex(seed=args.seed)
    evaluator = PromptEvaluator(engine=engine)
    result = evaluator.evaluate_cell(cell)
    print(prompt.describe())
    print(f"competence={result.competence:.2f}  score={result.score} ({result.level.label})")
    for idx, (suggestion, verdict) in enumerate(zip(result.suggestions, result.verdicts), start=1):
        print(f"--- suggestion {idx}: {verdict.summary()}")
        print(suggestion.rstrip())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "ablation": _cmd_ablation,
        "compare": _cmd_compare,
        "prompt": _cmd_prompt,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
