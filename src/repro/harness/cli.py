"""Command-line interface: ``repro-hpc-codex``.

Sub-commands
------------

``run``        Evaluate the full Table 1 grid, print every table/figure and
               optionally write the per-cell records to CSV/JSON.
``sweep``      Run the grid over several seeds (``--seeds 1 2 3``) and print
               each cell's mean score with a content-keyed bootstrap
               confidence interval; ``--json`` writes the summary payload.
``table N``    Reproduce Table N (2-5) and print it next to the paper values.
``figure N``   Reproduce Figure N (2-6).
``ablation X`` Run one of the ablations (``keywords``, ``maturity``,
               ``suggestions``).
``compare``    Print the shape-agreement summary for every language.
``prompt``     Show the suggestions generated for a single prompt (debugging
               / exploration aid).
``shard``      Evaluate one shard of the experiment grid and emit a JSON
               payload (manifest entry + records) for a later ``merge``.
``merge``      Validate shard payloads for completeness/consistency and merge
               them into the records of the unsharded run, byte-identically.
``dispatch``   Partition the grid, dispatch the shards to a worker backend
               (``inline``, ``process`` or ``file-queue``), stream the
               merge, and — with ``--result-store`` — resume any earlier
               killed run instead of re-executing its finished shards.  The
               merged ``--json`` output is byte-identical to ``run --json``.
               Failing shards are retried (``--max-attempts``) and then
               quarantined; ``--allow-partial`` merges the survivors of a
               degraded run (exit 4) instead of refusing (exit 3).
``dispatch-worker``
               Drain shard tasks from a ``file-queue`` directory: run this
               on any host that mounts the queue to contribute cycles to a
               ``dispatch --backend file-queue``.  ``--poll SECONDS`` keeps
               the worker waiting (with backoff) for late-published tasks.
``serve``      Run the long-lived evaluation service: a JSON-RPC 2.0 server
               (newline-delimited JSON over TCP) accepting ``submit`` from
               many concurrent clients and streaming per-cell ``progress``
               and per-shard ``shard`` events as evaluation lands.  See
               ``docs/protocol.md`` for the wire format and
               ``python -m repro.service.client`` for the matching client.
``lint``       Run the CUDA-C static hazard analyzer over the corpus'
               embedded kernels and print the per-kernel findings
               (``--mutations`` adds the mutated variants, where the
               hazards live; ``--hazards-only`` filters the listing).
``cache``      Inspect (``stats``), empty (``clear``) or evict stale/aged
               entries from (``compact``) a persistent store — the verdict
               store by default, the shard-result store with
               ``--result-store [PATH]``.
``cache-server``
               Serve a shared remote cache over HTTP: content-addressed
               GET/PUT under ``/v1/<namespace>/<digest>``.  Every store
               pointed at it (global ``--cache-url URL``, or
               ``$REPRO_CACHE_URL``) reads through a local cache and
               publishes fresh entries back, so a fleet computes each
               verdict/shard once.  An unreachable server degrades to
               recompute; ``$REPRO_CACHE_READONLY`` makes stores consume
               a cache without ever writing (the CI knob).

Every command drives a :class:`repro.api.Session`; a two-machine split of
the full grid looks like::

    repro-hpc-codex shard --index 0 --of 2 --out part0.json   # machine A
    repro-hpc-codex shard --index 1 --of 2 --out part1.json   # machine B
    repro-hpc-codex merge part0.json part1.json --json full.json

or, letting the driver do the partitioning, merging and crash recovery::

    repro-hpc-codex dispatch --shards 8 --backend file-queue \\
        --queue /mnt/shared/q --result-store /mnt/shared/results --json full.json
    repro-hpc-codex dispatch-worker --queue /mnt/shared/q   # any other host

The global ``--verdict-store PATH`` flag (``auto`` = default cache location)
attaches the persistent verdict cache: evaluation commands then consult and
populate it, so a warm re-run — any process, any backend — performs zero
sandbox executions and prints a ``verdict store: ... hits=N`` summary on
stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.codex.config import DEFAULT_SEED
from repro.codex.engine import SimulatedCodex
from repro.codex.prompt import Prompt
from repro.core.compare import compare_to_paper
from repro.core.evaluator import PromptEvaluator
from repro.core.runner import BACKENDS
from repro.harness.experiments import TABLE_LANGUAGES
from repro.harness.io import save_records_csv, save_records_json
from repro.models.grid import ExperimentCell
from repro.models.languages import get_language, language_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hpc-codex",
        description="Reproduction harness for 'Evaluation of OpenAI Codex for HPC Parallel "
        "Programming Models Kernel Generation' (Godoy et al., ICPP-W 2023)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="experiment seed")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="executor backend for grid evaluation (results are identical across backends)",
    )
    parser.add_argument(
        "--verdict-store",
        default=None,
        metavar="PATH",
        help="attach the persistent cross-process verdict cache at PATH; pass 'auto' "
        "for the default location ($REPRO_VERDICT_STORE or ~/.cache/repro-hpc-codex/verdicts)",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="shared cache-server every store reads through and publishes to "
        "(sets $REPRO_CACHE_URL, so subprocess workers inherit it); an "
        "unreachable server degrades to recompute",
    )
    parser.add_argument(
        "--extended-grid",
        action="store_true",
        help="install the extension grid before running the command: the scan and "
        "histogram kernel families plus the python.kokkos model (docs/extending.md); "
        "stock cells keep their exact random streams",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate the full grid and print all artefacts")
    run.add_argument("--csv", type=str, default=None, help="write per-cell records to this CSV file")
    run.add_argument("--json", type=str, default=None, help="write per-cell records to this JSON file")

    sweep = sub.add_parser(
        "sweep", help="multi-seed statistical sweep: mean and bootstrap CI per cell"
    )
    sweep.add_argument(
        "--seeds", type=int, nargs="+", required=True, help="seeds to sweep over"
    )
    sweep.add_argument(
        "--languages", nargs="+", default=None, help="restrict the grid to these languages"
    )
    sweep.add_argument(
        "--confidence", type=float, default=0.95, help="CI level (default 0.95)"
    )
    sweep.add_argument(
        "--resamples", type=int, default=1000, help="bootstrap resamples (default 1000)"
    )
    sweep.add_argument(
        "--json", type=str, default=None, help="write the summary payload to this JSON file"
    )

    table = sub.add_parser("table", help="reproduce one of Tables 2-5")
    table.add_argument("number", type=int, choices=sorted(TABLE_LANGUAGES))

    figure = sub.add_parser("figure", help="reproduce one of Figures 2-6")
    figure.add_argument("number", type=int, choices=[2, 3, 4, 5, 6])

    ablation = sub.add_parser("ablation", help="run one of the ablation studies")
    ablation.add_argument("name", choices=["keywords", "maturity", "suggestions"])

    sub.add_parser("compare", help="print the shape-agreement summary per language")

    prompt = sub.add_parser("prompt", help="show the suggestions for a single prompt")
    prompt.add_argument("kernel", help="kernel name (axpy, gemv, gemm, spmv, jacobi, cg)")
    prompt.add_argument("model", help="programming model uid, e.g. cpp.openmp")
    prompt.add_argument("--keyword", action="store_true", help="append the language post-fix keyword")

    shard = sub.add_parser(
        "shard", help="evaluate one shard of the grid and emit its JSON payload"
    )
    shard.add_argument("--index", type=int, required=True, help="shard index, 0-based")
    shard.add_argument("--of", type=int, required=True, help="number of shards the grid is split into")
    shard.add_argument(
        "--languages", nargs="+", default=None, help="restrict the grid to these languages"
    )
    shard.add_argument(
        "--kernels", nargs="+", default=None, help="restrict the grid to these kernels"
    )
    shard.add_argument(
        "--out", type=str, default="-", help="payload output path ('-' = stdout, the default)"
    )

    merge = sub.add_parser(
        "merge", help="validate shard payloads and merge them into the full records"
    )
    merge.add_argument(
        "parts", nargs="*", help="shard payload files (none or '-': read one payload/list from stdin)"
    )
    merge.add_argument("--csv", type=str, default=None, help="write merged records to this CSV file")
    merge.add_argument(
        "--json", type=str, default=None, help="write merged records to this JSON file ('-' = stdout)"
    )

    dispatch = sub.add_parser(
        "dispatch",
        help="partition the grid, dispatch shards to workers, and merge the stream",
    )
    dispatch.add_argument(
        "--shards", type=int, default=4, help="contiguous slices per seed (default 4)"
    )
    dispatch.add_argument(
        "--backend",
        dest="dispatch_backend",
        choices=["inline", "process", "file-queue"],
        default="inline",
        help="worker backend shards are dispatched to (default inline)",
    )
    dispatch.add_argument(
        "--result-store",
        default=None,
        metavar="PATH",
        help="persist completed shard payloads at PATH so a killed run resumes; "
        "pass 'auto' for the default location ($REPRO_RESULT_STORE or "
        "~/.cache/repro-hpc-codex/results)",
    )
    dispatch.add_argument(
        "--queue", default=None, metavar="DIR", help="queue directory (file-queue backend)"
    )
    dispatch.add_argument(
        "--workers", type=int, default=None, help="subprocess pool width (process backend)"
    )
    dispatch.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="stop after executing N shards (deterministic crash simulation; "
        "the run exits with status 3 and resumes from --result-store)",
    )
    dispatch.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="failed attempts before a shard is quarantined (default 3)",
    )
    dispatch.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill a process-backend shard exceeding this wall clock and retry it "
        "(counts as one failed attempt)",
    )
    dispatch.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="file-queue claim-lease renewal interval (default 5; a claim is "
        "stale after 3 missed heartbeats)",
    )
    dispatch.add_argument(
        "--allow-partial",
        action="store_true",
        help="when shards were quarantined but nothing is pending, merge the "
        "surviving shards anyway and exit with status 4 (degraded) instead "
        "of refusing to merge",
    )
    dispatch.add_argument(
        "--languages", nargs="+", default=None, help="restrict the grid to these languages"
    )
    dispatch.add_argument(
        "--kernels", nargs="+", default=None, help="restrict the grid to these kernels"
    )
    dispatch.add_argument("--csv", type=str, default=None, help="write merged records to this CSV file")
    dispatch.add_argument(
        "--json", type=str, default=None, help="write merged records to this JSON file"
    )

    worker = sub.add_parser(
        "dispatch-worker", help="drain shard tasks from a file-queue directory"
    )
    worker.add_argument("--queue", required=True, metavar="DIR", help="queue directory to drain")
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N", help="evaluate at most N tasks"
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep polling (with backoff) until the queue has stayed empty this "
        "long, instead of exiting the moment it looks empty",
    )

    serve = sub.add_parser(
        "serve", help="run the long-lived JSON-RPC 2.0 evaluation service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=7349, help="TCP port (0 picks a free port; default 7349)"
    )
    serve.add_argument(
        "--shards", type=int, default=4, help="default shard count per experiment (default 4)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="bound of the request queue (queued + running experiments); a submit "
        "beyond it is refused with the queue-full error (default 8)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrent experiment workers (default 2)"
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="failed attempts before a shard is quarantined (default 3)",
    )
    serve.add_argument(
        "--result-store",
        default=None,
        metavar="PATH",
        help="persist completed shard payloads at PATH so a restarted server "
        "resumes re-submitted specs with zero re-executed shards; 'auto' for "
        "the default location",
    )

    lint = sub.add_parser(
        "lint",
        help="static hazard findings for the corpus' embedded CUDA-C kernels",
    )
    lint.add_argument(
        "--kernel", default=None, help="restrict to one kernel family (axpy, gemv, ...)"
    )
    lint.add_argument(
        "--mutations",
        action="store_true",
        help="also lint the mutated corpus variants (where the hazards live)",
    )
    lint.add_argument(
        "--hazards-only",
        action="store_true",
        help="print only HAZARD findings (summary still counts everything)",
    )

    cache = sub.add_parser(
        "cache", help="inspect, clear or compact a persistent store"
    )
    cache.add_argument("action", choices=["stats", "clear", "compact"])
    cache.add_argument(
        "--result-store",
        dest="store",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="target the shard-result store instead of the verdict store; "
        "without PATH, the default location ($REPRO_RESULT_STORE or "
        "~/.cache/repro-hpc-codex/results)",
    )
    cache.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="compact only: also evict entries older than this "
        "(stale-ANALYSIS_VERSION entries are always evicted)",
    )

    cache_server = sub.add_parser(
        "cache-server", help="serve a shared remote cache over HTTP"
    )
    cache_server.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    cache_server.add_argument(
        "--port", type=int, default=7350, help="TCP port (0 picks a free port; default 7350)"
    )
    cache_server.add_argument(
        "--path",
        default=None,
        metavar="DIR",
        help="served directory (default $REPRO_CACHE_SERVER_ROOT or "
        "~/.cache/repro-hpc-codex/served)",
    )
    cache_server.add_argument(
        "--readonly",
        action="store_true",
        help="refuse PUT/DELETE (serve an existing cache verbatim)",
    )

    return parser


def _cmd_run(args: argparse.Namespace, session) -> int:
    results = session.full_results()
    for number in sorted(TABLE_LANGUAGES):
        report = session.table(number)
        print(report.text)
        print(report.summary_line())
        print()
    print(session.overall_figure().text)
    if args.csv:
        path = save_records_csv(results, args.csv)
        print(f"wrote {path}")
    if args.json:
        path = save_records_json(results, args.json)
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace, session) -> int:
    summary = session.sweep_seeds(
        args.seeds,
        languages=args.languages,
        confidence=args.confidence,
        n_resamples=args.resamples,
    )
    print(
        f"sweep over seeds {list(summary.seeds)}: "
        f"{len(summary.cells)} cells, {summary.confidence:.0%} bootstrap CI "
        f"({summary.n_resamples} resamples)"
    )
    for stats in summary.cells:
        suffix = "+kw" if stats.use_postfix else ""
        scores = " ".join(f"{score:.2f}" for score in stats.scores)
        print(
            f"  {stats.model + ':' + stats.kernel + suffix:40s} "
            f"mean={stats.mean:.3f}  ci=[{stats.ci_low:.3f}, {stats.ci_high:.3f}]  "
            f"scores=[{scores}]"
        )
    print(f"grand mean of cell means: {summary.mean_of_means():.3f}")
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary.to_payload(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_table(args: argparse.Namespace, session) -> int:
    report = session.table(args.number)
    print(report.text)
    print()
    print(report.summary_line())
    return 0


def _cmd_figure(args: argparse.Namespace, session) -> int:
    report = session.figure(args.number)
    print(report.text)
    print()
    print(report.summary_line())
    return 0


def _cmd_ablation(args: argparse.Namespace, session) -> int:
    report = session.ablation(args.name)
    print(report.text)
    return 0


def _cmd_compare(args: argparse.Namespace, session) -> int:
    for language in language_names():
        results = session.language_results(language)
        comparison = compare_to_paper(results, language)
        display = get_language(language).display_name
        print(
            f"{display:8s} rank-correlation={comparison.cell_rank_correlation:+.2f}  "
            f"within-one-level={comparison.within_one_level:.0%}  "
            f"mean-abs-diff={comparison.mean_absolute_difference:.2f}  "
            f"top-model={comparison.top_model} (paper: {comparison.paper_top_model})"
        )
    return 0


def _cmd_prompt(args: argparse.Namespace, session) -> int:
    model_uid = args.model.lower()
    language = model_uid.split(".", 1)[0]
    cell = ExperimentCell(
        language=language, model=model_uid, kernel=args.kernel.lower(), use_postfix=args.keyword
    )
    prompt = Prompt.from_cell(cell)
    engine = SimulatedCodex(seed=args.seed)
    evaluator = PromptEvaluator(engine=engine)
    result = evaluator.evaluate_cell(cell)
    print(prompt.describe())
    print(f"competence={result.competence:.2f}  score={result.score} ({result.level.label})")
    for idx, (suggestion, verdict) in enumerate(zip(result.suggestions, result.verdicts), start=1):
        print(f"--- suggestion {idx}: {verdict.summary()}")
        print(suggestion.rstrip())
    return 0


def _cmd_shard(args: argparse.Namespace, session) -> int:
    from repro.api.spec import ExperimentSpec, shard_payload

    spec = ExperimentSpec(
        seeds=(args.seed,),
        languages=None if args.languages is None else tuple(args.languages),
        kernels=None if args.kernels is None else tuple(args.kernels),
    )
    shard = spec.shard(args.index, args.of)
    results = session.run(shard)
    payload = json.dumps(shard_payload(shard, results), indent=2, sort_keys=True)
    if args.out == "-":
        print(payload)
    else:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload + "\n")
        print(f"wrote shard {args.index}/{args.of} ({len(results)} cells) to {path}")
    return 0


def _cmd_merge(args: argparse.Namespace, session) -> int:
    from repro.api.spec import merge_shard_payloads

    payloads: list[dict] = []
    sources = args.parts or ["-"]
    for source in sources:
        loaded = json.loads(sys.stdin.read() if source == "-" else Path(source).read_text())
        payloads.extend(loaded if isinstance(loaded, list) else [loaded])
    merged = merge_shard_payloads(payloads)
    if len(merged) != 1:
        raise SystemExit(
            f"CLI merge expects shards of a single seed, got seeds {sorted(merged)}"
        )
    seed, results = next(iter(merged.items()))
    print(
        f"merged {len(payloads)} shard(s) -> {len(results)} cells "
        f"(seed {seed}, mean score {results.mean_score():.3f})"
    )
    if args.json:
        if args.json == "-":
            print(json.dumps(results.to_records(), indent=2, sort_keys=True))
        else:
            print(f"wrote {save_records_json(results, args.json)}")
    if args.csv:
        print(f"wrote {save_records_csv(results, args.csv)}")
    return 0


def _cmd_dispatch(args: argparse.Namespace, session) -> int:
    from repro.api.spec import ExperimentSpec
    from repro.dispatch.store import ResultStore

    spec = ExperimentSpec(
        seeds=(args.seed,),
        languages=None if args.languages is None else tuple(args.languages),
        kernels=None if args.kernels is None else tuple(args.kernels),
    )
    store = ResultStore.coerce(True if args.result_store == "auto" else args.result_store)
    report = session.dispatch(
        spec,
        shards=args.shards,
        backend=args.dispatch_backend,
        result_store=store,
        queue=args.queue,
        max_workers=args.workers,
        max_shards=args.max_shards,
        max_attempts=args.max_attempts,
        shard_timeout=args.shard_timeout,
        heartbeat_interval=args.heartbeat,
    )
    print(report.summary())
    if store is not None:
        # Stderr, like the verdict-store summary: piped output stays clean.
        print(
            f"result store: {store.path} shard-hits={len(report.skipped)} "
            f"shard-writes={store.writes}",
            file=sys.stderr,
        )
    for quarantine in report.quarantined:
        print(f"quarantined: {quarantine.describe()}", file=sys.stderr)
    if not report.complete:
        if report.pending:
            print(
                f"{report.pending} shard(s) still pending; "
                "re-run with the same --result-store to resume",
                file=sys.stderr,
            )
            return 3
        # Every shard settled, but some settled in quarantine: merge the
        # survivors only on an explicit --allow-partial, and even then exit
        # nonzero — degraded output must never look like a clean run.
        if not args.allow_partial:
            print(
                f"{len(report.quarantined)} shard(s) quarantined; pass "
                "--allow-partial to merge the surviving shards anyway",
                file=sys.stderr,
            )
            return 3
        results = report.results.get(args.seed)
        merged = 0 if results is None else len(results)
        print(
            f"merged {merged} cells from {len(report.outcomes)} surviving shard(s) "
            f"(--allow-partial; {len(report.quarantined)} quarantined)"
        )
        # Name the holes, not just their count: the ids below are what a
        # targeted re-dispatch or a queue post-mortem starts from.
        labels = ", ".join(
            f"s{q.entry.seed}-{q.entry.start:05d}-{q.entry.stop:05d}"
            for q in report.quarantined
        )
        print(f"degraded: quarantined shard(s) missing from the merge: {labels}", file=sys.stderr)
        if results is not None:
            if args.json:
                print(f"wrote {save_records_json(results, args.json)}")
            if args.csv:
                print(f"wrote {save_records_csv(results, args.csv)}")
        return 4
    results = report.result()
    print(f"merged {len(results)} cells (seed {args.seed}, mean score {results.mean_score():.3f})")
    if args.json:
        print(f"wrote {save_records_json(results, args.json)}")
    if args.csv:
        print(f"wrote {save_records_csv(results, args.csv)}")
    return 0


def _cmd_dispatch_worker(args: argparse.Namespace, session) -> int:
    from repro.dispatch.queue import drain_queue

    executed = drain_queue(
        args.queue,
        max_tasks=args.max_tasks,
        verdict_store=session.verdict_store,
        poll=args.poll,
    )
    print(f"dispatch-worker: evaluated {executed} task(s) from {args.queue}")
    return 0


def _cmd_serve(args: argparse.Namespace, session) -> int:
    import asyncio

    from repro.service.protocol import PROTOCOL_VERSION
    from repro.service.server import EvaluationServer

    server = EvaluationServer(
        args.host,
        args.port,
        shards=args.shards,
        queue_limit=args.queue_limit,
        workers=args.workers,
        max_attempts=args.max_attempts,
        result_store=True if args.result_store == "auto" else args.result_store,
        verdict_store=session.verdict_store,
    )

    async def _run() -> None:
        await server.start()
        # Printed after the bind so --port 0 reports the actual port; the
        # smoke jobs and humans alike scrape this line.
        print(
            f"serving JSON-RPC 2.0 on {server.host}:{server.port} "
            f"(protocol {PROTOCOL_VERSION})",
            flush=True,
        )
        if server.result_store is not None:
            print(f"result store: {server.result_store.path}", file=sys.stderr)
        await server.wait_closed()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args: argparse.Namespace, session) -> int:
    from collections import Counter

    from repro.analysis.hazards import static_findings_for
    from repro.corpus.store import default_corpus

    corpus = default_corpus(include_mutations=args.mutations)
    counts: Counter[str] = Counter()
    linted = 0
    for snippet in corpus:
        if snippet.language != "python":
            continue
        if args.kernel and snippet.kernel != args.kernel.lower():
            continue
        findings = static_findings_for(snippet.code, snippet.language, snippet.kernel)
        if not findings:
            continue
        linted += 1
        origin = snippet.mutation or snippet.origin.value
        shown = [
            f
            for f in findings
            if f["verdict"] == "HAZARD" or not args.hazards_only
        ]
        if shown:
            print(f"{snippet.kernel}/{snippet.label_model} [{origin}]")
        for finding in shown:
            where = f" buffer={finding['buffer']}" if finding.get("buffer") else ""
            line = f" line={finding['line']}" if finding.get("line") else ""
            print(
                f"  {finding['verdict']:7s} {finding['kind']}"
                f" kernel={finding['kernel']}{where}{line}  {finding['detail']}"
            )
        for finding in findings:
            counts[finding["verdict"]] += 1
    print(
        f"linted {linted} snippet(s): "
        + ", ".join(f"{verdict}={counts[verdict]}" for verdict in ("SAFE", "HAZARD", "UNKNOWN"))
    )
    return 0


def _print_store_stats(label: str, stats: dict) -> None:
    print(f"{label} {stats['path']}")
    for field in ("schema", "readonly", "entries", "bytes", "hits", "misses", "writes"):
        print(f"  {field:8s} {stats[field]}")
    backend = stats["backend"]
    layers = (
        [("local", backend["local"]), ("remote", backend["remote"])]
        if backend["kind"] == "tiered"
        else [(backend["kind"], backend)]
    )
    for name, counters in layers:
        print(
            f"  backend  {name}: gets={counters['gets']} get_hits={counters['get_hits']} "
            f"puts={counters['puts']} errors={counters['errors']} seconds={counters['seconds']}"
        )


def _cmd_cache(args: argparse.Namespace, session) -> int:
    from repro.analysis.store import VerdictStore, default_store_path
    from repro.dispatch.store import ResultStore

    if args.store is not None:
        # --result-store [PATH] targets the shard store; the flag itself is
        # the explicit decision, so no further guard is needed.
        store = ResultStore.coerce(True if args.store == "auto" else args.store)
        label = "result store"
    else:
        if args.action in ("clear", "compact") and session.verdict_store is None:
            # Deleting entries of the machine-wide default store must be an
            # explicit decision, not a forgotten-flag accident.
            raise SystemExit(
                f"cache {args.action} requires --verdict-store (pass 'auto' to "
                f"target the default store at {default_store_path()})"
            )
        store = session.verdict_store or VerdictStore(default_store_path())
        label = "verdict store"
    if args.action == "stats":
        _print_store_stats(label, store.stats())
        return 0
    try:
        if args.action == "compact":
            outcome = store.compact(max_age=args.max_age)
            print(
                f"compacted {store.path}: removed {outcome['removed_stale']} stale, "
                f"{outcome['removed_aged']} aged; kept {outcome['kept']}"
            )
            return 0
        removed = store.clear()
    except RuntimeError as exc:  # read-only mode refuses mutation
        raise SystemExit(str(exc)) from exc
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {store.path}")
    return 0


def _cmd_cache_server(args: argparse.Namespace, session) -> int:
    from repro.analysis.store import _default_cache_path
    from repro.cache.server import CacheServer

    root = args.path or _default_cache_path("REPRO_CACHE_SERVER_ROOT", "served")
    server = CacheServer(root, host=args.host, port=args.port, readonly=args.readonly)
    # Printed after the bind so --port 0 reports the actual port; the smoke
    # jobs and humans alike scrape this line.
    suffix = ", read-only" if server.readonly else ""
    print(f"serving cache on {server.url} (path {server.root}{suffix})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "ablation": _cmd_ablation,
        "compare": _cmd_compare,
        "prompt": _cmd_prompt,
        "shard": _cmd_shard,
        "merge": _cmd_merge,
        "dispatch": _cmd_dispatch,
        "dispatch-worker": _cmd_dispatch_worker,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "cache": _cmd_cache,
        "cache-server": _cmd_cache_server,
    }
    from repro.api.session import Session

    if args.cache_url:
        # Through the environment on purpose: process-backend workers,
        # dispatch workers and the serve service all rebuild stores from a
        # bare path and pick the remote tier up from $REPRO_CACHE_URL.
        from repro.cache.backends import ENV_REMOTE_URL

        os.environ[ENV_REMOTE_URL] = args.cache_url
    if args.extended_grid:
        from repro.extensions import install_extended_grid

        install_extended_grid()
    verdict_store = True if args.verdict_store == "auto" else args.verdict_store
    with Session(seed=args.seed, backend=args.backend, verdict_store=verdict_store) as session:
        status = handlers[args.command](args, session)
        if session.verdict_store is not None and args.command not in ("cache", "cache-server"):
            # Stderr so piped payloads (shard --out -, merge --json -) stay
            # clean; only O(1) counters — `cache stats` walks the directory.
            print(
                f"verdict store: {session.verdict_store.path} "
                f"hits={session.store_hits} sandbox-executions={session.sandbox_executions}",
                file=sys.stderr,
            )
        return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
