"""Rendering of the paper's result tables (Tables 2-5)."""

from __future__ import annotations

from repro.core.paper_reference import paper_score
from repro.core.report import format_score, format_table
from repro.core.runner import ResultSet
from repro.kernels.registry import get_kernel, kernel_names
from repro.models.keywords import has_postfix_variant, postfix_keyword
from repro.models.languages import get_language
from repro.models.programming_models import models_for_language

__all__ = ["render_language_table", "table_rows"]


def _cell_hazards(results: ResultSet, model_uid: str, kernel: str, *, use_postfix: bool) -> int:
    """Suggestions with static HAZARD findings in one cell (0 for old records)."""
    subset = results.filter(model=model_uid, kernel=kernel, use_postfix=use_postfix)
    return sum(int(result.to_record().get("n_hazards") or 0) for result in subset.results)


def table_rows(
    results: ResultSet,
    language: str,
    *,
    use_postfix: bool,
    include_paper: bool = True,
    include_findings: bool = False,
) -> list[list[str]]:
    """Rows of one table half: one row per programming model.

    With ``include_findings`` each row gains a trailing column counting the
    suggestions the CUDA-C static hazard analyzer flagged ``HAZARD`` across
    the row's kernels (informational; always 0 for non-GPU models).

    Extension cells (kernels or models outside the paper's grid) have no
    published score; with ``include_paper`` those cells render the reproduced
    score followed by ``/-``.
    """
    rows: list[list[str]] = []
    for model in models_for_language(language):
        row: list[str] = [model.display_name]
        hazards = 0
        for kernel in kernel_names(language):
            score = results.score(model.uid, kernel, use_postfix=use_postfix)
            cell = format_score(score)
            if include_paper:
                try:
                    reference = format_score(
                        paper_score(model.uid, kernel, use_postfix=use_postfix)
                    )
                except KeyError:
                    reference = "-"
                cell = f"{cell}/{reference}"
            row.append(cell)
            if include_findings:
                hazards += _cell_hazards(results, model.uid, kernel, use_postfix=use_postfix)
        if include_findings:
            row.append(str(hazards))
        rows.append(row)
    return rows


def render_language_table(
    results: ResultSet,
    language: str,
    *,
    include_paper: bool = True,
    include_findings: bool = False,
) -> str:
    """Render one language's full table (both prompt variants when available).

    With ``include_paper`` each cell shows ``reproduced/published``; with
    ``include_findings`` each row gains a static-hazard count column.
    """
    lang = get_language(language)
    headers = ["Prompt"] + [get_kernel(k).spec.display_name for k in kernel_names(lang.name)]
    if include_findings:
        headers.append("Hazards")
    blocks: list[str] = []
    legend = " (cells: reproduced/published)" if include_paper else ""
    variants: list[tuple[bool, str]] = [(False, f"Prefix <kernel>{legend}")]
    if has_postfix_variant(lang.name):
        variants.append((True, f"Post fix '{postfix_keyword(lang.name)}'{legend}"))
    for use_postfix, title in variants:
        rows = table_rows(
            results,
            lang.name,
            use_postfix=use_postfix,
            include_paper=include_paper,
            include_findings=include_findings,
        )
        blocks.append(format_table(headers, rows, title=f"{lang.display_name} — {title}"))
    return "\n\n".join(blocks)
