"""Rendering of the paper's result tables (Tables 2-5)."""

from __future__ import annotations

from repro.core.paper_reference import paper_score
from repro.core.report import format_score, format_table
from repro.core.runner import ResultSet
from repro.kernels.registry import KERNEL_NAMES, get_kernel
from repro.models.keywords import has_postfix_variant, postfix_keyword
from repro.models.languages import get_language
from repro.models.programming_models import models_for_language

__all__ = ["render_language_table", "table_rows"]


def table_rows(
    results: ResultSet,
    language: str,
    *,
    use_postfix: bool,
    include_paper: bool = True,
) -> list[list[str]]:
    """Rows of one table half: one row per programming model."""
    rows: list[list[str]] = []
    for model in models_for_language(language):
        row: list[str] = [model.display_name]
        for kernel in KERNEL_NAMES:
            score = results.score(model.uid, kernel, use_postfix=use_postfix)
            cell = format_score(score)
            if include_paper:
                reference = paper_score(model.uid, kernel, use_postfix=use_postfix)
                cell = f"{cell}/{format_score(reference)}"
            row.append(cell)
        rows.append(row)
    return rows


def render_language_table(
    results: ResultSet, language: str, *, include_paper: bool = True
) -> str:
    """Render one language's full table (both prompt variants when available).

    With ``include_paper`` each cell shows ``reproduced/published``.
    """
    lang = get_language(language)
    headers = ["Prompt"] + [get_kernel(k).spec.display_name for k in KERNEL_NAMES]
    blocks: list[str] = []
    legend = " (cells: reproduced/published)" if include_paper else ""
    variants: list[tuple[bool, str]] = [(False, f"Prefix <kernel>{legend}")]
    if has_postfix_variant(lang.name):
        variants.append((True, f"Post fix '{postfix_keyword(lang.name)}'{legend}"))
    for use_postfix, title in variants:
        rows = table_rows(results, lang.name, use_postfix=use_postfix, include_paper=include_paper)
        blocks.append(format_table(headers, rows, title=f"{lang.display_name} — {title}"))
    return "\n\n".join(blocks)
