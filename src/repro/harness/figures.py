"""Data and rendering for the paper's figures (Figures 2-6).

Each per-language figure has two panels: average proficiency per kernel and
average proficiency per programming model.  Figure 6 aggregates across the
whole study: per kernel and per language.  ``figure_data`` returns the
numeric series (what a plotting front-end would consume); ``render_figure``
prints ASCII bar charts, optionally next to the series derived from the
published tables.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.aggregate import kernel_averages, language_averages, model_averages
from repro.core.compare import paper_reference_averages
from repro.core.paper_reference import paper_cells
from repro.core.report import format_bar_chart, side_by_side
from repro.core.runner import ResultSet
from repro.kernels.registry import KERNEL_NAMES
from repro.models.keywords import has_postfix_variant
from repro.models.languages import get_language, language_names
from repro.models.programming_models import get_model

__all__ = ["figure_data", "render_figure", "overall_figure_data", "render_overall_figure",
           "FIGURE_LANGUAGES"]

#: Figure number → language, as in the paper (Figure 2 = C++, ... Figure 5 = Julia).
FIGURE_LANGUAGES: dict[int, str] = {2: "cpp", 3: "fortran", 4: "python", 5: "julia"}


def figure_data(results: ResultSet, language: str) -> dict[str, "OrderedDict[str, float]"]:
    """The two panels of a per-language figure (kernel and model averages)."""
    return {
        "kernels": kernel_averages(results, language=language),
        "models": model_averages(results, language),
    }


def paper_figure_data(language: str) -> dict[str, "OrderedDict[str, float]"]:
    """The same two panels computed from the published table."""
    kernels, models = paper_reference_averages(language)
    ordered_kernels = OrderedDict((k, kernels[k]) for k in KERNEL_NAMES)
    ordered_models = OrderedDict(models.items())
    return {"kernels": ordered_kernels, "models": ordered_models}


def _pretty_models(values: "OrderedDict[str, float]") -> "OrderedDict[str, float]":
    return OrderedDict((get_model(uid).display_name, v) for uid, v in values.items())


def render_figure(results: ResultSet, language: str, *, include_paper: bool = True) -> str:
    """ASCII rendering of one per-language figure."""
    lang = get_language(language)
    data = figure_data(results, lang.name)
    blocks = [
        format_bar_chart(data["kernels"], title=f"{lang.display_name}: average score per kernel"),
        "",
        format_bar_chart(
            _pretty_models(data["models"]),
            title=f"{lang.display_name}: average score per programming model",
        ),
    ]
    rendered = "\n".join(blocks)
    if not include_paper:
        return rendered
    reference = paper_figure_data(lang.name)
    ref_blocks = [
        format_bar_chart(reference["kernels"], title="(paper) per kernel"),
        "",
        format_bar_chart(_pretty_models(reference["models"]), title="(paper) per model"),
    ]
    return side_by_side(rendered, "\n".join(ref_blocks))


def overall_figure_data(results: ResultSet) -> dict[str, "OrderedDict[str, float]"]:
    """Figure 6 panels: per-kernel and per-language averages over the study."""
    return {
        "kernels": kernel_averages(results),
        "languages": language_averages(results),
    }


def paper_overall_figure_data() -> dict[str, "OrderedDict[str, float]"]:
    """Figure 6 panels derived from the published tables."""
    kernel_sums: dict[str, list[float]] = {k: [] for k in KERNEL_NAMES}
    language_sums: dict[str, list[float]] = {}
    for language in language_names():
        variants = (False, True) if has_postfix_variant(language) else (False,)
        for use_postfix in variants:
            for _model, kernel, score in paper_cells(language, use_postfix=use_postfix):
                kernel_sums[kernel].append(score)
                language_sums.setdefault(language, []).append(score)
    kernels = OrderedDict((k, sum(v) / len(v)) for k, v in kernel_sums.items())
    languages = OrderedDict(
        (lang, sum(language_sums[lang]) / len(language_sums[lang])) for lang in language_names()
    )
    return {"kernels": kernels, "languages": languages}


def render_overall_figure(results: ResultSet, *, include_paper: bool = True) -> str:
    """ASCII rendering of Figure 6."""
    data = overall_figure_data(results)
    blocks = [
        format_bar_chart(data["kernels"], title="Overall: average score per kernel"),
        "",
        format_bar_chart(data["languages"], title="Overall: average score per language"),
    ]
    rendered = "\n".join(blocks)
    if not include_paper:
        return rendered
    reference = paper_overall_figure_data()
    ref_blocks = [
        format_bar_chart(reference["kernels"], title="(paper) per kernel"),
        "",
        format_bar_chart(reference["languages"], title="(paper) per language"),
    ]
    return side_by_side(rendered, "\n".join(ref_blocks))
