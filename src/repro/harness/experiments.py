"""Experiment entry points: one per paper table/figure plus the ablations.

Every function returns an :class:`ExperimentReport` bundling the raw data,
the shape comparison against the paper and a ready-to-print text rendering.
The benchmark files in ``benchmarks/`` call these functions one-to-one (see
DESIGN.md §4 for the experiment index).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.core.aggregate import postfix_effect
from repro.core.compare import ShapeComparison, compare_to_paper
from repro.core.runner import EvaluationRunner, ResultSet
from repro.harness.figures import (
    FIGURE_LANGUAGES,
    figure_data,
    overall_figure_data,
    render_figure,
    render_overall_figure,
)
from repro.harness.tables import render_language_table
from repro.models.grid import experiment_grid
from repro.models.languages import get_language, language_names
from repro.popularity.maturity import MaturityModel

__all__ = [
    "ExperimentReport",
    "TABLE_LANGUAGES",
    "clear_result_cache",
    "run_language_results",
    "run_table",
    "run_figure",
    "run_overall_figure",
    "run_keyword_ablation",
    "run_maturity_ablation",
    "run_suggestion_count_ablation",
]

#: Paper table number → language (Table 2 = C++, ... Table 5 = Julia).
TABLE_LANGUAGES: dict[int, str] = {2: "cpp", 3: "fortran", 4: "python", 5: "julia"}


@dataclass
class ExperimentReport:
    """The outcome of one reproduced experiment."""

    #: Experiment identifier ("table2", "figure6", "ablation-keywords", ...).
    experiment_id: str
    #: Human-readable description.
    description: str
    #: Structured data (series / per-cell values) for programmatic use.
    data: dict[str, Any] = field(default_factory=dict)
    #: Shape comparison against the published values, when applicable.
    comparison: ShapeComparison | None = None
    #: Ready-to-print text rendering.
    text: str = ""

    def summary_line(self) -> str:
        """One line suitable for a benchmark log."""
        if self.comparison is None:
            return f"{self.experiment_id}: done"
        c = self.comparison
        return (
            f"{self.experiment_id}: rho={c.cell_rank_correlation:.2f} "
            f"within-one-level={c.within_one_level:.0%} "
            f"top-model-agrees={c.top_model_agrees}"
        )


# ---------------------------------------------------------------------------
# Shared runners, cached per (seed, language, config fingerprint).  Keying on
# the fingerprint (not identity, not "config is None") means figure N reuses
# table N's run, the keyword ablation reuses the full grid, and the ablation
# points whose config equals the default (maturity scale 1.0, suggestion
# budget 10) reuse the default runs — each grid cell is evaluated at most
# once per (seed, fingerprint).  The cache is LRU-bounded so long-lived
# processes sweeping many configs don't grow without limit.
# ---------------------------------------------------------------------------

_RESULT_CACHE: OrderedDict[tuple[int, str, str], ResultSet] = OrderedDict()
#: Upper bound on retained runs; comfortably holds the default grid plus the
#: standard ablation sweeps while capping parameter-sweep memory.
_RESULT_CACHE_MAX = 64


def clear_result_cache() -> None:
    """Drop every cached :class:`ResultSet` (test fixtures call this so runs
    cannot leak between seeds or configs)."""
    _RESULT_CACHE.clear()


def _cache_get(key: tuple[int, str, str]) -> ResultSet | None:
    result = _RESULT_CACHE.get(key)
    if result is not None:
        _RESULT_CACHE.move_to_end(key)
    return result


def _cache_put(key: tuple[int, str, str], value: ResultSet) -> None:
    _RESULT_CACHE[key] = value
    _RESULT_CACHE.move_to_end(key)
    while len(_RESULT_CACHE) > _RESULT_CACHE_MAX:
        _RESULT_CACHE.popitem(last=False)


def run_language_results(
    language: str,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ResultSet:
    """Evaluate all cells of one language's table.

    Results are memoized per (seed, language, config fingerprint); the
    ``backend`` only selects how a cache miss is computed — by the per-cell
    seeding contract every backend yields identical records.

    The returned :class:`ResultSet` is the shared cache entry — treat it as
    read-only and copy its results into a fresh set before adding to it
    (as :func:`run_full_results` does).
    """
    cfg = config if config is not None else CodexConfig()
    cache_key = (seed, language, cfg.fingerprint())
    cached = _cache_get(cache_key)
    if cached is None:
        with EvaluationRunner(config=cfg, seed=seed, backend=backend) as runner:
            cached = runner.run_language(language)
        _cache_put(cache_key, cached)
    return cached


def run_full_results(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ResultSet:
    """Evaluate the full grid (all four languages).

    Languages missing from the cache are evaluated through a single runner,
    so a parallel backend spins up one worker pool for the whole grid rather
    than one per language.
    """
    cfg = config if config is not None else CodexConfig()
    fingerprint = cfg.fingerprint()
    missing = [
        language
        for language in language_names()
        if _cache_get((seed, language, fingerprint)) is None
    ]
    if missing:
        with EvaluationRunner(config=cfg, seed=seed, backend=backend) as runner:
            for language in missing:
                _cache_put((seed, language, fingerprint), runner.run_language(language))
    combined = ResultSet(seed=seed)
    for language in language_names():
        for result in run_language_results(language, seed=seed, config=cfg, backend=backend):
            combined.add(result)
    return combined


# ---------------------------------------------------------------------------
# Tables 2-5
# ---------------------------------------------------------------------------

def run_table(
    number: int,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Reproduce Table ``number`` (2 = C++, 3 = Fortran, 4 = Python, 5 = Julia)."""
    if number not in TABLE_LANGUAGES:
        raise KeyError(f"the paper has no result table {number}; choose from {sorted(TABLE_LANGUAGES)}")
    language = TABLE_LANGUAGES[number]
    results = run_language_results(language, seed=seed, config=config, backend=backend)
    comparison = compare_to_paper(results, language)
    lang_display = get_language(language).display_name
    text = render_language_table(results, language)
    data = {
        "language": language,
        "records": results.to_records(),
        "cells": comparison.cells,
    }
    return ExperimentReport(
        experiment_id=f"table{number}",
        description=f"Table {number}: proficiency scores for {lang_display}",
        data=data,
        comparison=comparison,
        text=text,
    )


# ---------------------------------------------------------------------------
# Figures 2-6
# ---------------------------------------------------------------------------

def run_figure(
    number: int,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Reproduce Figure ``number`` (2 = C++, ..., 5 = Julia, 6 = overall)."""
    if number == 6:
        return run_overall_figure(seed=seed, config=config, backend=backend)
    if number not in FIGURE_LANGUAGES:
        raise KeyError(f"the paper has no figure {number}; choose from {sorted(FIGURE_LANGUAGES)} or 6")
    language = FIGURE_LANGUAGES[number]
    results = run_language_results(language, seed=seed, config=config, backend=backend)
    comparison = compare_to_paper(results, language)
    lang_display = get_language(language).display_name
    return ExperimentReport(
        experiment_id=f"figure{number}",
        description=f"Figure {number}: per-kernel and per-model averages for {lang_display}",
        data=figure_data(results, language),
        comparison=comparison,
        text=render_figure(results, language),
    )


def run_overall_figure(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Reproduce Figure 6: overall per-kernel and per-language averages."""
    results = run_full_results(seed=seed, config=config, backend=backend)
    data = overall_figure_data(results)
    return ExperimentReport(
        experiment_id="figure6",
        description="Figure 6: overall averages per kernel and per language",
        data=data,
        comparison=None,
        text=render_overall_figure(results),
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §4: A-KW, A-MAT, A-SUG)
# ---------------------------------------------------------------------------

def run_keyword_ablation(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """A-KW: effect of the post-fix keyword per language."""
    results = run_full_results(seed=seed, config=config, backend=backend)
    effects = {}
    for language in language_names():
        effects[language] = postfix_effect(results, language)
    lines = ["Keyword post-fix effect (mean score without -> with keyword)"]
    for language, effect in effects.items():
        lines.append(
            f"  {get_language(language).display_name:8s} "
            f"{effect['without_keyword']:.2f} -> {effect['with_keyword']:.2f} "
            f"(delta {effect['delta']:+.2f})"
        )
    return ExperimentReport(
        experiment_id="ablation-keywords",
        description="Effect of adding the language code keyword to the prompt",
        data={"effects": effects},
        text="\n".join(lines),
    )


def run_maturity_ablation(
    *,
    seed: int = DEFAULT_SEED,
    scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25),
    backend: str = "serial",
) -> ExperimentReport:
    """A-MAT: how the model-maturity prior weight shifts the score ordering.

    The ablation scales the weight of the model-maturity term in the
    availability prior and checks that the qualitative ordering (OpenMP/CUDA
    ahead of HIP/Thrust in C++) is stable.  Scale 1.0 fingerprints equal to
    the default config, so that point reuses the cached Table 2 run.
    """
    orderings: dict[float, list[str]] = {}
    stability: dict[float, bool] = {}
    for scale in scales:
        maturity = MaturityModel(model_weight=0.62 * scale)
        config = CodexConfig(maturity=maturity)
        results = run_language_results("cpp", seed=seed, config=config, backend=backend)
        from repro.core.aggregate import model_averages

        averages = model_averages(results, "cpp")
        ranked = sorted(averages, key=averages.get, reverse=True)
        orderings[scale] = ranked
        top3 = set(ranked[:3])
        stability[scale] = "cpp.openmp" in top3
    lines = ["Maturity-prior ablation (C++ model ranking per scale)"]
    for scale, ranked in orderings.items():
        names = ", ".join(uid.split(".")[1] for uid in ranked[:4])
        lines.append(f"  scale {scale:>4}: top models = {names} (OpenMP in top 3: {stability[scale]})")
    return ExperimentReport(
        experiment_id="ablation-maturity",
        description="Sensitivity of the C++ model ranking to the maturity prior weight",
        data={"orderings": orderings, "openmp_in_top3": stability},
        text="\n".join(lines),
    )


def run_suggestion_count_ablation(
    *,
    seed: int = DEFAULT_SEED,
    counts: tuple[int, ...] = (1, 3, 5, 10, 20),
    backend: str = "serial",
) -> ExperimentReport:
    """A-SUG: rubric behaviour as the suggestion budget changes.

    The paper evaluates the first ten suggestions; this ablation truncates or
    extends the budget and reports the mean score over the C++ grid, showing
    how the metric saturates (more suggestions can only move a cell between
    proficient and lower levels, never above).  The engine never emits more
    than ``max_suggestions`` completions, so each budget is a standard grid
    run under that config — and the budget-10 point reuses the cached
    default-config Table 2 run.
    """
    means: dict[int, float] = {}
    for count in counts:
        config = CodexConfig(max_suggestions=count)
        results = run_language_results("cpp", seed=seed, config=config, backend=backend)
        means[count] = results.mean_score()
    lines = ["Suggestion-budget ablation (mean C++ score per suggestion count)"]
    for count, mean in means.items():
        lines.append(f"  first {count:>2} suggestions: mean score {mean:.3f}")
    return ExperimentReport(
        experiment_id="ablation-suggestions",
        description="Sensitivity of the proficiency metric to the suggestion budget",
        data={"means": means},
        text="\n".join(lines),
    )


def run_everything(*, seed: int = DEFAULT_SEED, backend: str = "serial") -> dict[str, ExperimentReport]:
    """Run every table, figure and ablation (used by the CLI).

    The default-config grid is evaluated exactly once up front (optionally in
    parallel); every table, figure and the keyword ablation then resolve from
    the result cache, and the remaining ablations only evaluate the config
    points whose fingerprint differs from the default.
    """
    run_full_results(seed=seed, backend=backend)
    reports: dict[str, ExperimentReport] = {}
    for number in sorted(TABLE_LANGUAGES):
        report = run_table(number, seed=seed, backend=backend)
        reports[report.experiment_id] = report
    for number in (2, 3, 4, 5, 6):
        report = run_figure(number, seed=seed, backend=backend)
        reports[report.experiment_id] = report
    for report in (
        run_keyword_ablation(seed=seed, backend=backend),
        run_maturity_ablation(seed=seed, backend=backend),
        run_suggestion_count_ablation(seed=seed, backend=backend),
    ):
        reports[report.experiment_id] = report
    return reports


def full_grid_size() -> int:
    """Number of cells in the complete experiment grid (sanity helper)."""
    return len(experiment_grid())
