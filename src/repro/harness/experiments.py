"""Legacy experiment entry points — deprecated wrappers over :mod:`repro.api`.

Historically this module was the public surface: one free function per paper
table/figure plus the ablations, glued together by a module-global result
cache.  That surface is now :class:`repro.api.Session`, which owns caching,
backend selection and progress per session and adds declarative, shardable
:class:`repro.api.ExperimentSpec` runs.  Every ``run_*`` function below is a
thin wrapper that resolves through the *process-default* session
(:func:`repro.api.session.default_session`) and emits a
:class:`DeprecationWarning`; new code should hold a ``Session`` instead::

    from repro.api import Session

    with Session(seed=20230414, backend="process") as session:
        report = session.table(2)

:class:`ExperimentReport` and :data:`TABLE_LANGUAGES` still live here (the
api layer re-exports them), so importing this module stays cheap and
cycle-free.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.core.compare import ShapeComparison
from repro.core.runner import ResultSet
from repro.models.grid import experiment_grid

__all__ = [
    "ExperimentReport",
    "TABLE_LANGUAGES",
    "clear_result_cache",
    "run_language_results",
    "run_table",
    "run_figure",
    "run_overall_figure",
    "run_keyword_ablation",
    "run_maturity_ablation",
    "run_suggestion_count_ablation",
]

#: Paper table number → language (Table 2 = C++, ... Table 5 = Julia).
TABLE_LANGUAGES: dict[int, str] = {2: "cpp", 3: "fortran", 4: "python", 5: "julia"}


@dataclass
class ExperimentReport:
    """The outcome of one reproduced experiment."""

    #: Experiment identifier ("table2", "figure6", "ablation-keywords", ...).
    experiment_id: str
    #: Human-readable description.
    description: str
    #: Structured data (series / per-cell values) for programmatic use.
    data: dict[str, Any] = field(default_factory=dict)
    #: Shape comparison against the published values, when applicable.
    comparison: ShapeComparison | None = None
    #: Ready-to-print text rendering.
    text: str = ""

    def summary_line(self) -> str:
        """One line suitable for a benchmark log."""
        if self.comparison is None:
            return f"{self.experiment_id}: done"
        c = self.comparison
        return (
            f"{self.experiment_id}: rho={c.cell_rank_correlation:.2f} "
            f"within-one-level={c.within_one_level:.0%} "
            f"top-model-agrees={c.top_model_agrees}"
        )


# ---------------------------------------------------------------------------
# Deprecated wrappers.  Imports of repro.api happen lazily inside the
# functions: repro.api.session imports this module for ExperimentReport /
# TABLE_LANGUAGES, so a top-level import here would be circular.
# ---------------------------------------------------------------------------

def _session():
    from repro.api.session import default_session

    return default_session()


def _warn(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.harness.experiments.{name} is deprecated; use repro.api.{replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def clear_result_cache() -> None:
    """Deprecated: drop the process-default session's cached results.

    The result cache is session-scoped now; hold your own
    :class:`repro.api.Session` (tests get a fresh default session per test
    via ``reset_default_session``, see ``tests/conftest.py``).
    """
    _warn("clear_result_cache", "Session (caches are session-scoped)")
    _session().clear_cache()


def run_language_results(
    language: str,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ResultSet:
    """Deprecated: use :meth:`repro.api.Session.language_results`."""
    _warn("run_language_results", "Session.language_results")
    return _session().language_results(language, seed=seed, config=config, backend=backend)


def run_full_results(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ResultSet:
    """Deprecated: use :meth:`repro.api.Session.full_results`."""
    _warn("run_full_results", "Session.full_results")
    return _session().full_results(seed=seed, config=config, backend=backend)


def run_table(
    number: int,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.table`."""
    _warn("run_table", "Session.table")
    return _session().table(number, seed=seed, config=config, backend=backend)


def run_figure(
    number: int,
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.figure`."""
    _warn("run_figure", "Session.figure")
    return _session().figure(number, seed=seed, config=config, backend=backend)


def run_overall_figure(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.overall_figure`."""
    _warn("run_overall_figure", "Session.overall_figure")
    return _session().overall_figure(seed=seed, config=config, backend=backend)


def run_keyword_ablation(
    *,
    seed: int = DEFAULT_SEED,
    config: CodexConfig | None = None,
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.ablation` ("keywords")."""
    _warn("run_keyword_ablation", 'Session.ablation("keywords")')
    return _session().keyword_ablation(seed=seed, config=config, backend=backend)


def run_maturity_ablation(
    *,
    seed: int = DEFAULT_SEED,
    scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25),
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.ablation` ("maturity")."""
    _warn("run_maturity_ablation", 'Session.ablation("maturity")')
    return _session().maturity_ablation(seed=seed, scales=scales, backend=backend)


def run_suggestion_count_ablation(
    *,
    seed: int = DEFAULT_SEED,
    counts: tuple[int, ...] = (1, 3, 5, 10, 20),
    backend: str = "serial",
) -> ExperimentReport:
    """Deprecated: use :meth:`repro.api.Session.ablation` ("suggestions")."""
    _warn("run_suggestion_count_ablation", 'Session.ablation("suggestions")')
    return _session().suggestion_count_ablation(seed=seed, counts=counts, backend=backend)


def run_everything(*, seed: int = DEFAULT_SEED, backend: str = "serial") -> dict[str, ExperimentReport]:
    """Deprecated: use :meth:`repro.api.Session.run_everything`."""
    _warn("run_everything", "Session.run_everything")
    return _session().run_everything(seed=seed, backend=backend)


def full_grid_size() -> int:
    """Number of cells in the complete experiment grid (sanity helper)."""
    return len(experiment_grid())


# ---------------------------------------------------------------------------
# Compatibility shims for the old module-global cache internals: they mirror
# the *current* default session's cache so pre-existing introspection (and
# tests) keep working.
# ---------------------------------------------------------------------------

def _cache_get(key: tuple[int, str, str]) -> ResultSet | None:
    return _session()._cache_get(key)


def _cache_put(key: tuple[int, str, str], value: ResultSet) -> None:
    _session()._cache_put(key, value)


def __getattr__(name: str):
    if name == "_RESULT_CACHE":
        return _session()._cache
    if name == "_RESULT_CACHE_MAX":
        return _session()._cache_max
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
