"""Reproduction harness: rendering, persistence and the CLI.

The supported programmatic surface is :mod:`repro.api` — hold a
:class:`repro.api.Session` and call ``session.table(2)`` /
``session.figure(6)`` / ``session.ablation("keywords")`` /
``session.run(spec)``.  Within this package,
:mod:`repro.harness.tables` and :mod:`repro.harness.figures` render
artefacts as text; :mod:`repro.harness.io` persists raw per-cell records;
:mod:`repro.harness.cli` wires everything (including the ``shard`` /
``merge`` subcommands) into the ``repro-hpc-codex`` command-line tool; and
:mod:`repro.harness.experiments` keeps the legacy free functions alive as
deprecated wrappers over the process-default session.
"""

from __future__ import annotations

from repro.harness.experiments import (
    ExperimentReport,
    run_table,
    run_figure,
    run_overall_figure,
    run_keyword_ablation,
    run_maturity_ablation,
    run_suggestion_count_ablation,
    TABLE_LANGUAGES,
)
from repro.harness.tables import render_language_table
from repro.harness.figures import figure_data, render_figure

__all__ = [
    "ExperimentReport",
    "run_table",
    "run_figure",
    "run_overall_figure",
    "run_keyword_ablation",
    "run_maturity_ablation",
    "run_suggestion_count_ablation",
    "TABLE_LANGUAGES",
    "render_language_table",
    "figure_data",
    "render_figure",
]
