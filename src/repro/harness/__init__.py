"""Reproduction harness: one entry point per table and figure of the paper.

The functions in :mod:`repro.harness.experiments` regenerate the paper's
artefacts (Tables 2-5, Figures 2-6) plus the ablations listed in DESIGN.md;
:mod:`repro.harness.tables` and :mod:`repro.harness.figures` render them as
text; :mod:`repro.harness.io` persists raw per-cell records; and
:mod:`repro.harness.cli` wires everything into the ``repro-hpc-codex``
command-line tool.
"""

from __future__ import annotations

from repro.harness.experiments import (
    ExperimentReport,
    run_table,
    run_figure,
    run_overall_figure,
    run_keyword_ablation,
    run_maturity_ablation,
    run_suggestion_count_ablation,
    TABLE_LANGUAGES,
)
from repro.harness.tables import render_language_table
from repro.harness.figures import figure_data, render_figure

__all__ = [
    "ExperimentReport",
    "run_table",
    "run_figure",
    "run_overall_figure",
    "run_keyword_ablation",
    "run_maturity_ablation",
    "run_suggestion_count_ablation",
    "TABLE_LANGUAGES",
    "render_language_table",
    "figure_data",
    "render_figure",
]
