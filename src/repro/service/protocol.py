"""The wire protocol of the evaluation service: JSON-RPC 2.0 over NDJSON.

One TCP connection carries newline-delimited JSON: every line is exactly
one JSON-RPC 2.0 message, serialised compactly with sorted keys
(:func:`encode`), so a transcript of a deterministic interaction is
byte-stable and can be pinned in golden files.  Three message shapes exist
(the Godoty protocol's request/response/event split):

* **Requests** carry ``id`` and ``method``; the server answers each with
  exactly one response echoing the ``id`` verbatim.
* **Responses** carry the matching ``id`` plus either ``result`` or
  ``error`` (never both).
* **Events** (server→client notifications) carry ``method`` and ``params``
  but no ``id``; no reply is expected.

The protocol is versioned through the ``hello`` handshake: the client's
``protocol_version`` must equal :data:`PROTOCOL_VERSION` exactly, or the
server refuses with :data:`ERR_VERSION_MISMATCH` — wire-format evolution is
a version bump, never a silent behaviour change.

Error codes follow JSON-RPC 2.0: the reserved codes for envelope failures
(:data:`PARSE_ERROR` … :data:`INVALID_PARAMS`) and implementation-defined
codes in the ``-32000`` range for service states (version mismatch, missing
handshake, queue full, unknown experiment, …).  See ``docs/protocol.md``
for the full method/event/error tables.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "ERR_HANDSHAKE_REQUIRED",
    "ERR_NOT_FINISHED",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ERR_UNKNOWN_EXPERIMENT",
    "ERR_VERSION_MISMATCH",
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "JSONRPC_VERSION",
    "METHOD_NOT_FOUND",
    "PARSE_ERROR",
    "PROTOCOL_VERSION",
    "SERVER_NAME",
    "ServiceError",
    "encode",
    "error_response",
    "notification",
    "request",
    "response",
]

#: The JSON-RPC envelope version every message must carry.
JSONRPC_VERSION = "2.0"

#: Version negotiated by the ``hello`` handshake.  Bump on any change to
#: the method table, event payloads or error codes; old clients are then
#: refused explicitly instead of misparsing the stream.
PROTOCOL_VERSION = "1.0"

#: Server identity reported by the handshake.
SERVER_NAME = "repro-hpc-codex"

# -- reserved JSON-RPC 2.0 error codes ---------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- implementation-defined codes (-32000..-32099, per the JSON-RPC spec) ----
#: ``hello`` carried a protocol version the server does not speak.
ERR_VERSION_MISMATCH = -32001
#: A method other than ``hello`` arrived before the handshake completed
#: (or ``hello`` arrived twice).
ERR_HANDSHAKE_REQUIRED = -32002
#: The bounded request queue is full; the submit was rejected, not buffered.
ERR_QUEUE_FULL = -32003
#: The experiment id is unknown *to this client session* (isolation: other
#: sessions' experiments are indistinguishable from nonexistent ones).
ERR_UNKNOWN_EXPERIMENT = -32004
#: ``result`` was called before the experiment reached a terminal state.
ERR_NOT_FINISHED = -32005
#: The server is draining for shutdown and accepts no new work.
ERR_SHUTTING_DOWN = -32006


class ServiceError(Exception):
    """A typed protocol error: carried as a JSON-RPC error object.

    Raised inside method handlers (server side) and re-raised from error
    responses (client side); ``data`` is an optional JSON-serialisable
    payload with machine-readable detail.
    """

    def __init__(self, code: int, message: str, data: Any = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data

    def to_payload(self) -> dict:
        error: dict = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return error


def encode(message: dict) -> bytes:
    """One wire line: compact JSON, sorted keys, trailing newline.

    Compact separators and key sorting make the serialisation canonical —
    the same message object always produces the same bytes, which is what
    lets the conformance suite pin transcripts byte-for-byte.
    """
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def request(method: str, params: dict | None, id: Any) -> dict:
    message: dict = {"jsonrpc": JSONRPC_VERSION, "method": method, "id": id}
    if params is not None:
        message["params"] = params
    return message


def response(id: Any, result: Any) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": id, "result": result}


def error_response(id: Any, error: ServiceError) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": id, "error": error.to_payload()}


def notification(method: str, params: dict) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "method": method, "params": params}
