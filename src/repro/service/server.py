"""The long-lived evaluation service: an asyncio JSON-RPC 2.0 TCP server.

An :class:`EvaluationServer` wraps one :class:`repro.api.Session` behind the
newline-delimited JSON-RPC protocol of :mod:`repro.service.protocol` and
serves many concurrent clients:

* **Handshake** — every connection must open with a versioned ``hello``;
  a protocol-version mismatch is refused with a typed error, never
  misparsed.
* **Submission** — ``submit`` accepts a declarative
  :class:`~repro.api.spec.ExperimentSpec` payload and answers immediately
  with an experiment id; the evaluation itself runs on a bounded pool of
  worker tasks fed from a **bounded queue** (an over-full server answers
  ``queue-full`` explicitly instead of buffering silently).
* **Streaming** — while an experiment runs, the submitting client receives
  ``progress`` events per evaluated cell and ``shard`` events per completed
  shard (carrying an incremental table snapshot of the partial merge), both
  in submission order — the same ordering contract
  :class:`~repro.core.runner.EvaluationRunner` and
  :class:`~repro.api.spec.IncrementalMerge` give in-process callers,
  extended over the wire.  A terminal ``state`` event closes the stream.
* **Isolation** — experiments belong to the client session that submitted
  them; another session's ``status``/``cancel``/``result`` sees
  ``unknown experiment``.  All sessions share the server's pooled runners
  (:meth:`repro.api.Session.runner`) and its VerdictStore/ResultStore.
* **Durability** — every executed shard is persisted to the
  :class:`~repro.dispatch.store.ResultStore` the moment it completes, so a
  killed server re-serves a re-submitted spec from the store with **zero**
  re-executed shards, and a graceful ``shutdown`` (stop at the next shard
  boundary, everything completed already persisted) never loses more than
  the shard in flight.
* **Containment** — a shard whose evaluation keeps crashing is retried and
  then quarantined exactly like a dispatch shard
  (:func:`repro.dispatch.runners.evaluate_with_retries`); the experiment
  finishes ``degraded`` with the surviving cells, never wedges the server.

A complete experiment's ``result`` records are byte-identical to
``Session.run`` (and therefore to ``run --json``) for the same spec — the
per-cell seeding contract survives the wire.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import threading
from pathlib import Path
from typing import Callable

from repro.analysis.store import VerdictStore
from repro.api.session import Session
from repro.api.spec import ExperimentSpec, IncrementalMerge
from repro.codex.config import DEFAULT_SEED
from repro.core.runner import ResultSet
from repro.dispatch.runners import evaluate_with_retries, shard_label
from repro.dispatch.store import ResultStore
from repro.service import protocol
from repro.service.protocol import ServiceError

__all__ = ["EvaluationServer", "ServerThread", "TERMINAL_STATES"]

#: Experiment states that end the event stream (``state`` notification).
TERMINAL_STATES: tuple[str, ...] = ("done", "degraded", "cancelled", "failed")

#: Default per-seed shard count experiments are partitioned into.
DEFAULT_SHARDS = 4

#: Default bound of the request queue (queued + running experiments).
DEFAULT_QUEUE_LIMIT = 8

#: Default number of concurrent experiment worker tasks.
DEFAULT_WORKERS = 2

#: Byte limit of one inbound NDJSON line (submit payloads are tiny; this
#: mostly guards the reader against a client streaming garbage).
MAX_LINE_BYTES = 1 << 20


class _Connection:
    """One client connection: its writer, send lock and handshake state."""

    __slots__ = ("writer", "lock", "session_id", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.session_id: str | None = None
        self.closed = False


class _Experiment:
    """One submitted experiment: spec, owner, live counters, terminal data.

    Counter fields are plain ints written by the single worker thread that
    executes the experiment and read by loop-thread handlers — the GIL makes
    the reads safe, and ``cells_done`` is re-anchored to the authoritative
    merge size at every shard boundary (a crashed-and-retried shard may have
    emitted progress for cells whose attempt was then discarded).
    """

    __slots__ = (
        "id", "spec", "shards", "owner", "conn", "state", "finished",
        "cancel", "cells_total", "cells_done", "shards_done", "executed",
        "skipped", "quarantined", "records", "error",
    )

    def __init__(self, id: str, spec: ExperimentSpec, shards: int, conn: _Connection) -> None:
        self.id = id
        self.spec = spec
        self.shards = shards
        self.owner = conn.session_id
        self.conn = conn
        self.state = "queued"
        self.finished = False
        self.cancel = threading.Event()
        self.cells_total = len(spec.cells())
        self.cells_done = 0
        self.shards_done = 0
        self.executed = 0
        self.skipped = 0
        self.quarantined: list[dict] = []
        self.records: list[dict] | None = None
        self.error: str | None = None

    @property
    def shards_total(self) -> int:
        return self.shards

    def status_payload(self) -> dict:
        return {
            "state": self.state,
            "done": self.cells_done,
            "total": self.cells_total,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "executed": self.executed,
            "skipped": self.skipped,
            "quarantined": list(self.quarantined),
            "error": self.error,
        }


class _ProgressRouter:
    """Routes shared-runner progress callbacks to the right experiment.

    The server's pooled runners are shared across experiments, but a
    runner's ``progress`` callback is fixed at creation — so every runner
    gets this router, and each worker *thread* binds its experiment's sink
    before evaluating.  Routing by thread is exact: a cell's progress fires
    on the thread that evaluates it, and one experiment runs wholly on one
    worker thread.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def bind(self, sink: Callable | None) -> None:
        self._local.sink = sink

    def __call__(self, result) -> None:
        sink = getattr(self._local, "sink", None)
        if sink is not None:
            sink(result)


def _table_snapshot(results: ResultSet | None) -> dict:
    """Incremental table snapshot of a partial merge: per-language means.

    What a live dashboard renders as shards land — the same aggregation the
    final language tables are built from, over however many cells have
    merged so far.  Scores are rounded so snapshots stay compact and the
    serialisation byte-stable.
    """
    if results is None or len(results) == 0:
        return {"cells": 0, "mean_score": 0.0, "languages": {}}
    languages = sorted({result.cell.language for result in results})
    return {
        "cells": len(results),
        "mean_score": round(results.mean_score(), 4),
        "languages": {
            language: round(results.filter(language=language).mean_score(), 4)
            for language in languages
        },
    }


class EvaluationServer:
    """Serve :class:`~repro.api.Session` evaluations over JSON-RPC 2.0/TCP.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (read :attr:`port` after
        :meth:`start`).
    shards:
        Default per-seed shard count of submitted experiments (a ``submit``
        may override per call).
    queue_limit:
        Bound of the request queue — queued plus running experiments; a
        submit beyond it is refused with :data:`~repro.service.protocol.ERR_QUEUE_FULL`.
    workers:
        Concurrent experiment worker tasks (each evaluates on its own
        thread; runners/stores are shared).
    max_attempts:
        Failed attempts before a shard is quarantined (default 3, the
        dispatch layer's policy).
    result_store:
        Shard-level persistence (path / ``True`` / store / ``None``):
        completed shards survive the process, so restarts resume warm.
    verdict_store:
        Suggestion-level persistence, shared by every runner the server
        creates (see :class:`~repro.analysis.store.VerdictStore`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: int = DEFAULT_SHARDS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        workers: int = DEFAULT_WORKERS,
        max_attempts: int = 3,
        result_store: ResultStore | str | Path | bool | None = None,
        verdict_store: VerdictStore | str | Path | bool | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.host = host
        self.port = port
        self.shards = shards
        self.queue_limit = queue_limit
        self.workers = workers
        self.max_attempts = max_attempts
        self.result_store = ResultStore.coerce(result_store)
        self._router = _ProgressRouter()
        self._session = Session(progress=self._router, verdict_store=verdict_store)
        self._experiments: dict[str, _Experiment] = {}
        self._active = 0
        self._session_ids = itertools.count(1)
        self._experiment_ids = itertools.count(1)
        self._connections: set[_Connection] = set()
        self._shutting_down = False
        #: Set when the serve loop was started (bind succeeded; port known).
        self.ready = threading.Event()
        self.loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._finish_sends: set[asyncio.Task] = set()
        self._stopped: asyncio.Event | None = None
        self._methods = {
            "hello": self._handle_hello,
            "submit": self._handle_submit,
            "status": self._handle_status,
            "cancel": self._handle_cancel,
            "result": self._handle_result,
            "shutdown": self._handle_shutdown,
        }

    # -- lifecycle --------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the worker tasks."""
        self.loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker()) for _ in range(self.workers)
        ]
        self.ready.set()

    async def wait_closed(self) -> None:
        """Block until the server stops, then release every resource."""
        try:
            await self._stopped.wait()
        finally:
            await self._close()

    async def run(self) -> None:
        """:meth:`start` + :meth:`wait_closed` — the whole server lifetime."""
        await self.start()
        await self.wait_closed()

    def request_stop(self) -> None:
        """Thread-safe hard stop (the test suite's ``kill -9`` stand-in)."""
        if self.loop is not None and self._stopped is not None:
            self.loop.call_soon_threadsafe(self._stopped.set)

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._worker_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        for conn in list(self._connections):
            conn.closed = True
            conn.writer.close()
            with contextlib.suppress(Exception):
                await conn.writer.wait_closed()
        self._connections.clear()
        self._session.close()

    async def _graceful(self) -> None:
        """Drain for shutdown: running experiments stop at the next shard
        boundary (everything completed is already in the result store),
        queued ones are cancelled, then the serve loop exits."""
        for experiment in list(self._experiments.values()):
            if not experiment.finished:
                experiment.cancel.set()
                if experiment.state == "queued":
                    self._finish(experiment, "cancelled")
        for _ in self._worker_tasks:
            self._queue.put_nowait(None)
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        # Flush terminal state events before tearing connections down —
        # sends on a connection are lock-ordered, so once these complete,
        # every earlier progress/shard event is on the wire too.
        await asyncio.gather(*list(self._finish_sends), return_exceptions=True)
        self._stopped.set()

    # -- connection handling ------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line over MAX_LINE_BYTES: unparseable by construction.
                    await self._send(
                        conn,
                        protocol.error_response(
                            None, ServiceError(protocol.PARSE_ERROR, "parse error: line too long")
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(conn, line)
        finally:
            conn.closed = True
            self._connections.discard(conn)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, conn: _Connection, message: dict) -> None:
        if conn.closed:
            return
        try:
            async with conn.lock:
                conn.writer.write(protocol.encode(message))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            # The client went away mid-stream: drop this (and every later)
            # message; the experiment keeps running and keeps persisting.
            conn.closed = True

    def _emit_threadsafe(self, experiment: _Experiment, method: str, params: dict) -> None:
        """Push one event to the owning client from a worker thread."""
        conn = experiment.conn
        if conn is None or conn.closed or self.loop is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._send(conn, protocol.notification(method, params)), self.loop
        )

    # -- request dispatch -----------------------------------------------------------
    async def _handle_line(self, conn: _Connection, raw: bytes) -> None:
        try:
            message = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            await self._send(
                conn,
                protocol.error_response(
                    None, ServiceError(protocol.PARSE_ERROR, "parse error: invalid JSON")
                ),
            )
            return
        if not isinstance(message, dict):
            await self._send(
                conn,
                protocol.error_response(
                    None,
                    ServiceError(
                        protocol.INVALID_REQUEST,
                        "invalid request: expected one JSON-RPC object per line",
                    ),
                ),
            )
            return
        has_id = "id" in message
        request_id = message.get("id")
        method = message.get("method")
        if message.get("jsonrpc") != protocol.JSONRPC_VERSION or not isinstance(method, str):
            if has_id:
                await self._send(
                    conn,
                    protocol.error_response(
                        request_id,
                        ServiceError(
                            protocol.INVALID_REQUEST,
                            'invalid request: need jsonrpc "2.0" and a string method',
                        ),
                    ),
                )
            return
        params = message.get("params", {})
        if not isinstance(params, dict):
            if has_id:
                await self._send(
                    conn,
                    protocol.error_response(
                        request_id,
                        ServiceError(protocol.INVALID_PARAMS, "params must be an object"),
                    ),
                )
            return
        if not has_id:
            # Client notifications: none are defined; dropped per JSON-RPC.
            return
        handler = self._methods.get(method)
        try:
            if handler is None:
                raise ServiceError(protocol.METHOD_NOT_FOUND, f"method not found: {method}")
            if conn.session_id is None and method != "hello":
                raise ServiceError(
                    protocol.ERR_HANDSHAKE_REQUIRED,
                    "handshake required: open the connection with hello",
                )
            result = handler(conn, params)
        except ServiceError as err:
            await self._send(conn, protocol.error_response(request_id, err))
            return
        except Exception as exc:  # containment: a handler bug must not kill the loop
            await self._send(
                conn,
                protocol.error_response(
                    request_id,
                    ServiceError(protocol.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"),
                ),
            )
            return
        await self._send(conn, protocol.response(request_id, result))

    # -- method handlers --------------------------------------------------------
    def _handle_hello(self, conn: _Connection, params: dict) -> dict:
        if conn.session_id is not None:
            raise ServiceError(
                protocol.ERR_HANDSHAKE_REQUIRED, "handshake already completed on this connection"
            )
        version = params.get("protocol_version")
        if version is None:
            raise ServiceError(protocol.INVALID_PARAMS, "hello requires protocol_version")
        if version != protocol.PROTOCOL_VERSION:
            raise ServiceError(
                protocol.ERR_VERSION_MISMATCH,
                f"unsupported protocol version {version!r}; "
                f"this server speaks {protocol.PROTOCOL_VERSION}",
                data={"server": protocol.PROTOCOL_VERSION, "client": version},
            )
        conn.session_id = f"s-{next(self._session_ids):06d}"
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "server": protocol.SERVER_NAME,
            "session_id": conn.session_id,
            "queue_limit": self.queue_limit,
        }

    def _handle_submit(self, conn: _Connection, params: dict) -> dict:
        if self._shutting_down:
            raise ServiceError(protocol.ERR_SHUTTING_DOWN, "server is shutting down")
        spec, shards = self._parse_submit(params)
        if self._active >= self.queue_limit:
            raise ServiceError(
                protocol.ERR_QUEUE_FULL,
                f"request queue is full ({self._active}/{self.queue_limit} experiments active)",
                data={"limit": self.queue_limit, "active": self._active},
            )
        experiment = _Experiment(f"exp-{next(self._experiment_ids):06d}", spec, shards, conn)
        self._experiments[experiment.id] = experiment
        self._active += 1
        self._queue.put_nowait(experiment)
        return {
            "experiment_id": experiment.id,
            "cells": experiment.cells_total,
            "shards": shards,
        }

    def _parse_submit(self, params: dict) -> tuple[ExperimentSpec, int]:
        payload = params.get("spec")
        if not isinstance(payload, dict):
            raise ServiceError(protocol.INVALID_PARAMS, "submit requires a spec object")
        known = {"seed", "seeds", "languages", "models", "kernels", "fingerprint"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(
                protocol.INVALID_PARAMS, f"unknown spec fields: {', '.join(unknown)}"
            )
        seeds = payload.get("seeds")
        if seeds is None:
            seeds = [payload.get("seed", DEFAULT_SEED)]
        if not isinstance(seeds, list) or not all(isinstance(seed, int) for seed in seeds):
            raise ServiceError(protocol.INVALID_PARAMS, "seeds must be a list of integers")
        if len(seeds) != 1:
            raise ServiceError(
                protocol.INVALID_PARAMS,
                "multi-seed specs are not supported over the service; "
                "submit one experiment per seed",
            )
        try:
            spec = ExperimentSpec(
                seeds=tuple(seeds),
                languages=_optional_names(payload, "languages"),
                models=_optional_names(payload, "models"),
                kernels=_optional_names(payload, "kernels"),
            )
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise ServiceError(protocol.INVALID_PARAMS, f"invalid spec: {exc}")
        fingerprint = payload.get("fingerprint")
        if fingerprint is not None and fingerprint != spec.fingerprint():
            # The queue's trust-the-manifest rule, applied at the front door:
            # a client configured differently from the server must find out
            # now, not from byte-different records later.
            raise ServiceError(
                protocol.INVALID_PARAMS,
                f"config fingerprint mismatch: client sent {fingerprint}, "
                f"this server evaluates {spec.fingerprint()}",
            )
        shards = params.get("shards", self.shards)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ServiceError(protocol.INVALID_PARAMS, "shards must be a positive integer")
        return spec, shards

    def _lookup(self, conn: _Connection, params: dict) -> _Experiment:
        experiment_id = params.get("experiment_id")
        if not isinstance(experiment_id, str):
            raise ServiceError(protocol.INVALID_PARAMS, "experiment_id must be a string")
        experiment = self._experiments.get(experiment_id)
        # Session isolation: another session's experiment is
        # indistinguishable from a nonexistent one.
        if experiment is None or experiment.owner != conn.session_id:
            raise ServiceError(
                protocol.ERR_UNKNOWN_EXPERIMENT, f"unknown experiment: {experiment_id}"
            )
        return experiment

    def _handle_status(self, conn: _Connection, params: dict) -> dict:
        return self._lookup(conn, params).status_payload()

    def _handle_cancel(self, conn: _Connection, params: dict) -> dict:
        experiment = self._lookup(conn, params)
        if not experiment.finished:
            experiment.cancel.set()
            if experiment.state == "queued":
                self._finish(experiment, "cancelled")
        return {"state": experiment.state}

    def _handle_result(self, conn: _Connection, params: dict) -> dict:
        experiment = self._lookup(conn, params)
        if not experiment.finished:
            raise ServiceError(
                protocol.ERR_NOT_FINISHED,
                f"experiment {experiment.id} is {experiment.state}; "
                "wait for its terminal state event",
                data={"state": experiment.state},
            )
        return {
            "state": experiment.state,
            "records": experiment.records or [],
            "quarantined": list(experiment.quarantined),
        }

    def _handle_shutdown(self, conn: _Connection, params: dict) -> dict:
        if not self._shutting_down:
            self._shutting_down = True
            self.loop.create_task(self._graceful())
        return {"stopping": True}

    # -- experiment execution -----------------------------------------------------
    async def _worker(self) -> None:
        while True:
            experiment = await self._queue.get()
            if experiment is None:
                return
            if experiment.finished:  # cancelled while queued
                continue
            experiment.state = "running"
            try:
                final = await asyncio.to_thread(self._execute, experiment)
            except Exception as exc:  # containment: a driver bug finishes the
                experiment.error = f"{type(exc).__name__}: {exc}"  # experiment,
                final = "failed"  # never the worker task
            self._finish(experiment, final)

    def _finish(self, experiment: _Experiment, state: str) -> None:
        """Terminal transition (loop thread): release the queue slot once
        and close the event stream with a ``state`` notification."""
        if experiment.finished:
            return
        experiment.state = state
        experiment.finished = True
        self._active -= 1
        conn = experiment.conn
        if conn is not None and not conn.closed:
            task = self.loop.create_task(
                self._send(
                    conn,
                    protocol.notification(
                        "state",
                        {"experiment_id": experiment.id, **experiment.status_payload()},
                    ),
                )
            )
            self._finish_sends.add(task)
            task.add_done_callback(self._finish_sends.discard)

    def _execute(self, experiment: _Experiment) -> str:
        """Evaluate one experiment on this worker thread; returns the final
        state.  Shards are resolved one by one — store hit, evaluation with
        retries, or quarantine — and every executed shard is persisted
        before its events fire, exactly like a dispatch."""
        spec = experiment.spec
        seed = spec.seeds[0]
        merge = IncrementalMerge()
        plan = spec.partition(experiment.shards)

        def on_cell(result) -> None:
            experiment.cells_done += 1
            self._emit_threadsafe(
                experiment,
                "progress",
                {
                    "experiment_id": experiment.id,
                    "done": experiment.cells_done,
                    "total": experiment.cells_total,
                    "record": result.to_record(),
                },
            )

        self._router.bind(on_cell)
        try:
            for shard in plan:
                if experiment.cancel.is_set():
                    break
                entry = shard.entry()
                label = shard_label(shard)
                hit = None if self.result_store is None else self.result_store.get(entry)
                if hit is not None:
                    experiment.skipped += 1
                    results, source = hit, "store"
                    for record in results:
                        on_cell(record)
                else:
                    runner = self._session.runner(shard.seed, spec.config)
                    results, failures, _ = evaluate_with_retries(
                        runner, shard, label=label, max_attempts=self.max_attempts
                    )
                    if results is None:
                        last = failures[-1]
                        experiment.quarantined.append(
                            {
                                "shard": label,
                                "error": last.get("error", "unknown"),
                                "message": last.get("message", ""),
                                "attempts": len(failures),
                            }
                        )
                        experiment.shards_done += 1
                        self._emit_shard(experiment, entry, "quarantined", merge)
                        continue
                    experiment.executed += 1
                    if self.result_store is not None:
                        self.result_store.put(entry, results)
                    source = "executed"
                merge.add(entry, results)
                # Re-anchor to the merge: retried shards may have emitted
                # progress for attempts whose cells were then discarded.
                experiment.cells_done = merge.cells_merged
                experiment.shards_done += 1
                self._emit_shard(experiment, entry, source, merge)
        finally:
            self._router.bind(None)
        merged = merge.partial().get(seed)
        if experiment.cancel.is_set() and experiment.shards_done < len(plan):
            experiment.records = [] if merged is None else merged.to_records()
            return "cancelled"
        if experiment.quarantined:
            experiment.records = [] if merged is None else merged.to_records()
            return "degraded"
        # Complete: validate through the manifest, exactly like a dispatch —
        # an incomplete merge must never masquerade as a finished experiment.
        experiment.records = merge.merged()[seed].to_records()
        return "done"

    def _emit_shard(
        self, experiment: _Experiment, entry, source: str, merge: IncrementalMerge
    ) -> None:
        partial = merge.partial().get(experiment.spec.seeds[0])
        params = {
            "experiment_id": experiment.id,
            "entry": entry.to_payload(),
            "source": source,
            "done": experiment.cells_done,
            "total": experiment.cells_total,
            "shards_done": experiment.shards_done,
            "shards_total": experiment.shards_total,
            "snapshot": _table_snapshot(partial),
        }
        if source == "quarantined":
            params["failure"] = dict(experiment.quarantined[-1])
        self._emit_threadsafe(experiment, "shard", params)


def _optional_names(payload: dict, key: str) -> tuple | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, list) or not all(isinstance(name, str) for name in value):
        raise ServiceError(protocol.INVALID_PARAMS, f"{key} must be a list of strings")
    return tuple(value)


class ServerThread:
    """Run an :class:`EvaluationServer` on a background thread.

    The harness the tests (and anything embedding the service) use: start,
    read the bound :attr:`port`, talk to it over real sockets, then
    :meth:`stop` — which is a *hard* stop, the in-process stand-in for
    ``kill -9``; use the protocol's ``shutdown`` method for a graceful exit.
    """

    def __init__(self, **kwargs) -> None:
        self.server = EvaluationServer(**kwargs)
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.server.run()),
            name="repro-service",
            daemon=True,
        )

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self.server.ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("evaluation server failed to start")
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Hard-stop the server and join its thread (idempotent)."""
        self.server.request_stop()
        self._thread.join(timeout)

    def join(self, timeout: float = 30.0) -> bool:
        """Wait for the server to exit on its own (e.g. after ``shutdown``)."""
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
