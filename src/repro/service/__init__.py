"""The long-lived evaluation service: JSON-RPC 2.0 over NDJSON over TCP.

The step from "library + CLI" to "system serving traffic": a persistent
:class:`~repro.service.server.EvaluationServer` wraps one
:class:`~repro.api.Session` and serves `ExperimentSpec` submissions from
many concurrent clients, streaming per-cell ``progress`` and per-shard
``shard`` events as evaluation lands.  See ``docs/protocol.md`` for the
wire format and :mod:`repro.service.client` for the blocking client
(also the ``python -m repro.service.client`` round-trip tool).

Start a server with the CLI::

    repro-hpc-codex serve --port 7349 --result-store ./shards

or embed one (tests do this via :class:`~repro.service.server.ServerThread`)::

    from repro.service import ServerThread, connect

    with ServerThread(result_store=True) as handle:
        client = connect(port=handle.port)
        experiment = client.submit(languages=["julia"])
        client.wait(experiment)
"""

from repro.service.protocol import (  # noqa: F401
    ERR_HANDSHAKE_REQUIRED,
    ERR_NOT_FINISHED,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_EXPERIMENT,
    ERR_VERSION_MISMATCH,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    PROTOCOL_VERSION,
    ServiceError,
)

__all__ = [
    "ERR_HANDSHAKE_REQUIRED",
    "ERR_NOT_FINISHED",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ERR_UNKNOWN_EXPERIMENT",
    "ERR_VERSION_MISMATCH",
    "EvaluationServer",
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "PARSE_ERROR",
    "PROTOCOL_VERSION",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "connect",
]


def __getattr__(name: str):
    # The server pulls in the whole evaluation stack and the client is
    # socket-only; both stay import-lazy so `import repro.service` (e.g.
    # for the error-code constants) costs neither.
    if name in ("EvaluationServer", "ServerThread"):
        from repro.service import server

        return getattr(server, name)
    if name in ("ServiceClient", "connect"):
        from repro.service import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
