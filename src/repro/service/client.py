"""A small blocking client for the evaluation service.

:class:`ServiceClient` speaks the NDJSON JSON-RPC protocol of
:mod:`repro.service.protocol` over a plain socket — deliberately
synchronous and dependency-free, so the CLI, the CI smoke job and the
conformance tests all drive the server through the same few dozen lines.

Event notifications arriving while a call waits for its response are
buffered on :attr:`ServiceClient.events` (and handed to the ``on_event``
callback); :meth:`wait` consumes the stream until the experiment's
terminal ``state`` event.  Typed server errors re-raise client-side as
:class:`~repro.service.protocol.ServiceError` with the original code.

Run as a module (``python -m repro.service.client``) this is the
round-trip tool the ``service-smoke`` CI job uses: submit a spec, stream
progress to stderr, write the result records as JSON byte-identical to
``repro-hpc-codex run --json`` for the same spec.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Callable

from repro.service import protocol
from repro.service.protocol import ServiceError

__all__ = ["ServiceClient", "connect", "main"]

#: Exit codes of the module entry point (mirroring ``dispatch``):
#: 0 done, 3 cancelled/failed, 4 degraded (partial result written).
EXIT_INCOMPLETE = 3
EXIT_DEGRADED = 4


class ServiceClient:
    """Blocking JSON-RPC client for one server connection.

    >>> client = ServiceClient(port=7349)          # doctest: +SKIP
    >>> client.connect(); client.hello()           # doctest: +SKIP
    >>> exp = client.submit(languages=["julia"])   # doctest: +SKIP
    >>> client.wait(exp)["state"]                  # doctest: +SKIP
    'done'
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 120.0,
        client_name: str = "repro.service.client",
        on_event: Callable[[str, dict], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_name = client_name
        self.on_event = on_event
        self.session_id: str | None = None
        #: Buffered event notifications, ``(method, params)`` in arrival order.
        self.events: list[tuple[str, dict]] = []
        self._sock: socket.socket | None = None
        self._file = None
        self._ids = iter(range(1, 1 << 62))

    # -- connection -------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the JSON-RPC engine ------------------------------------------------------
    def send(self, message: dict) -> None:
        """Ship one raw message (the conformance tests' malformed-input hook)."""
        self._sock.sendall(protocol.encode(message))

    def read_message(self) -> dict:
        """Read one message line; raises ConnectionError on EOF."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, method: str, params: dict | None = None) -> Any:
        """One request/response round trip; events in between are buffered."""
        request_id = next(self._ids)
        self.send(protocol.request(method, params, request_id))
        while True:
            message = self.read_message()
            if message.get("id") == request_id:
                if "error" in message:
                    error = message["error"]
                    raise ServiceError(
                        error.get("code", protocol.INTERNAL_ERROR),
                        error.get("message", "unknown error"),
                        error.get("data"),
                    )
                return message.get("result")
            self._dispatch_event(message)

    def _dispatch_event(self, message: dict) -> None:
        method = message.get("method")
        if "id" in message or not isinstance(method, str):
            return  # stray response or malformed line: not ours to crash on
        params = message.get("params", {})
        self.events.append((method, params))
        if self.on_event is not None:
            self.on_event(method, params)

    # -- protocol methods ---------------------------------------------------------
    def hello(self, protocol_version: str | None = None) -> dict:
        """The mandatory handshake; stores and returns the session identity."""
        result = self.call(
            "hello",
            {
                "protocol_version": (
                    protocol.PROTOCOL_VERSION if protocol_version is None else protocol_version
                ),
                "client": self.client_name,
            },
        )
        self.session_id = result["session_id"]
        return result

    def submit(
        self,
        *,
        seed: int | None = None,
        languages: list[str] | None = None,
        models: list[str] | None = None,
        kernels: list[str] | None = None,
        shards: int | None = None,
        spec: dict | None = None,
    ) -> str:
        """Submit one experiment; returns its id immediately."""
        if spec is None:
            spec = {}
            if seed is not None:
                spec["seed"] = seed
            if languages is not None:
                spec["languages"] = list(languages)
            if models is not None:
                spec["models"] = list(models)
            if kernels is not None:
                spec["kernels"] = list(kernels)
        params: dict = {"spec": spec}
        if shards is not None:
            params["shards"] = shards
        return self.call("submit", params)["experiment_id"]

    def status(self, experiment_id: str) -> dict:
        return self.call("status", {"experiment_id": experiment_id})

    def cancel(self, experiment_id: str) -> dict:
        return self.call("cancel", {"experiment_id": experiment_id})

    def result(self, experiment_id: str) -> dict:
        return self.call("result", {"experiment_id": experiment_id})

    def shutdown(self) -> dict:
        return self.call("shutdown", {})

    def wait(self, experiment_id: str) -> dict:
        """Consume the event stream until this experiment's terminal
        ``state`` event; returns that event's params."""
        for method, params in self.events:
            if method == "state" and params.get("experiment_id") == experiment_id:
                return params
        while True:
            message = self.read_message()
            self._dispatch_event(message)
            method, params = self.events[-1] if self.events else (None, {})
            if method == "state" and params.get("experiment_id") == experiment_id:
                return params


def connect(host: str = "127.0.0.1", port: int = 0, **kwargs) -> ServiceClient:
    """Connect and complete the handshake in one call."""
    client = ServiceClient(host, port, **kwargs)
    client.connect()
    try:
        client.hello()
    except BaseException:
        client.close()
        raise
    return client


# ---------------------------------------------------------------------------
# Module entry point: the CI smoke job's round-trip tool.
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Submit one experiment to a running evaluation service "
        "and write its result records as JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--languages", default=None, help="comma-separated language names")
    parser.add_argument("--models", default=None, help="comma-separated model uids")
    parser.add_argument("--kernels", default=None, help="comma-separated kernel names")
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--json", default=None, metavar="PATH", help="write records here")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--quiet", action="store_true", help="no progress on stderr")
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down gracefully when done "
        "(alone: just shut the server down)",
    )
    return parser


def _csv(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    submit_anything = any(
        value is not None
        for value in (args.seed, args.languages, args.models, args.kernels, args.json)
    )

    def report(method: str, params: dict) -> None:
        if args.quiet:
            return
        if method == "progress":
            record = params.get("record", {})
            print(
                f"cell {params.get('done')}/{params.get('total')}: "
                f"{record.get('model')}:{record.get('kernel')} "
                f"postfix={record.get('use_postfix')} score={record.get('score')}",
                file=sys.stderr,
            )
        elif method == "shard":
            snapshot = params.get("snapshot", {})
            print(
                f"shard {params.get('shards_done')}/{params.get('shards_total')} "
                f"({params.get('source')}): {snapshot.get('cells')} cells merged, "
                f"mean {snapshot.get('mean_score')}",
                file=sys.stderr,
            )

    client = ServiceClient(args.host, args.port, timeout=args.timeout, on_event=report)
    try:
        with client:
            client.hello()
            if not submit_anything:
                if args.shutdown:
                    client.shutdown()
                    return 0
                print("nothing to do: give a spec (e.g. --languages) or --shutdown",
                      file=sys.stderr)
                return 2
            experiment = client.submit(
                seed=args.seed,
                languages=_csv(args.languages),
                models=_csv(args.models),
                kernels=_csv(args.kernels),
                shards=args.shards,
            )
            if not args.quiet:
                print(f"submitted {experiment}", file=sys.stderr)
            final = client.wait(experiment)
            payload = client.result(experiment)
            if args.shutdown:
                client.shutdown()
    except ServiceError as err:
        print(f"service error {err.code}: {err.message}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as err:
        print(f"connection failed: {err}", file=sys.stderr)
        return 1
    records = payload.get("records", [])
    if args.json is not None:
        # Written through the same helper as `run --json`, so a complete
        # experiment's file is byte-identical to the unsharded run's.
        from repro.harness.io import save_records_json

        save_records_json(records, args.json)
    else:
        print(json.dumps(records, indent=2, sort_keys=True))
    state = final.get("state")
    if not args.quiet:
        quarantined = payload.get("quarantined", [])
        detail = f", {len(quarantined)} shard(s) quarantined" if quarantined else ""
        print(f"experiment {experiment} {state}{detail}", file=sys.stderr)
    if state == "done":
        return 0
    if state == "degraded":
        return EXIT_DEGRADED
    return EXIT_INCOMPLETE


if __name__ == "__main__":
    raise SystemExit(main())
