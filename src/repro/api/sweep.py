"""Multi-seed statistical sweeps: mean and bootstrap CI per cell.

The paper reports one proficiency score per cell from one sampling run.
A :meth:`repro.api.session.Session.sweep_seeds` sweep repeats the grid over
several seeds and summarises each cell's score distribution as a mean with a
percentile-bootstrap confidence interval, turning the point estimates of
Tables 2-5 into interval estimates.

Determinism contract
--------------------

The summary is a pure function of the per-seed results:

* The bootstrap RNG is **content-keyed** per cell — seeded from a digest of
  the cell's coordinates, never from clock, process, or sweep composition —
  so the same per-seed scores always produce the same interval, in the same
  spirit as the per-(cell, seed) suggestion streams.
* Seeds are sorted before aggregation, so ``{1: a, 2: b}`` and ``{2: b, 1: a}``
  summarise identically; per-seed :class:`~repro.core.runner.ResultSet`s can
  each be assembled by :meth:`~repro.core.runner.ResultSet.merge` from shards
  in any order first.
* A single-seed sweep degrades exactly to the point estimate:
  ``mean == ci_low == ci_high == score`` with no bootstrap drawn.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.runner import ResultSet
from repro.models.grid import canonical_cell_position

__all__ = ["CellStatistics", "SweepSummary", "summarize_sweep"]

#: Root of every bootstrap stream; combined with a per-cell content digest.
_BOOTSTRAP_ROOT = 0x5EED_C1A0


@dataclass(frozen=True)
class CellStatistics:
    """Score distribution of one grid cell across the sweep's seeds."""

    language: str
    model: str
    kernel: str
    use_postfix: bool
    seeds: tuple[int, ...]
    scores: tuple[float, ...]
    mean: float
    ci_low: float
    ci_high: float

    def to_record(self) -> dict:
        return {
            "language": self.language,
            "model": self.model,
            "kernel": self.kernel,
            "use_postfix": self.use_postfix,
            "seeds": list(self.seeds),
            "scores": list(self.scores),
            "mean": self.mean,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


@dataclass(frozen=True)
class SweepSummary:
    """Per-cell statistics for a whole multi-seed sweep."""

    seeds: tuple[int, ...]
    confidence: float
    n_resamples: int
    cells: tuple[CellStatistics, ...]

    def to_records(self) -> list[dict]:
        return [cell.to_record() for cell in self.cells]

    def to_payload(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "confidence": self.confidence,
            "n_resamples": self.n_resamples,
            "cells": self.to_records(),
        }

    def cell(self, model: str, kernel: str, *, use_postfix: bool = False) -> CellStatistics:
        """Statistics of one cell (KeyError when not part of the sweep)."""
        for stats in self.cells:
            if (
                stats.model == model
                and stats.kernel == kernel
                and stats.use_postfix == use_postfix
            ):
                return stats
        raise KeyError(f"no swept cell {model}:{kernel}{'+kw' if use_postfix else ''}")

    def mean_of_means(self) -> float:
        """Grand mean over the swept cells' means."""
        if not self.cells:
            return 0.0
        return float(np.mean([stats.mean for stats in self.cells]))


def _cell_rng(model: str, kernel: str, use_postfix: bool) -> np.random.Generator:
    """Content-keyed bootstrap generator for one cell.

    Keyed on the same ``model:kernel[+kw]`` identity as the suggestion
    streams (:meth:`~repro.models.grid.ExperimentCell.cell_id`), so adding
    or removing *other* cells from a sweep never changes this cell's CI.
    """
    cell_id = f"{model}:{kernel}{'+kw' if use_postfix else ''}"
    digest = hashlib.sha256(cell_id.encode("utf-8")).digest()
    entropy = int.from_bytes(digest[:8], "big")
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence([_BOOTSTRAP_ROOT, entropy])))


def _bootstrap_ci(
    scores: np.ndarray, rng: np.random.Generator, confidence: float, n_resamples: int
) -> tuple[float, float]:
    """Percentile-bootstrap CI of the mean."""
    n = scores.size
    indices = rng.integers(0, n, size=(n_resamples, n))
    means = scores[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def _sort_key(key: tuple[str, str, str, bool]) -> tuple:
    language, model, kernel, use_postfix = key
    position = canonical_cell_position(model, kernel, use_postfix)
    if position is not None:
        return (0, position)
    return (1, language, model, kernel, use_postfix)


def summarize_sweep(
    results_by_seed: dict[int, ResultSet],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
) -> SweepSummary:
    """Summarise ``{seed: ResultSet}`` into per-cell mean and bootstrap CI.

    Every seed must have evaluated the same cell set; cells are reported in
    canonical grid order.  The summary is invariant to the dict's insertion
    order and to the order each per-seed set's results were merged in.
    """
    if not results_by_seed:
        raise ValueError("summarize_sweep needs at least one seed's results")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    seeds = tuple(sorted(int(seed) for seed in results_by_seed))
    per_cell: dict[tuple[str, str, str, bool], dict[int, float]] = {}
    for seed in seeds:
        for result in results_by_seed[seed]:
            cell = result.cell
            key = (cell.language, cell.model, cell.kernel, cell.use_postfix)
            scores = per_cell.setdefault(key, {})
            if seed in scores:
                raise ValueError(
                    f"seed {seed} evaluated cell {cell.cell_id!r} more than once"
                )
            scores[seed] = float(result.score)
    cells: list[CellStatistics] = []
    for key in sorted(per_cell, key=_sort_key):
        language, model, kernel, use_postfix = key
        scores = per_cell[key]
        missing = [seed for seed in seeds if seed not in scores]
        if missing:
            raise ValueError(
                f"cell {model}:{kernel} is missing from seed(s) {missing}; "
                "every seed of a sweep must evaluate the same cells"
            )
        values = np.array([scores[seed] for seed in seeds], dtype=np.float64)
        mean = float(values.mean())
        if len(seeds) == 1:
            ci_low = ci_high = mean
        else:
            rng = _cell_rng(model, kernel, use_postfix)
            ci_low, ci_high = _bootstrap_ci(values, rng, confidence, n_resamples)
        cells.append(
            CellStatistics(
                language=language,
                model=model,
                kernel=kernel,
                use_postfix=use_postfix,
                seeds=seeds,
                scores=tuple(float(v) for v in values),
                mean=mean,
                ci_low=ci_low,
                ci_high=ci_high,
            )
        )
    return SweepSummary(
        seeds=seeds,
        confidence=float(confidence),
        n_resamples=int(n_resamples),
        cells=tuple(cells),
    )
