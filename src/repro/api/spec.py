"""Declarative experiment specifications: shardable grids with manifests.

An :class:`ExperimentSpec` is a frozen description of a run — seed(s),
languages, optional model/kernel restrictions and a :class:`CodexConfig` —
that enumerates its :class:`~repro.models.grid.ExperimentCell`s
deterministically.  Because every cell owns an order-independent random
stream (the per-cell seeding contract, README "Performance architecture"),
any contiguous slice of that enumeration is an independently-runnable unit
of work: :meth:`ExperimentSpec.partition` / :meth:`ExperimentSpec.shard`
produce :class:`Shard` objects carrying a manifest entry
``(seed, fingerprint, cell_slice)``, and :class:`ShardManifest` validates
that a collection of such entries is complete and consistent before partial
:class:`~repro.core.runner.ResultSet`s are merged back together.

The module also defines the JSON shard-payload format exchanged by the
``repro shard`` / ``repro merge`` CLI subcommands.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.core.runner import ResultSet
from repro.kernels.registry import kernel_names
from repro.models.grid import ExperimentCell, experiment_grid
from repro.models.languages import get_language, language_names
from repro.models.programming_models import get_model

__all__ = [
    "ExperimentSpec",
    "IncrementalMerge",
    "Shard",
    "ShardEntry",
    "ShardManifest",
    "SHARD_FORMAT",
    "shard_payload",
    "load_shard_payload",
    "merge_shard_parts",
    "merge_shard_payloads",
]

#: Format tag of the JSON payload one ``repro shard`` invocation emits.
SHARD_FORMAT = "repro.shard/v1"


@dataclass(frozen=True)
class ExperimentSpec:
    """A frozen, declarative description of an experiment run.

    ``seeds`` may be given as a single int or any iterable of ints;
    ``languages``/``models``/``kernels`` default to the full Table 1 grid.
    Coordinates are normalised to the canonical grid order regardless of the
    order they were given in, so the cell enumeration (:meth:`cells`) is
    always a subsequence of :func:`~repro.models.grid.experiment_grid` —
    which is what lets any-order shard merges reproduce an unsharded run
    exactly.
    """

    seeds: tuple[int, ...] = (DEFAULT_SEED,)
    languages: tuple[str, ...] | None = None
    models: tuple[str, ...] | None = None
    kernels: tuple[str, ...] | None = None
    config: CodexConfig = field(default_factory=CodexConfig)

    def __post_init__(self) -> None:
        seeds = (self.seeds,) if isinstance(self.seeds, int) else tuple(self.seeds)
        if not seeds:
            raise ValueError("an ExperimentSpec needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"duplicate seeds in spec: {seeds}")
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in seeds))
        languages = self.languages if self.languages is not None else language_names()
        requested = {get_language(language).name for language in languages}
        object.__setattr__(
            self,
            "languages",
            tuple(name for name in language_names() if name in requested),
        )
        if self.models is not None:
            object.__setattr__(
                self, "models", tuple(sorted({get_model(uid).uid for uid in self.models}))
            )
        if self.kernels is not None:
            known = kernel_names()
            kernels = {kernel.lower() for kernel in self.kernels}
            unknown = sorted(kernels - set(known))
            if unknown:
                raise KeyError(f"unknown kernels {unknown}; choose from {known}")
            object.__setattr__(
                self, "kernels", tuple(name for name in known if name in kernels)
            )

    # -- enumeration ----------------------------------------------------------
    @property
    def seed(self) -> int:
        """The single seed of a one-seed spec (ValueError for sweeps)."""
        if len(self.seeds) != 1:
            raise ValueError(f"spec has {len(self.seeds)} seeds; use .seeds")
        return self.seeds[0]

    def fingerprint(self) -> str:
        """The config fingerprint every shard of this spec must carry."""
        return self.config.fingerprint()

    def cells(self) -> list[ExperimentCell]:
        """The deterministic cell enumeration (independent of the seeds)."""
        return [
            cell
            for cell in experiment_grid(languages=self.languages, kernels=self.kernels)
            if self.models is None or cell.model in self.models
        ]

    def grid_digest(self) -> str:
        """Digest of the cell enumeration itself.

        Shard entries carry it so the manifest can reject shards whose specs
        enumerate *different* cells (e.g. one machine ran ``--kernels axpy``
        and another ``--kernels gemv``): such slices can tile ``[0, total)``
        under one config fingerprint yet belong to different runs.
        """
        joined = "\n".join(cell.cell_id for cell in self.cells())
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]

    # -- sharding -------------------------------------------------------------
    def partition(self, n: int) -> list["Shard"]:
        """Split every seed's cell grid into ``n`` contiguous slices.

        Returns ``len(seeds) * n`` shards in seed-major order; slice sizes
        differ by at most one cell.  Each shard covers exactly one seed, so
        its manifest entry is the flat triple ``(seed, fingerprint,
        cell_slice)``.
        """
        if n < 1:
            raise ValueError(f"cannot partition into {n} shards")
        total = len(self.cells())
        shards: list[Shard] = []
        for seed_index, seed in enumerate(self.seeds):
            for j in range(n):
                shards.append(
                    Shard(
                        spec=self,
                        seed=seed,
                        index=seed_index * n + j,
                        of=n,
                        start=(j * total) // n,
                        stop=((j + 1) * total) // n,
                    )
                )
        return shards

    def shard(self, index: int, of: int) -> "Shard":
        """Shard ``index`` of the ``partition(of)`` of this spec."""
        if of < 1:
            raise ValueError(f"cannot partition into {of} shards")
        count = len(self.seeds) * of
        if not 0 <= index < count:
            raise IndexError(f"shard index {index} out of range for {count} shards")
        return self.partition(of)[index]

    def manifest(self, n: int) -> "ShardManifest":
        """The complete, validated manifest of a ``partition(n)``."""
        return ShardManifest.from_entries(shard.entry() for shard in self.partition(n))

    def to_payload(self) -> dict:
        """JSON-serialisable description (config is carried by fingerprint)."""
        return {
            "seeds": list(self.seeds),
            "languages": list(self.languages),
            "models": None if self.models is None else list(self.models),
            "kernels": None if self.kernels is None else list(self.kernels),
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class Shard:
    """One independently-runnable slice of a spec's cell grid at one seed."""

    spec: ExperimentSpec
    seed: int
    #: Global shard index within the partition (seed-major).
    index: int
    #: Per-seed slice count of the partition this shard belongs to.
    of: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def cells(self) -> list[ExperimentCell]:
        return self.spec.cells()[self.start : self.stop]

    def entry(self) -> "ShardEntry":
        """The manifest entry ``(seed, fingerprint, cell_slice)`` plus the
        bookkeeping needed to validate completeness."""
        return ShardEntry(
            seed=self.seed,
            fingerprint=self.spec.fingerprint(),
            index=self.index,
            of=self.of,
            start=self.start,
            stop=self.stop,
            total_cells=len(self.spec.cells()),
            grid=self.spec.grid_digest(),
        )


@dataclass(frozen=True)
class ShardEntry:
    """Manifest record of one shard: which slice of which run it covers."""

    seed: int
    fingerprint: str
    index: int
    of: int
    start: int
    stop: int
    total_cells: int
    #: Digest of the spec's cell enumeration (see ExperimentSpec.grid_digest).
    grid: str

    def to_payload(self) -> dict:
        return {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "index": self.index,
            "of": self.of,
            "cell_slice": [self.start, self.stop],
            "total_cells": self.total_cells,
            "grid": self.grid,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardEntry":
        start, stop = payload["cell_slice"]
        return cls(
            seed=int(payload["seed"]),
            fingerprint=str(payload["fingerprint"]),
            index=int(payload["index"]),
            of=int(payload["of"]),
            start=int(start),
            stop=int(stop),
            total_cells=int(payload["total_cells"]),
            grid=str(payload["grid"]),
        )


@dataclass(frozen=True)
class ShardManifest:
    """The validated collection of shard entries of one (or more) runs.

    Construction through :meth:`from_entries` checks, before any merge is
    attempted, that every entry carries the same config fingerprint, grid
    digest and total cell count and that each seed's slices tile
    ``[0, total_cells)`` exactly — no gaps, no overlaps, nothing missing,
    no slices from a different run's enumeration.
    """

    entries: tuple[ShardEntry, ...]

    @classmethod
    def from_entries(cls, entries: Iterable[ShardEntry]) -> "ShardManifest":
        manifest = cls(
            entries=tuple(sorted(entries, key=lambda e: (e.seed, e.start, e.stop)))
        )
        manifest.validate()
        return manifest

    @property
    def fingerprint(self) -> str:
        return self.entries[0].fingerprint

    @property
    def total_cells(self) -> int:
        return self.entries[0].total_cells

    @property
    def seeds(self) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.seed, None)
        return tuple(seen)

    def validate(self) -> None:
        if not self.entries:
            raise ValueError("empty shard manifest")
        fingerprints = sorted({entry.fingerprint for entry in self.entries})
        if len(fingerprints) > 1:
            raise ValueError(f"manifest mixes config fingerprints: {fingerprints}")
        grids = sorted({entry.grid for entry in self.entries})
        if len(grids) > 1:
            raise ValueError(
                f"manifest mixes cell grids: {grids} — shards come from specs "
                "enumerating different cells"
            )
        totals = sorted({entry.total_cells for entry in self.entries})
        if len(totals) > 1:
            raise ValueError(f"manifest mixes grid sizes: {totals}")
        total = totals[0]
        for seed in self.seeds:
            cursor = 0
            for entry in (e for e in self.entries if e.seed == seed):
                if not 0 <= entry.start <= entry.stop <= total:
                    raise ValueError(f"shard slice [{entry.start}, {entry.stop}) outside grid of {total} cells")
                if entry.start > cursor:
                    raise ValueError(
                        f"seed {seed}: missing cells [{cursor}, {entry.start}) — shard absent from merge"
                    )
                if entry.start < cursor:
                    raise ValueError(
                        f"seed {seed}: overlapping shards at cell {entry.start} (already covered up to {cursor})"
                    )
                cursor = entry.stop
            if cursor != total:
                raise ValueError(f"seed {seed}: missing cells [{cursor}, {total}) — shard absent from merge")


# ---------------------------------------------------------------------------
# Shard payloads: what one machine emits and the merge step consumes.
# ---------------------------------------------------------------------------

def shard_payload(shard: Shard, results: ResultSet) -> dict:
    """The JSON payload of one evaluated shard (manifest entry + records)."""
    if results.seed != shard.seed:
        raise ValueError(f"results carry seed {results.seed}, shard expects {shard.seed}")
    if len(results) != len(shard):
        raise ValueError(f"shard covers {len(shard)} cells but results hold {len(results)}")
    return {
        "format": SHARD_FORMAT,
        "entry": shard.entry().to_payload(),
        "spec": shard.spec.to_payload(),
        "records": results.to_records(),
    }


def load_shard_payload(payload: dict) -> tuple[ShardEntry, ResultSet]:
    """Parse one shard payload back into its manifest entry and records."""
    if payload.get("format") != SHARD_FORMAT:
        raise ValueError(f"not a {SHARD_FORMAT} payload: format={payload.get('format')!r}")
    entry = ShardEntry.from_payload(payload["entry"])
    results = ResultSet.from_payload(payload["records"], seed=entry.seed)
    if len(results) != entry.stop - entry.start:
        raise ValueError(
            f"shard {entry.index} declares {entry.stop - entry.start} cells but carries {len(results)} records"
        )
    return entry, results


def merge_shard_parts(
    parts: Sequence[tuple[ShardEntry, ResultSet]]
) -> dict[int, ResultSet]:
    """Validate a collection of evaluated shards and merge them per seed.

    The manifest check (completeness, fingerprint and grid-size consistency)
    runs before any merging; the returned mapping is keyed by seed in
    manifest order, and each merged set's ``to_records()`` is byte-identical
    to the corresponding unsharded run regardless of the order the parts
    were supplied in.
    """
    manifest = ShardManifest.from_entries(entry for entry, _ in parts)
    merged: dict[int, ResultSet] = {}
    for seed in manifest.seeds:
        merged[seed] = ResultSet.merge(*(results for entry, results in parts if entry.seed == seed))
    return merged


def merge_shard_payloads(payloads: Iterable[dict]) -> dict[int, ResultSet]:
    """``merge_shard_parts`` over raw JSON payloads (the CLI merge path)."""
    return merge_shard_parts([load_shard_payload(payload) for payload in payloads])


class IncrementalMerge:
    """Streamed shard merging: fold evaluated shards in as they complete.

    Where :func:`merge_shard_parts` needs every part up front, an
    ``IncrementalMerge`` accepts ``(entry, results)`` pairs one at a time —
    the order shards *finish* in, which under a distributed driver is
    arbitrary — and keeps a canonically-ordered partial merge per seed at
    every step (via :meth:`~repro.core.runner.ResultSet.merge_in`).  The
    final merged records are therefore identical whatever the arrival
    order, and :meth:`merged` still refuses to pretend completeness: it
    validates the accumulated entries through :class:`ShardManifest` before
    handing anything back.

    Consistency is checked *eagerly*: the first entry fixes the run's
    config fingerprint, grid digest and grid size, and any later entry
    disagreeing with them (or duplicating a cell) raises at :meth:`add`
    time — a bad shard is rejected the moment it arrives, not after every
    other machine has finished.
    """

    def __init__(self) -> None:
        self._entries: list[ShardEntry] = []
        self._per_seed: dict[int, ResultSet] = {}

    def __len__(self) -> int:
        """Shards merged so far."""
        return len(self._entries)

    @property
    def cells_merged(self) -> int:
        return sum(len(results) for results in self._per_seed.values())

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(self._per_seed)

    def add(self, entry: ShardEntry, results: ResultSet) -> None:
        """Fold one evaluated shard into the partial merge (validated)."""
        if len(results) != entry.stop - entry.start:
            raise ValueError(
                f"shard [{entry.start}, {entry.stop}) declares "
                f"{entry.stop - entry.start} cells but carries {len(results)} records"
            )
        if self._entries:
            first = self._entries[0]
            if entry.fingerprint != first.fingerprint:
                raise ValueError(
                    f"shard carries config fingerprint {entry.fingerprint}, "
                    f"merge expects {first.fingerprint}"
                )
            if entry.grid != first.grid:
                raise ValueError(
                    f"shard carries cell grid {entry.grid}, merge expects {first.grid}"
                )
            if entry.total_cells != first.total_cells:
                raise ValueError(
                    f"shard declares a grid of {entry.total_cells} cells, "
                    f"merge expects {first.total_cells}"
                )
        accumulator = self._per_seed.setdefault(entry.seed, ResultSet(seed=entry.seed))
        accumulator.merge_in(results)
        self._entries.append(entry)

    def partial(self) -> dict[int, ResultSet]:
        """The canonically-ordered merge of everything added so far.

        The returned sets are the live accumulators (they grow with later
        :meth:`add` calls); completeness is *not* implied — that is
        :meth:`merged`'s job.
        """
        return dict(self._per_seed)

    def is_complete(self) -> bool:
        """Whether the added entries tile every seed's full grid."""
        try:
            ShardManifest.from_entries(self._entries)
        except ValueError:
            return False
        return True

    def merged(self) -> dict[int, ResultSet]:
        """The complete merged results, validated through the manifest.

        Raises ``ValueError`` while slices are missing, exactly like
        :func:`merge_shard_parts`; when it returns, each seed's
        ``to_records()`` is byte-identical to the unsharded run.
        """
        manifest = ShardManifest.from_entries(self._entries)
        return {seed: self._per_seed[seed] for seed in manifest.seeds}
