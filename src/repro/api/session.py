"""The :class:`Session` façade — the supported entry point for experiments.

A ``Session`` owns everything the legacy free functions in
:mod:`repro.harness.experiments` used to keep in module-global state:

* the result cache, keyed on ``(seed, language, config fingerprint)`` and
  LRU-bounded — now *session-scoped*, so two sessions never share results
  and tests get isolation by construction;
* backend selection (``serial`` / ``thread`` / ``process``) plus pooled
  :class:`~repro.core.runner.EvaluationRunner`s that are reused across calls
  and closed together when the session closes;
* progress callbacks, forwarded to every runner the session creates;
* an optional persistent verdict store (``verdict_store=``), shared by every
  runner and process-backend worker the session creates, so repeated runs —
  even from new processes — skip sandbox execution for suggestions any
  earlier run already analyzed.  With ``$REPRO_CACHE_URL`` set (or the CLI's
  ``--cache-url``), every store additionally reads through a shared
  ``cache-server`` remote and publishes fresh entries back — a warm remote
  fills a cold local disk with zero sandbox executions, and an unreachable
  remote degrades to recompute.  ``$REPRO_CACHE_READONLY`` serves lookups
  but never writes (the CI knob).

``session.table(2)``, ``session.figure(4)``, ``session.ablation("keywords")``
reproduce the paper artefacts; ``session.run(spec_or_shard)`` evaluates a
declarative :class:`~repro.api.spec.ExperimentSpec` or one of its
:class:`~repro.api.spec.Shard`s; ``session.sweep(seeds=[...])`` runs
multi-seed sweeps.  Thanks to the per-cell seeding contract, shard results
merged via :meth:`repro.core.runner.ResultSet.merge` are byte-identical to
an unsharded run.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.store import VerdictStore
from repro.codex.config import DEFAULT_SEED, CodexConfig
from repro.core.aggregate import model_averages, postfix_effect
from repro.core.compare import compare_to_paper
from repro.core.evaluator import CellResult
from repro.core.runner import BACKENDS, EvaluationRunner, ResultSet
from repro.harness.experiments import TABLE_LANGUAGES, ExperimentReport
from repro.harness.figures import (
    FIGURE_LANGUAGES,
    figure_data,
    overall_figure_data,
    render_figure,
    render_overall_figure,
)
from repro.harness.tables import render_language_table
from repro.models.languages import get_language, language_names
from repro.popularity.maturity import MaturityModel

from repro.api.spec import ExperimentSpec, Shard

__all__ = ["Session", "default_session", "reset_default_session"]

#: Ablation name → Session method suffix (see :meth:`Session.ablation`).
ABLATIONS: tuple[str, ...] = ("keywords", "maturity", "suggestions")


class Session:
    """Context-managed façade over the evaluation pipeline.

    Parameters
    ----------
    seed, config, backend:
        Session-wide defaults; every experiment method accepts per-call
        overrides with the same names.
    max_workers, chunk_size:
        Forwarded to the runners the session creates (parallel backends).
    progress:
        Callback invoked with each :class:`CellResult` as cells complete, in
        submission order (captured at runner creation).
    cache_size:
        LRU bound of the per-session result cache.
    verdict_store:
        Opt-in persistent verdict cache shared by every runner (and every
        process-backend worker) this session creates.  Pass ``True`` for the
        default cache directory (:func:`repro.analysis.store.default_store_path`,
        ``$REPRO_VERDICT_STORE`` / ``~/.cache/repro-hpc-codex/verdicts``), a
        path for an explicit location, an ``http(s)://`` cache-server URL
        (a store at the default path tiered with that remote), or an
        existing :class:`~repro.analysis.store.VerdictStore`.  ``None``
        (default) keeps verdicts process-local.  Stores honour
        ``$REPRO_CACHE_URL`` (shared remote tier) and
        ``$REPRO_CACHE_READONLY`` (lookups only, never writes) at
        construction.
    """

    def __init__(
        self,
        *,
        seed: int = DEFAULT_SEED,
        config: CodexConfig | None = None,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        progress: Callable[[CellResult], None] | None = None,
        cache_size: int = 64,
        max_runners: int = 8,
        verdict_store: VerdictStore | str | Path | bool | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.seed = int(seed)
        self.config = config if config is not None else CodexConfig()
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.progress = progress
        self.verdict_store = VerdictStore.coerce(verdict_store)
        self._cache: OrderedDict[tuple[int, str, str], ResultSet] = OrderedDict()
        self._cache_max = int(cache_size)
        self._runners: OrderedDict[tuple[int, str, str], EvaluationRunner] = OrderedDict()
        self._runners_max = int(max_runners)
        self._retired_sandbox_executions = 0
        self._retired_store_hits = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Shut down every pooled runner and drop the cache (idempotent)."""
        for runner in self._runners.values():
            self._retire(runner)
        self._runners.clear()
        self._cache.clear()
        self._closed = True

    def _retire(self, runner: EvaluationRunner) -> None:
        """Close a runner, folding its counters into the session totals."""
        self._retired_sandbox_executions += runner.sandbox_executions
        self._retired_store_hits += runner.store_hits
        runner.close()

    @property
    def sandbox_executions(self) -> int:
        """Suggestion modules executed for this session's runs (all backends,
        including process-pool workers; survives :meth:`close`)."""
        return self._retired_sandbox_executions + sum(
            runner.sandbox_executions for runner in self._runners.values()
        )

    @property
    def store_hits(self) -> int:
        """Verdicts served from the persistent store for this session's runs."""
        return self._retired_store_hits + sum(
            runner.store_hits for runner in self._runners.values()
        )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._cache)} cached runs"
        return f"Session(seed={self.seed}, backend={self.backend!r}, {state})"

    def clear_cache(self) -> None:
        """Drop every cached :class:`ResultSet` of this session."""
        self._cache.clear()

    # -- cache plumbing -------------------------------------------------------
    def _cache_get(self, key: tuple[int, str, str]) -> ResultSet | None:
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: tuple[int, str, str], value: ResultSet) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_max:
            self._cache.popitem(last=False)

    def _resolve(
        self,
        seed: int | None,
        config: CodexConfig | None,
        backend: str | None,
    ) -> tuple[int, CodexConfig, str]:
        resolved_backend = self.backend if backend is None else backend
        if resolved_backend not in BACKENDS:
            raise ValueError(f"unknown backend {resolved_backend!r}; choose from {BACKENDS}")
        return (
            self.seed if seed is None else int(seed),
            self.config if config is None else config,
            resolved_backend,
        )

    def _runner(self, seed: int, config: CodexConfig, backend: str) -> EvaluationRunner:
        """A pooled runner for (seed, config, backend); reused across calls so
        parallel backends keep their worker pools warm."""
        if self._closed:
            raise RuntimeError("this Session is closed; create a new one")
        key = (seed, config.fingerprint(), backend)
        runner = self._runners.get(key)
        if runner is None:
            runner = EvaluationRunner(
                config=config,
                seed=seed,
                backend=backend,
                max_workers=self.max_workers,
                chunk_size=self.chunk_size,
                progress=self.progress,
                verdict_store=self.verdict_store,
            )
            self._runners[key] = runner
        self._runners.move_to_end(key)
        while len(self._runners) > self._runners_max:
            _, retired = self._runners.popitem(last=False)
            self._retire(retired)
        return runner

    def runner(
        self,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> EvaluationRunner:
        """The pooled :class:`EvaluationRunner` for (seed, config, backend).

        The seam long-lived embeddings build on (the dispatch driver's
        inline backend, the JSON-RPC evaluation service): callers evaluate
        through the session's runner pool — shared verdict store, shared
        progress callback, warm worker pools — without going through the
        per-language result cache.  The runner is owned by the session;
        do not close it."""
        seed, config, backend = self._resolve(seed, config, backend)
        return self._runner(seed, config, backend)

    # -- core evaluation ------------------------------------------------------
    def language_results(
        self,
        language: str,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ResultSet:
        """Evaluate all cells of one language's table, session-cached per
        (seed, language, config fingerprint).

        The returned :class:`ResultSet` is the shared cache entry — treat it
        as read-only and copy its results into a fresh set before adding to
        it (as :meth:`full_results` does).
        """
        seed, config, backend = self._resolve(seed, config, backend)
        name = get_language(language).name
        key = (seed, name, config.fingerprint())
        cached = self._cache_get(key)
        if cached is None:
            cached = self._runner(seed, config, backend).run_language(name)
            self._cache_put(key, cached)
        return cached

    def full_results(
        self,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ResultSet:
        """Evaluate the full grid (all four languages), reusing cached
        languages; missing ones share a single runner (one worker pool)."""
        seed, config, backend = self._resolve(seed, config, backend)
        fingerprint = config.fingerprint()
        missing = [
            language
            for language in language_names()
            if self._cache_get((seed, language, fingerprint)) is None
        ]
        if missing:
            runner = self._runner(seed, config, backend)
            for language in missing:
                self._cache_put((seed, language, fingerprint), runner.run_language(language))
        combined = ResultSet(seed=seed)
        for language in language_names():
            for result in self.language_results(language, seed=seed, config=config, backend=backend):
                combined.add(result)
        return combined

    def run(
        self,
        spec: ExperimentSpec | Shard,
        *,
        backend: str | None = None,
    ) -> ResultSet | dict[int, ResultSet]:
        """Evaluate a declarative spec or one shard of it.

        A :class:`Shard` evaluates just its cell slice (uncached — shards
        cut across the per-language cache grain) and returns a
        :class:`ResultSet` ready for :func:`repro.api.spec.shard_payload`.
        A single-seed :class:`ExperimentSpec` returns one :class:`ResultSet`;
        a multi-seed spec returns ``{seed: ResultSet}``.
        """
        if isinstance(spec, Shard):
            _, _, resolved = self._resolve(None, None, backend)
            runner = self._runner(spec.seed, spec.spec.config, resolved)
            results = runner.run_cells(spec.cells())
            return results
        per_seed = {
            seed: self._run_spec_at_seed(spec, seed, backend) for seed in spec.seeds
        }
        if len(spec.seeds) == 1:
            return per_seed[spec.seeds[0]]
        return per_seed

    def _run_spec_at_seed(
        self, spec: ExperimentSpec, seed: int, backend: str | None
    ) -> ResultSet:
        if spec.models is None and spec.kernels is None:
            # Whole-language grids resolve through the session cache.
            combined = ResultSet(seed=seed)
            for language in spec.languages:
                for result in self.language_results(
                    language, seed=seed, config=spec.config, backend=backend
                ):
                    combined.add(result)
            return combined
        _, _, resolved = self._resolve(None, None, backend)
        return self._runner(seed, spec.config, resolved).run_cells(spec.cells())

    def dispatch(
        self,
        spec: ExperimentSpec | None = None,
        *,
        shards: int = 4,
        backend: str = "inline",
        result_store=None,
        queue=None,
        max_shards: int | None = None,
        max_workers: int | None = None,
        max_attempts: int | None = None,
        shard_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        on_shard=None,
    ):
        """Distribute a spec across shard workers, resumably.

        The session-level entry to :class:`repro.dispatch.ShardDriver`:
        partitions ``spec`` (default: this session's seed and config over
        the full grid) into ``shards`` slices per seed, skips every shard
        already present in ``result_store``, dispatches the rest to the
        ``"inline"`` / ``"process"`` / ``"file-queue"`` backend, and
        streams partial merges as shards complete — ``progress`` fires per
        cell and ``on_shard`` per completed shard, both in submission
        order.  Inline shards run on this session's pooled runners (and
        its verdict store), so ``sandbox_executions`` / ``store_hits``
        keep aggregating here.

        Failures are contained, not fatal: a shard whose evaluation raises
        is retried up to ``max_attempts`` times and then *quarantined*
        (listed in ``report.quarantined``, never merged).
        ``shard_timeout`` bounds each ``process``-backend shard's wall
        clock (a hung worker is killed and the shard retried), and
        ``heartbeat_interval`` tunes the file queue's claim-lease renewal
        cadence.

        Returns a :class:`repro.dispatch.DispatchReport`; when it is
        ``complete``, ``report.result()`` is byte-identical to the
        unsharded run, and a re-run against the same ``result_store``
        re-executes zero completed shards.
        """
        from repro.dispatch.driver import ShardDriver

        if spec is None:
            spec = ExperimentSpec(seeds=(self.seed,), config=self.config)
        driver = ShardDriver(
            spec,
            shards=shards,
            backend=backend,
            result_store=result_store,
            verdict_store=self.verdict_store,
            max_workers=max_workers,
            queue=queue,
            progress=self.progress,
            on_shard=on_shard,
            max_shards=max_shards,
            max_attempts=max_attempts,
            shard_timeout=shard_timeout,
            heartbeat_interval=heartbeat_interval,
            runner_factory=lambda seed, config: self._runner(seed, config, "serial"),
        )
        return driver.run()

    def sweep(
        self,
        seeds: Iterable[int],
        *,
        languages: Iterable[str] | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> dict[int, ResultSet]:
        """Run the (optionally language-restricted) grid for several seeds.

        Always returns ``{seed: ResultSet}`` in the given seed order; progress
        callbacks fire per cell exactly as for single runs.
        """
        spec = ExperimentSpec(
            seeds=tuple(seeds),
            languages=None if languages is None else tuple(languages),
            config=self.config if config is None else config,
        )
        results = self.run(spec, backend=backend)
        if isinstance(results, ResultSet):
            return {spec.seeds[0]: results}
        return results

    def sweep_seeds(
        self,
        seeds: Iterable[int],
        *,
        languages: Iterable[str] | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
        confidence: float = 0.95,
        n_resamples: int = 1000,
    ):
        """Multi-seed statistical sweep: mean and bootstrap CI per cell.

        Runs :meth:`sweep` over ``seeds`` and summarises each cell's score
        distribution via :func:`repro.api.sweep.summarize_sweep`.  The
        bootstrap is content-keyed per cell (deterministic, seed-order
        invariant) and a single-seed sweep degrades exactly to the point
        estimates of a plain run.  Returns a
        :class:`~repro.api.sweep.SweepSummary`.
        """
        from repro.api.sweep import summarize_sweep

        per_seed = self.sweep(seeds, languages=languages, config=config, backend=backend)
        return summarize_sweep(per_seed, confidence=confidence, n_resamples=n_resamples)

    # -- paper artefacts ------------------------------------------------------
    def table(
        self,
        number: int,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ExperimentReport:
        """Reproduce Table ``number`` (2 = C++, 3 = Fortran, 4 = Python, 5 = Julia)."""
        if number not in TABLE_LANGUAGES:
            raise KeyError(
                f"the paper has no result table {number}; choose from {sorted(TABLE_LANGUAGES)}"
            )
        language = TABLE_LANGUAGES[number]
        results = self.language_results(language, seed=seed, config=config, backend=backend)
        comparison = compare_to_paper(results, language)
        lang_display = get_language(language).display_name
        return ExperimentReport(
            experiment_id=f"table{number}",
            description=f"Table {number}: proficiency scores for {lang_display}",
            data={
                "language": language,
                "records": results.to_records(),
                "cells": comparison.cells,
            },
            comparison=comparison,
            text=render_language_table(results, language),
        )

    def figure(
        self,
        number: int,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ExperimentReport:
        """Reproduce Figure ``number`` (2 = C++, ..., 5 = Julia, 6 = overall)."""
        if number == 6:
            return self.overall_figure(seed=seed, config=config, backend=backend)
        if number not in FIGURE_LANGUAGES:
            raise KeyError(
                f"the paper has no figure {number}; choose from {sorted(FIGURE_LANGUAGES)} or 6"
            )
        language = FIGURE_LANGUAGES[number]
        results = self.language_results(language, seed=seed, config=config, backend=backend)
        comparison = compare_to_paper(results, language)
        lang_display = get_language(language).display_name
        return ExperimentReport(
            experiment_id=f"figure{number}",
            description=f"Figure {number}: per-kernel and per-model averages for {lang_display}",
            data=figure_data(results, language),
            comparison=comparison,
            text=render_figure(results, language),
        )

    def overall_figure(
        self,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ExperimentReport:
        """Reproduce Figure 6: overall per-kernel and per-language averages."""
        results = self.full_results(seed=seed, config=config, backend=backend)
        return ExperimentReport(
            experiment_id="figure6",
            description="Figure 6: overall averages per kernel and per language",
            data=overall_figure_data(results),
            comparison=None,
            text=render_overall_figure(results),
        )

    # -- ablations (DESIGN.md §4: A-KW, A-MAT, A-SUG) --------------------------
    def ablation(self, name: str, **params) -> ExperimentReport:
        """Run one ablation: ``"keywords"``, ``"maturity"`` or ``"suggestions"``.

        Extra keyword arguments are forwarded to the specific ablation
        (``scales`` for maturity, ``counts`` for suggestions, plus the usual
        ``seed``/``config``/``backend`` overrides).
        """
        runners = {
            "keywords": self.keyword_ablation,
            "maturity": self.maturity_ablation,
            "suggestions": self.suggestion_count_ablation,
        }
        if name not in runners:
            raise KeyError(f"unknown ablation {name!r}; choose from {ABLATIONS}")
        return runners[name](**params)

    def keyword_ablation(
        self,
        *,
        seed: int | None = None,
        config: CodexConfig | None = None,
        backend: str | None = None,
    ) -> ExperimentReport:
        """A-KW: effect of the post-fix keyword per language."""
        results = self.full_results(seed=seed, config=config, backend=backend)
        effects = {}
        for language in language_names():
            effects[language] = postfix_effect(results, language)
        lines = ["Keyword post-fix effect (mean score without -> with keyword)"]
        for language, effect in effects.items():
            lines.append(
                f"  {get_language(language).display_name:8s} "
                f"{effect['without_keyword']:.2f} -> {effect['with_keyword']:.2f} "
                f"(delta {effect['delta']:+.2f})"
            )
        return ExperimentReport(
            experiment_id="ablation-keywords",
            description="Effect of adding the language code keyword to the prompt",
            data={"effects": effects},
            text="\n".join(lines),
        )

    def maturity_ablation(
        self,
        *,
        seed: int | None = None,
        scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25),
        backend: str | None = None,
    ) -> ExperimentReport:
        """A-MAT: how the model-maturity prior weight shifts the score ordering.

        Scale 1.0 fingerprints equal to the default config, so that point
        reuses the session's cached Table 2 run.
        """
        orderings: dict[float, list[str]] = {}
        stability: dict[float, bool] = {}
        for scale in scales:
            maturity = MaturityModel(model_weight=0.62 * scale)
            config = CodexConfig(maturity=maturity)
            results = self.language_results("cpp", seed=seed, config=config, backend=backend)
            averages = model_averages(results, "cpp")
            ranked = sorted(averages, key=averages.get, reverse=True)
            orderings[scale] = ranked
            stability[scale] = "cpp.openmp" in set(ranked[:3])
        lines = ["Maturity-prior ablation (C++ model ranking per scale)"]
        for scale, ranked in orderings.items():
            names = ", ".join(uid.split(".")[1] for uid in ranked[:4])
            lines.append(
                f"  scale {scale:>4}: top models = {names} (OpenMP in top 3: {stability[scale]})"
            )
        return ExperimentReport(
            experiment_id="ablation-maturity",
            description="Sensitivity of the C++ model ranking to the maturity prior weight",
            data={"orderings": orderings, "openmp_in_top3": stability},
            text="\n".join(lines),
        )

    def suggestion_count_ablation(
        self,
        *,
        seed: int | None = None,
        counts: tuple[int, ...] = (1, 3, 5, 10, 20),
        backend: str | None = None,
    ) -> ExperimentReport:
        """A-SUG: rubric behaviour as the suggestion budget changes.

        Each budget is a standard grid run under that config; the budget-10
        point fingerprints to the default config and reuses its cached run.
        """
        means: dict[int, float] = {}
        for count in counts:
            config = CodexConfig(max_suggestions=count)
            results = self.language_results("cpp", seed=seed, config=config, backend=backend)
            means[count] = results.mean_score()
        lines = ["Suggestion-budget ablation (mean C++ score per suggestion count)"]
        for count, mean in means.items():
            lines.append(f"  first {count:>2} suggestions: mean score {mean:.3f}")
        return ExperimentReport(
            experiment_id="ablation-suggestions",
            description="Sensitivity of the proficiency metric to the suggestion budget",
            data={"means": means},
            text="\n".join(lines),
        )

    def run_everything(
        self, *, seed: int | None = None, backend: str | None = None
    ) -> dict[str, ExperimentReport]:
        """Run every table, figure and ablation (used by the CLI).

        The default-config grid is evaluated exactly once up front; every
        table, figure and the keyword ablation then resolve from the session
        cache, and the remaining ablations only evaluate the config points
        whose fingerprint differs from the default.
        """
        self.full_results(seed=seed, backend=backend)
        reports: dict[str, ExperimentReport] = {}
        for number in sorted(TABLE_LANGUAGES):
            report = self.table(number, seed=seed, backend=backend)
            reports[report.experiment_id] = report
        for number in (2, 3, 4, 5, 6):
            report = self.figure(number, seed=seed, backend=backend)
            reports[report.experiment_id] = report
        for report in (
            self.keyword_ablation(seed=seed, backend=backend),
            self.maturity_ablation(seed=seed, backend=backend),
            self.suggestion_count_ablation(seed=seed, backend=backend),
        ):
            reports[report.experiment_id] = report
        return reports


# ---------------------------------------------------------------------------
# The process-default session: what the deprecated free functions in
# repro.harness.experiments resolve through.  Tests swap it per test via
# reset_default_session() (see tests/conftest.py) so cached runs never leak.
# ---------------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The lazily-created process-default :class:`Session`."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def reset_default_session() -> Session:
    """Close and replace the process-default session; returns the fresh one."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is not None:
        _DEFAULT_SESSION.close()
    _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
